"""Bounded rationality (§II-B, after Binmore).

"Actors in a network are not, in fact, well informed and perfect
optimizers as classic theory requires. In fact actors are often
ill-informed (over their own state as well as that of others), myopic and
act to satisfy some poorly defined objective."

This module provides bounded-rational agents for repeated normal-form
play: myopic best responders with noisy payoff observation, epsilon-greedy
satisficers, and imitators — plus a population simulator that reports
where boundedly-rational tussle actually settles (often not at the Nash
point).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

import numpy as np

from ..errors import GameError
from .games import NormalFormGame

__all__ = [
    "BoundedAgent",
    "MyopicBestResponder",
    "Satisficer",
    "Imitator",
    "BoundedPlaySession",
]


class BoundedAgent:
    """Interface: choose an action given noisy observations of payoffs."""

    name = "bounded"

    def choose(self, rng: random.Random) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def observe(self, action: int, payoff: float) -> None:  # pragma: no cover
        raise NotImplementedError


class MyopicBestResponder(BoundedAgent):
    """Tracks average observed payoff per action; plays the current max.

    Ill-informed: observations carry seeded Gaussian noise added by the
    session; myopic: no lookahead, no opponent model.
    """

    name = "myopic"

    def __init__(self, n_actions: int, exploration: float = 0.05):
        if n_actions < 1:
            raise GameError("need at least one action")
        self.n_actions = n_actions
        self.exploration = exploration
        self.totals = [0.0] * n_actions
        self.counts = [0] * n_actions

    def choose(self, rng: random.Random) -> int:
        if rng.random() < self.exploration:
            return rng.randrange(self.n_actions)
        untried = [a for a in range(self.n_actions) if self.counts[a] == 0]
        if untried:
            return untried[0]
        averages = [self.totals[a] / self.counts[a] for a in range(self.n_actions)]
        return max(range(self.n_actions), key=lambda a: (averages[a], -a))

    def observe(self, action: int, payoff: float) -> None:
        self.totals[action] += payoff
        self.counts[action] += 1


class Satisficer(BoundedAgent):
    """Keeps its current action while payoff meets an aspiration level.

    "Act to satisfy some poorly defined objective": the agent does not
    optimize — it searches only when dissatisfied, and its aspiration
    adapts slowly toward realized payoffs.
    """

    name = "satisficer"

    def __init__(self, n_actions: int, aspiration: float = 0.0,
                 adaptation: float = 0.1):
        if n_actions < 1:
            raise GameError("need at least one action")
        self.n_actions = n_actions
        self.aspiration = aspiration
        self.adaptation = adaptation
        self.current = 0
        self._last_payoff: Optional[float] = None

    def choose(self, rng: random.Random) -> int:
        if self._last_payoff is not None and self._last_payoff < self.aspiration:
            self.current = rng.randrange(self.n_actions)
        return self.current

    def observe(self, action: int, payoff: float) -> None:
        self._last_payoff = payoff
        self.aspiration += self.adaptation * (payoff - self.aspiration)


class Imitator(BoundedAgent):
    """Copies the best action it has seen anyone play recently.

    The session feeds it peer observations via :meth:`observe_peer`.
    """

    name = "imitator"

    def __init__(self, n_actions: int):
        if n_actions < 1:
            raise GameError("need at least one action")
        self.n_actions = n_actions
        self.best_seen_action = 0
        self.best_seen_payoff = float("-inf")

    def choose(self, rng: random.Random) -> int:
        return self.best_seen_action

    def observe(self, action: int, payoff: float) -> None:
        self.observe_peer(action, payoff)

    def observe_peer(self, action: int, payoff: float) -> None:
        if payoff > self.best_seen_payoff:
            self.best_seen_payoff = payoff
            self.best_seen_action = action


class BoundedPlaySession:
    """Repeated 2-player play between bounded agents with noisy feedback.

    Parameters
    ----------
    game:
        The stage game.
    row_agent, col_agent:
        Bounded agents choosing row/column actions.
    noise:
        Standard deviation of Gaussian observation noise (ill-information).
    seed:
        Seeds both choice randomness and observation noise.
    """

    def __init__(
        self,
        game: NormalFormGame,
        row_agent: BoundedAgent,
        col_agent: BoundedAgent,
        noise: float = 0.5,
        seed: int = 0,
    ):
        if game.n_players != 2:
            raise GameError("bounded play implemented for 2-player games")
        self.game = game
        self.row_agent = row_agent
        self.col_agent = col_agent
        self.noise = noise
        self.rng = random.Random(seed)
        self.np_rng = np.random.default_rng(seed)
        self.action_history: List[Tuple[int, int]] = []

    def step(self) -> Tuple[int, int]:
        row = self.row_agent.choose(self.rng)
        col = self.col_agent.choose(self.rng)
        payoff_row = self.game.payoff(0, (row, col))
        payoff_col = self.game.payoff(1, (row, col))
        if self.noise > 0:
            payoff_row += float(self.np_rng.normal(0, self.noise))
            payoff_col += float(self.np_rng.normal(0, self.noise))
        self.row_agent.observe(row, payoff_row)
        self.col_agent.observe(col, payoff_col)
        self.action_history.append((row, col))
        return row, col

    def run(self, rounds: int) -> List[Tuple[int, int]]:
        for _ in range(rounds):
            self.step()
        return self.action_history

    def empirical_distribution(self, tail: Optional[int] = None
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical action frequencies over (the tail of) the history."""
        history = self.action_history[-tail:] if tail else self.action_history
        m, n = self.game.n_actions
        row_freq = np.zeros(m)
        col_freq = np.zeros(n)
        for row, col in history:
            row_freq[row] += 1
            col_freq[col] += 1
        total = max(1, len(history))
        return row_freq / total, col_freq / total
