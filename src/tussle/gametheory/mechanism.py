"""Mechanism design: Vickrey auctions and VCG (§II-B).

"William Vickrey, in a seminal work, outlined the beginnings of a theory
to generatively design and prescribe actor networks that exhibit a
desirable apriori set of properties... rules of a game that guaranteed
tussle-free actor networks for a given class of problem revolving around
revealing truthful information."

Implements the second-price (Vickrey) auction, a general VCG mechanism
for allocation problems, and truthfulness verification — the machinery
E12 uses to demonstrate that mechanism design removes the information
tussle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import GameError

__all__ = [
    "AuctionResult",
    "vickrey_auction",
    "first_price_auction",
    "VCGMechanism",
    "is_truthful_dominant",
]


@dataclass
class AuctionResult:
    """Winner, price paid, and per-bidder utilities of a sealed-bid auction."""

    winner: Optional[str]
    price: float
    bids: Dict[str, float]
    utilities: Dict[str, float] = field(default_factory=dict)


def _run_auction(bids: Mapping[str, float], values: Mapping[str, float],
                 second_price: bool) -> AuctionResult:
    if not bids:
        raise GameError("auction needs at least one bid")
    for name, bid in bids.items():
        if bid < 0:
            raise GameError(f"negative bid {bid} from {name!r}")
    ordered = sorted(bids.items(), key=lambda kv: (-kv[1], kv[0]))
    winner, winning_bid = ordered[0]
    if second_price:
        price = ordered[1][1] if len(ordered) > 1 else 0.0
    else:
        price = winning_bid
    utilities = {
        name: (values.get(name, 0.0) - price if name == winner else 0.0)
        for name in bids
    }
    return AuctionResult(winner=winner, price=price, bids=dict(bids),
                         utilities=utilities)


def vickrey_auction(bids: Mapping[str, float],
                    values: Optional[Mapping[str, float]] = None) -> AuctionResult:
    """Sealed-bid second-price auction: highest bid wins, pays second price.

    With ``values`` supplied (true valuations), utilities are computed so
    truthfulness can be checked.
    """
    return _run_auction(bids, values or dict(bids), second_price=True)


def first_price_auction(bids: Mapping[str, float],
                        values: Optional[Mapping[str, float]] = None) -> AuctionResult:
    """Sealed-bid first-price auction — the non-truthful baseline."""
    return _run_auction(bids, values or dict(bids), second_price=False)


def is_truthful_dominant(
    auction: Callable[[Mapping[str, float], Mapping[str, float]], AuctionResult],
    values: Mapping[str, float],
    bid_grid: Optional[Sequence[float]] = None,
    focal_bidder: Optional[str] = None,
) -> bool:
    """Is truthful bidding a (weakly) dominant strategy for a bidder?

    Checks, over a grid of own-bids and rival-bid profiles, that bidding
    one's true value never does worse than any deviation. Exhaustive over
    the grid, so it correctly returns True for Vickrey and False for
    first-price in generic configurations.
    """
    names = sorted(values)
    if not names:
        raise GameError("need at least one bidder")
    focal = focal_bidder or names[0]
    if focal not in values:
        raise GameError(f"unknown bidder {focal!r}")
    grid = list(bid_grid) if bid_grid is not None else [
        0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0
    ]
    rivals = [n for n in names if n != focal]
    true_value = values[focal]

    for rival_profile in itertools.product(grid, repeat=len(rivals)):
        rival_bids = dict(zip(rivals, rival_profile))
        truthful_bids = dict(rival_bids)
        truthful_bids[focal] = true_value
        truthful_utility = auction(truthful_bids, values).utilities[focal]
        for deviation in grid:
            deviant_bids = dict(rival_bids)
            deviant_bids[focal] = deviation
            deviant_utility = auction(deviant_bids, values).utilities[focal]
            if deviant_utility > truthful_utility + 1e-9:
                return False
    return True


class VCGMechanism:
    """The Vickrey–Clarke–Groves mechanism for finite allocation problems.

    Parameters
    ----------
    outcomes:
        The finite set of possible outcomes (e.g. which route is built,
        who gets capacity).

    Agents report a valuation per outcome; the mechanism picks the
    welfare-maximizing outcome and charges each agent the externality
    they impose on the others (the Clarke pivot rule). Truthful reporting
    is a dominant strategy — the "tussle-free" information subgame.
    """

    def __init__(self, outcomes: Sequence[str]):
        if not outcomes:
            raise GameError("VCG needs at least one outcome")
        self.outcomes = list(outcomes)

    def run(self, reports: Mapping[str, Mapping[str, float]]
            ) -> Tuple[str, Dict[str, float]]:
        """Choose the outcome and compute payments.

        ``reports[agent][outcome]`` is the agent's reported value. Returns
        ``(chosen_outcome, payments)`` where payments are what each agent
        owes (Clarke pivot).
        """
        if not reports:
            raise GameError("VCG needs at least one agent")
        agents = sorted(reports)
        for agent in agents:
            missing = set(self.outcomes) - set(reports[agent])
            if missing:
                raise GameError(f"agent {agent!r} missing values for {sorted(missing)}")

        def welfare(outcome: str, included: Sequence[str]) -> float:
            return sum(reports[a][outcome] for a in included)

        chosen = max(self.outcomes, key=lambda o: (welfare(o, agents), o))
        payments: Dict[str, float] = {}
        for agent in agents:
            others = [a for a in agents if a != agent]
            if others:
                best_without = max(welfare(o, others) for o in self.outcomes)
                others_at_chosen = welfare(chosen, others)
            else:
                best_without = 0.0
                others_at_chosen = 0.0
            payments[agent] = best_without - others_at_chosen
        return chosen, payments

    def utility(
        self,
        agent: str,
        true_values: Mapping[str, float],
        reports: Mapping[str, Mapping[str, float]],
    ) -> float:
        """An agent's realized utility given everyone's reports."""
        chosen, payments = self.run(reports)
        return true_values[chosen] - payments[agent]
