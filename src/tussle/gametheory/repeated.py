"""Repeated games: strategies, tournaments and the shadow of the future.

The paper's TCP congestion-control story is a repeated social dilemma held
together by "social pressure, standards pressure, and most individual
players' inability to make technical modifications" (§II-B). Repeated-game
machinery lets experiments ask when cooperation is self-enforcing and when
it unravels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import GameError
from .games import NormalFormGame

__all__ = [
    "COOPERATE",
    "DEFECT",
    "prisoners_dilemma",
    "RepeatedStrategy",
    "AlwaysCooperate",
    "AlwaysDefect",
    "TitForTat",
    "GrimTrigger",
    "Pavlov",
    "RandomStrategy",
    "MatchResult",
    "play_match",
    "round_robin",
    "cooperation_sustainable",
]

#: Action indices by convention in 2x2 dilemma games.
COOPERATE, DEFECT = 0, 1


class RepeatedStrategy:
    """Interface for a repeated-game strategy.

    ``first_move()`` starts the match; ``next_move(my_history,
    their_history)`` continues it. Implementations must be deterministic
    unless seeded.
    """

    name = "strategy"

    def first_move(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def next_move(self, my_history: Sequence[int],
                  their_history: Sequence[int]) -> int:  # pragma: no cover
        raise NotImplementedError


class AlwaysCooperate(RepeatedStrategy):
    name = "always-cooperate"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history, their_history) -> int:
        return COOPERATE


class AlwaysDefect(RepeatedStrategy):
    name = "always-defect"

    def first_move(self) -> int:
        return DEFECT

    def next_move(self, my_history, their_history) -> int:
        return DEFECT


class TitForTat(RepeatedStrategy):
    """Cooperate first, then mirror the opponent's last move."""

    name = "tit-for-tat"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history, their_history) -> int:
        return their_history[-1]


class GrimTrigger(RepeatedStrategy):
    """Cooperate until the opponent defects once, then defect forever.

    The harshest "social pressure" enforcement: one violation of the
    common rules ends cooperation permanently.
    """

    name = "grim-trigger"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history, their_history) -> int:
        return DEFECT if DEFECT in their_history else COOPERATE


class Pavlov(RepeatedStrategy):
    """Win-stay, lose-shift."""

    name = "pavlov"

    def first_move(self) -> int:
        return COOPERATE

    def next_move(self, my_history, their_history) -> int:
        if my_history[-1] == their_history[-1]:
            return COOPERATE
        return DEFECT


class RandomStrategy(RepeatedStrategy):
    """Cooperate with probability p (seeded)."""

    name = "random"

    def __init__(self, p_cooperate: float = 0.5, seed: int = 0):
        if not 0.0 <= p_cooperate <= 1.0:
            raise GameError("p_cooperate must be a probability")
        self.p_cooperate = p_cooperate
        self.rng = random.Random(seed)

    def first_move(self) -> int:
        return COOPERATE if self.rng.random() < self.p_cooperate else DEFECT

    def next_move(self, my_history, their_history) -> int:
        return self.first_move()


@dataclass
class MatchResult:
    """One repeated match between two strategies."""

    strategy_a: str
    strategy_b: str
    score_a: float
    score_b: float
    cooperation_rate: float
    rounds: int


def prisoners_dilemma(t: float = 5.0, r: float = 3.0,
                      p: float = 1.0, s: float = 0.0) -> NormalFormGame:
    """The canonical 2x2 dilemma with T > R > P > S."""
    if not (t > r > p > s):
        raise GameError("prisoner's dilemma requires T > R > P > S")
    a = np.array([[r, s], [t, p]])
    return NormalFormGame(
        [a, a.T],
        action_labels=[["cooperate", "defect"], ["cooperate", "defect"]],
        name="prisoners-dilemma",
    )


def play_match(
    strategy_a: RepeatedStrategy,
    strategy_b: RepeatedStrategy,
    game: Optional[NormalFormGame] = None,
    rounds: int = 100,
) -> MatchResult:
    """Play a repeated match; returns total scores and cooperation rate."""
    game = game or prisoners_dilemma()
    if game.n_actions != (2, 2):
        raise GameError("repeated matches require a 2x2 stage game")
    history_a: List[int] = []
    history_b: List[int] = []
    score_a = score_b = 0.0
    cooperations = 0
    for round_index in range(rounds):
        if round_index == 0:
            move_a = strategy_a.first_move()
            move_b = strategy_b.first_move()
        else:
            move_a = strategy_a.next_move(history_a, history_b)
            move_b = strategy_b.next_move(history_b, history_a)
        score_a += game.payoff(0, (move_a, move_b))
        score_b += game.payoff(1, (move_a, move_b))
        cooperations += (move_a == COOPERATE) + (move_b == COOPERATE)
        history_a.append(move_a)
        history_b.append(move_b)
    return MatchResult(
        strategy_a=strategy_a.name,
        strategy_b=strategy_b.name,
        score_a=score_a,
        score_b=score_b,
        cooperation_rate=cooperations / (2 * rounds),
        rounds=rounds,
    )


def round_robin(
    strategies: Sequence[RepeatedStrategy],
    game: Optional[NormalFormGame] = None,
    rounds: int = 100,
) -> Dict[str, float]:
    """Axelrod-style tournament; returns total score per strategy name."""
    scores: Dict[str, float] = {s.name: 0.0 for s in strategies}
    for i, a in enumerate(strategies):
        for b in strategies[i + 1:]:
            result = play_match(a, b, game=game, rounds=rounds)
            scores[a.name] += result.score_a
            scores[b.name] += result.score_b
    return scores


def cooperation_sustainable(
    t: float = 5.0, r: float = 3.0, p: float = 1.0, s: float = 0.0,
    discount: float = 0.9,
) -> bool:
    """Folk-theorem check: can grim trigger sustain cooperation?

    Cooperation is an equilibrium of the infinitely repeated dilemma with
    discount factor d iff the one-shot temptation gain T - R is no more
    than the discounted future loss (R - P) * d / (1 - d).
    """
    if not 0.0 <= discount < 1.0:
        raise GameError("discount factor must be in [0, 1)")
    temptation_gain = t - r
    future_loss = (r - p) * discount / (1.0 - discount)
    return temptation_gain <= future_loss
