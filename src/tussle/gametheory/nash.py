"""Nash equilibria of general-sum games (John Nash, §II-B).

Implements support enumeration for two-player general-sum games: for every
pair of equal-size supports, solve the indifference system and check
feasibility. Exact for nondegenerate bimatrix games; pure equilibria of
n-player games come from :meth:`NormalFormGame.pure_nash_equilibria`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import GameError
from .games import NormalFormGame

__all__ = ["MixedEquilibrium", "support_enumeration", "best_response"]


@dataclass
class MixedEquilibrium:
    """A mixed-strategy Nash equilibrium of a 2-player game."""

    strategies: Tuple[np.ndarray, np.ndarray]
    payoffs: Tuple[float, float]

    def is_pure(self, tolerance: float = 1e-9) -> bool:
        return all(np.max(s) > 1.0 - tolerance for s in self.strategies)

    def pure_profile(self) -> Optional[Tuple[int, int]]:
        if not self.is_pure():
            return None
        return (int(np.argmax(self.strategies[0])),
                int(np.argmax(self.strategies[1])))


def best_response(game: NormalFormGame, player: int,
                  opponent_strategy: np.ndarray) -> int:
    """The player's pure best response to an opponent mixed strategy.

    2-player only; ties break toward the lowest action index.
    """
    if game.n_players != 2:
        raise GameError("best_response handles 2-player games")
    a = game.payoffs[player]
    opponent_strategy = np.asarray(opponent_strategy, dtype=float)
    if player == 0:
        expected = a @ opponent_strategy
    else:
        expected = opponent_strategy @ a
    return int(np.argmax(expected))


def _solve_support(
    a: np.ndarray, b: np.ndarray,
    support_row: Tuple[int, ...], support_col: Tuple[int, ...],
    tolerance: float,
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Solve the indifference equations for one support pair."""
    k = len(support_row)
    m, n = a.shape

    # Column player's strategy y makes the row player indifferent across
    # support_row: A[i,:] y = v for all i in support, sum y = 1, y>=0 on
    # support, 0 off support.
    def solve_side(payoff: np.ndarray, own_support: Tuple[int, ...],
                   other_support: Tuple[int, ...]) -> Optional[np.ndarray]:
        # Unknowns: probabilities on other_support plus common value v.
        size = len(other_support)
        rows = []
        rhs = []
        for idx in range(len(own_support) - 1):
            i, j = own_support[idx], own_support[idx + 1]
            rows.append([payoff[i, c] - payoff[j, c] for c in other_support] + [0.0])
            rhs.append(0.0)
        rows.append([1.0] * size + [0.0])
        rhs.append(1.0)
        # Add the value equation to square the system.
        i0 = own_support[0]
        rows.append([payoff[i0, c] for c in other_support] + [-1.0])
        rhs.append(0.0)
        matrix = np.array(rows, dtype=float)
        vector = np.array(rhs, dtype=float)
        try:
            solution, residuals, rank, _ = np.linalg.lstsq(matrix, vector, rcond=None)
        except np.linalg.LinAlgError:
            return None
        if not np.allclose(matrix @ solution, vector, atol=1e-7):
            return None
        probabilities = solution[:size]
        if np.any(probabilities < -tolerance):
            return None
        full = np.zeros(payoff.shape[1])
        for c, p in zip(other_support, probabilities):
            full[c] = max(0.0, p)
        total = full.sum()
        if total <= 0:
            return None
        return full / total

    y = solve_side(a, support_row, support_col)
    if y is None:
        return None
    x = solve_side(b.T, support_col, support_row)
    if x is None:
        return None
    return x, y


def support_enumeration(
    game: NormalFormGame, tolerance: float = 1e-8, max_support: Optional[int] = None
) -> List[MixedEquilibrium]:
    """All Nash equilibria of a 2-player game by support enumeration.

    Enumerates equal-size support pairs (sufficient for nondegenerate
    games), solves the indifference system, and verifies the equilibrium
    conditions. ``max_support`` bounds support size for large games.
    """
    if game.n_players != 2:
        raise GameError("support enumeration handles 2-player games")
    a, b = (np.asarray(p, dtype=float) for p in game.payoffs)
    m, n = a.shape
    limit = max_support or min(m, n)
    equilibria: List[MixedEquilibrium] = []

    for k in range(1, limit + 1):
        for support_row in itertools.combinations(range(m), k):
            for support_col in itertools.combinations(range(n), k):
                solved = _solve_support(a, b, support_row, support_col, tolerance)
                if solved is None:
                    continue
                x, y = solved
                # Verify supports match and no profitable deviation exists.
                row_payoffs = a @ y
                col_payoffs = x @ b
                v_row = float(x @ row_payoffs)
                v_col = float(col_payoffs @ y)
                if np.any(row_payoffs > v_row + 1e-7):
                    continue
                if np.any(col_payoffs > v_col + 1e-7):
                    continue
                if any(x[i] > tolerance and i not in support_row for i in range(m)):
                    continue
                if any(y[j] > tolerance and j not in support_col for j in range(n)):
                    continue
                if any(np.allclose(x, eq.strategies[0], atol=1e-6)
                       and np.allclose(y, eq.strategies[1], atol=1e-6)
                       for eq in equilibria):
                    continue
                equilibria.append(
                    MixedEquilibrium(strategies=(x, y), payoffs=(v_row, v_col))
                )
    return equilibria
