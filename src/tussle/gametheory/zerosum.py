"""Zero-sum game solver (von Neumann minimax via linear programming).

"The classic theory, first formalized by the seminal zero sum games work
of von Neumann and Morgernstern" (§II-B). Solves two-player zero-sum
games exactly with ``scipy.optimize.linprog``: the row player's optimal
mixed strategy maximizes the game value v subject to every column giving
at least v.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.optimize import linprog

from ..errors import GameError
from .games import NormalFormGame

__all__ = ["ZeroSumSolution", "solve_zero_sum", "minimax_value"]


@dataclass
class ZeroSumSolution:
    """Optimal mixed strategies and the value of a zero-sum game.

    ``value`` is from the row player's perspective (player 0).
    """

    row_strategy: np.ndarray
    col_strategy: np.ndarray
    value: float

    def support(self, player: int, tolerance: float = 1e-9) -> Tuple[int, ...]:
        strategy = self.row_strategy if player == 0 else self.col_strategy
        return tuple(int(i) for i in np.where(strategy > tolerance)[0])


def _solve_lp(matrix: np.ndarray) -> Tuple[np.ndarray, float]:
    """Optimal row strategy and value for row-player payoff matrix A.

    LP formulation: maximize v s.t. x^T A >= v (componentwise),
    sum(x) = 1, x >= 0. Variables are (x_1..x_m, v); linprog minimizes,
    so we minimize -v.
    """
    m, n = matrix.shape
    # Shift payoffs positive (doesn't change optimal strategies).
    shift = float(matrix.min())
    shifted = matrix - shift + 1.0

    c = np.zeros(m + 1)
    c[-1] = -1.0  # maximize v
    # Constraints: for each column j: -sum_i x_i * A[i,j] + v <= 0
    a_ub = np.hstack([-shifted.T, np.ones((n, 1))])
    b_ub = np.zeros(n)
    a_eq = np.zeros((1, m + 1))
    a_eq[0, :m] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, None)] * m + [(None, None)]
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                     bounds=bounds, method="highs")
    if not result.success:
        raise GameError(f"zero-sum LP failed: {result.message}")
    strategy = np.maximum(result.x[:m], 0.0)
    strategy = strategy / strategy.sum()
    value = result.x[-1] + shift - 1.0
    return strategy, float(value)


def solve_zero_sum(game: NormalFormGame) -> ZeroSumSolution:
    """Solve a 2-player zero-sum game exactly.

    Raises :class:`GameError` if the game is not (constant-sum equivalent
    to) zero-sum. Constant-sum games are normalized internally.
    """
    if game.n_players != 2:
        raise GameError("zero-sum solver handles 2-player games")
    if not game.is_zero_sum():
        raise GameError("game is not zero-sum; use the Nash solver instead")
    total = float((game.payoffs[0] + game.payoffs[1]).flat[0])
    # Normalize constant-sum to zero-sum from the row player's view.
    matrix = np.asarray(game.payoffs[0], dtype=float)

    row_strategy, value = _solve_lp(matrix)
    # The column player solves the transposed game with negated payoffs.
    col_strategy, col_value = _solve_lp(-matrix.T)
    return ZeroSumSolution(
        row_strategy=row_strategy,
        col_strategy=col_strategy,
        value=value,
    )


def minimax_value(matrix: np.ndarray) -> float:
    """The value of the zero-sum game with row payoff ``matrix``."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise GameError("payoff matrix must be 2-dimensional")
    _, value = _solve_lp(arr)
    return value
