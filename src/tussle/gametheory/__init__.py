"""Game-theory engine: the formal model of tussle (§II-B).

Normal-form games with a tussle taxonomy, an exact zero-sum solver, Nash
support enumeration, learning dynamics (fictitious play, replicator,
best-response), repeated-game strategies and tournaments, Vickrey/VCG
mechanism design with truthfulness verification, bounded-rational agents,
and constructors for the paper's own canonical tussle games.
"""

from .games import NormalFormGame, TussleClass, classify_game
from .zerosum import ZeroSumSolution, minimax_value, solve_zero_sum
from .nash import MixedEquilibrium, best_response, support_enumeration
from .learning import (
    LearningResult,
    best_response_dynamics,
    fictitious_play,
    replicator_dynamics,
)
from .repeated import (
    COOPERATE,
    DEFECT,
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    MatchResult,
    Pavlov,
    RandomStrategy,
    RepeatedStrategy,
    TitForTat,
    cooperation_sustainable,
    play_match,
    prisoners_dilemma,
    round_robin,
)
from .mechanism import (
    AuctionResult,
    VCGMechanism,
    first_price_auction,
    is_truthful_dominant,
    vickrey_auction,
)
from .bounded import (
    BoundedAgent,
    BoundedPlaySession,
    Imitator,
    MyopicBestResponder,
    Satisficer,
)
from .tussle_games import (
    anonymity_game,
    congestion_dilemma,
    encryption_escalation_game,
    peering_game,
    wiretap_hide_seek,
)

__all__ = [
    "NormalFormGame", "TussleClass", "classify_game",
    "ZeroSumSolution", "minimax_value", "solve_zero_sum",
    "MixedEquilibrium", "best_response", "support_enumeration",
    "LearningResult", "best_response_dynamics", "fictitious_play",
    "replicator_dynamics",
    "COOPERATE", "DEFECT", "AlwaysCooperate", "AlwaysDefect", "GrimTrigger",
    "MatchResult", "Pavlov", "RandomStrategy", "RepeatedStrategy", "TitForTat",
    "cooperation_sustainable", "play_match", "prisoners_dilemma", "round_robin",
    "AuctionResult", "VCGMechanism", "first_price_auction",
    "is_truthful_dominant", "vickrey_auction",
    "BoundedAgent", "BoundedPlaySession", "Imitator", "MyopicBestResponder",
    "Satisficer",
    "anonymity_game", "congestion_dilemma", "encryption_escalation_game",
    "peering_game", "wiretap_hide_seek",
]
