"""Normal-form games and the paper's tussle taxonomy.

"A game represents an abstraction of the underlying tussle environment,
and can range from purely conflicting games (so called zero-sum games)
where the values of actors in the network are in direct conflict, to
coordination games where actors have a common goal but fail to coordinate
their actions due to incentive problems" (§II-B).

:class:`NormalFormGame` stores an n-player game as numpy payoff arrays;
:func:`classify_game` places a 2-player game on the paper's spectrum
(zero-sum / coordination / mixed-motive), giving E12 its taxonomy rows.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GameError

__all__ = ["TussleClass", "NormalFormGame", "classify_game"]


class TussleClass(Enum):
    """Where a tussle sits on the conflict spectrum (§II-B)."""

    ZERO_SUM = "zero-sum"            # purely conflicting interests
    COORDINATION = "coordination"    # common goal, incentive to align
    MIXED_MOTIVE = "mixed-motive"    # "interests are not adverse, but simply different"
    HARMONY = "harmony"              # dominant strategies already align


class NormalFormGame:
    """An n-player normal-form game.

    Parameters
    ----------
    payoffs:
        A sequence of n numpy arrays, one per player, each with shape
        ``(m_1, ..., m_n)`` — ``payoffs[i][a_1, ..., a_n]`` is player i's
        payoff under joint action ``(a_1, ..., a_n)``.
    action_labels:
        Optional human-readable action names per player.
    name:
        Optional display name for the game.
    """

    def __init__(
        self,
        payoffs: Sequence[np.ndarray],
        action_labels: Optional[Sequence[Sequence[str]]] = None,
        name: str = "",
    ):
        if not payoffs:
            raise GameError("a game needs at least one player")
        arrays = [np.asarray(p, dtype=float) for p in payoffs]
        shape = arrays[0].shape
        n = len(arrays)
        if len(shape) != n:
            raise GameError(
                f"payoff arrays must have one axis per player "
                f"(got shape {shape} for {n} players)"
            )
        for i, arr in enumerate(arrays):
            if arr.shape != shape:
                raise GameError(
                    f"player {i} payoff shape {arr.shape} != {shape}"
                )
        self.payoffs: List[np.ndarray] = arrays
        self.name = name
        if action_labels is not None:
            if len(action_labels) != n:
                raise GameError("need one label list per player")
            for i, labels in enumerate(action_labels):
                if len(labels) != shape[i]:
                    raise GameError(
                        f"player {i} has {shape[i]} actions but "
                        f"{len(labels)} labels"
                    )
            self.action_labels = [list(l) for l in action_labels]
        else:
            self.action_labels = [
                [f"a{j}" for j in range(shape[i])] for i in range(n)
            ]

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def n_players(self) -> int:
        return len(self.payoffs)

    @property
    def n_actions(self) -> Tuple[int, ...]:
        return self.payoffs[0].shape

    def payoff(self, player: int, profile: Sequence[int]) -> float:
        """Player's payoff under a pure joint action profile."""
        return float(self.payoffs[player][tuple(profile)])

    # ------------------------------------------------------------------
    # Pure-strategy analysis
    # ------------------------------------------------------------------
    def joint_profiles(self) -> Iterable[Tuple[int, ...]]:
        """Iterate every pure joint action profile."""
        return np.ndindex(*self.n_actions)

    def is_best_response(self, player: int, profile: Sequence[int]) -> bool:
        """Is the player's action a best response to the others' actions?"""
        profile = tuple(profile)
        current = self.payoff(player, profile)
        for alt in range(self.n_actions[player]):
            candidate = profile[:player] + (alt,) + profile[player + 1:]
            if self.payoff(player, candidate) > current + 1e-12:
                return False
        return True

    def pure_nash_equilibria(self) -> List[Tuple[int, ...]]:
        """Every pure-strategy Nash equilibrium (exhaustive check)."""
        return [
            tuple(int(a) for a in profile)
            for profile in self.joint_profiles()
            if all(self.is_best_response(p, profile) for p in range(self.n_players))
        ]

    def dominant_strategy(self, player: int) -> Optional[int]:
        """The player's weakly dominant action, if one exists."""
        n = self.n_actions[player]
        others_shapes = self.n_actions[:player] + self.n_actions[player + 1:]
        for candidate in range(n):
            dominant = True
            for others in np.ndindex(*others_shapes):
                profile = others[:player] + (candidate,) + others[player:]
                value = self.payoff(player, profile)
                for alt in range(n):
                    alt_profile = others[:player] + (alt,) + others[player:]
                    if self.payoff(player, alt_profile) > value + 1e-12:
                        dominant = False
                        break
                if not dominant:
                    break
            if dominant:
                return candidate
        return None

    def expected_payoff(self, player: int, strategies: Sequence[np.ndarray]) -> float:
        """Expected payoff under mixed strategies (one per player)."""
        if len(strategies) != self.n_players:
            raise GameError("need one mixed strategy per player")
        result = self.payoffs[player]
        # Contract each axis with the corresponding strategy, last first so
        # axis indices stay valid.
        for axis in reversed(range(self.n_players)):
            strategy = np.asarray(strategies[axis], dtype=float)
            if strategy.shape != (self.n_actions[axis],):
                raise GameError(
                    f"strategy for player {axis} has wrong length"
                )
            result = np.tensordot(result, strategy, axes=([axis], [0]))
        return float(result)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    def is_zero_sum(self, tolerance: float = 1e-9) -> bool:
        """Do payoffs sum to a constant across every profile?"""
        total = sum(self.payoffs)
        return bool(np.all(np.abs(total - total.flat[0]) <= tolerance))

    def is_symmetric(self) -> bool:
        """2-player: is the game symmetric (B = A^T)?"""
        if self.n_players != 2:
            raise GameError("symmetry check implemented for 2-player games")
        a, b = self.payoffs
        return a.shape[0] == a.shape[1] and bool(np.allclose(b, a.T))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<NormalFormGame {self.name or 'unnamed'} "
                f"players={self.n_players} actions={self.n_actions}>")


def classify_game(game: NormalFormGame) -> TussleClass:
    """Place a 2-player game on the paper's conflict spectrum.

    * ZERO_SUM — payoffs sum to a constant (purely conflicting);
    * HARMONY — both players have dominant strategies that form an
      equilibrium maximizing the payoff sum (no real tussle);
    * COORDINATION — multiple pure equilibria and players' payoffs are
      positively aligned across profiles (common goal, coordination risk);
    * MIXED_MOTIVE — everything else ("interests are not adverse, but
      simply different").
    """
    if game.n_players != 2:
        raise GameError("classification implemented for 2-player games")
    if game.is_zero_sum():
        return TussleClass.ZERO_SUM

    d0 = game.dominant_strategy(0)
    d1 = game.dominant_strategy(1)
    if d0 is not None and d1 is not None:
        welfare = sum(game.payoff(p, (d0, d1)) for p in range(2))
        best_welfare = max(
            sum(game.payoff(p, profile) for p in range(2))
            for profile in game.joint_profiles()
        )
        if welfare >= best_welfare - 1e-9:
            return TussleClass.HARMONY

    equilibria = game.pure_nash_equilibria()
    a, b = game.payoffs
    correlation_aligned = False
    flat_a, flat_b = a.ravel(), b.ravel()
    if np.std(flat_a) > 0 and np.std(flat_b) > 0:
        corr = float(np.corrcoef(flat_a, flat_b)[0, 1])
        correlation_aligned = corr > 0.5
    if len(equilibria) >= 2 and correlation_aligned:
        return TussleClass.COORDINATION
    return TussleClass.MIXED_MOTIVE
