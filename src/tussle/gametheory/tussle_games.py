"""Canonical tussle games built from the paper's scenarios.

Each constructor returns a :class:`~tussle.gametheory.games.NormalFormGame`
whose payoffs encode one of the paper's running examples, so the solvers
and learning dynamics can be applied to *the paper's own tussles*:

* :func:`congestion_dilemma` — comply-vs-cheat on congestion control
  (§II-B), a prisoner's dilemma;
* :func:`encryption_escalation_game` — the §VI-A escalation between a
  user who may encrypt and an ISP who may peek/exploit or block
  encrypted traffic, parameterized by how competitive the access market
  is;
* :func:`peering_game` — two rival ISPs deciding whether to interconnect
  (§I: "ISPs must interconnect, but ISPs are sometimes fierce
  competitors"), a coordination game;
* :func:`anonymity_game` — §V-B-1: a sender chooses identified vs
  anonymous, a receiver chooses accept vs refuse-anonymous;
* :func:`wiretap_hide_seek` — the steganography endgame of §VI-A as a
  zero-sum hide-and-seek game.
"""

from __future__ import annotations


import numpy as np

from ..errors import GameError
from .games import NormalFormGame

__all__ = [
    "congestion_dilemma",
    "encryption_escalation_game",
    "peering_game",
    "anonymity_game",
    "wiretap_hide_seek",
]


def congestion_dilemma(
    capacity_value: float = 3.0,
    cheat_gain: float = 2.0,
    collapse_cost: float = 1.5,
) -> NormalFormGame:
    """Comply-vs-cheat on congestion control as a prisoner's dilemma.

    Both comply: fair shares worth ``capacity_value`` each. One cheats: the
    cheater grabs extra (``capacity_value + cheat_gain``), the complier is
    squeezed to ``capacity_value - cheat_gain``. Both cheat: congestion
    collapse leaves each ``capacity_value - collapse_cost``.

    With the defaults this satisfies T > R > P > S, so universal cheating
    is the unique equilibrium — the technical design "will do nothing to
    bound or guide the resulting shift" once social pressure fails.
    """
    r = capacity_value
    t = capacity_value + cheat_gain
    s = capacity_value - cheat_gain
    p = capacity_value - collapse_cost
    if not (t > r > p > s):
        raise GameError("parameters must give a dilemma (T > R > P > S)")
    a = np.array([[r, s], [t, p]])
    return NormalFormGame(
        [a, a.T],
        action_labels=[["comply", "cheat"], ["comply", "cheat"]],
        name="congestion-dilemma",
    )


def encryption_escalation_game(
    competition: float,
    communication_value: float = 10.0,
    encryption_cost: float = 1.0,
    carry_profit: float = 5.0,
    exploit_profit: float = 4.0,
    exploit_user_loss: float = 6.0,
    block_control_value: float = 3.0,
    churn_if_exploited: float = 8.0,
    churn_if_blocked: float = 10.0,
    steganography: bool = False,
    steganography_cost: float = 2.0,
) -> NormalFormGame:
    """The §VI-A encryption/blocking escalation, vs market competition.

    Players: the user (rows: plaintext, encrypt) and the ISP (columns:
    carry, exploit, block-encrypted). ``competition`` in [0, 1] scales how
    much revenue the ISP loses when mistreated customers can leave — the
    paper's "In the U.S., competition would probably discipline a provider
    that tried to block encryption. But a conservative government with a
    state-run monopoly ISP might [not]."

    Shape of the equilibria (with defaults):

    * high competition — (plaintext, carry) is a pure equilibrium: the
      tussle is disciplined away;
    * low competition — *no* pure equilibrium: user and ISP chase each
      other around encrypt/exploit/block forever, the paper's "escalating
      tussle" with "no final outcome".

    With ``steganography=True`` the user gains a third action (§VI-A
    footnote 17): hide the traffic inside innocuous cover. It costs more
    than encryption (``steganography_cost``) but is undetectable — the
    ISP's exploit learns nothing and its block-encrypted policy does not
    touch it — so it raises the user's *guaranteed* (maximin) payoff, the
    escalation's next rung.
    """
    if not 0.0 <= competition <= 1.0:
        raise GameError(f"competition must be in [0, 1], got {competition}")
    c = competition
    v = communication_value
    user = np.array([
        # ISP: carry,            exploit,                     block-encrypted
        [v,                      v - exploit_user_loss,       v],            # plaintext
        [v - encryption_cost,    v - encryption_cost,         0.0],          # encrypt
    ])
    isp = np.array([
        [carry_profit,
         carry_profit + exploit_profit - churn_if_exploited * c,
         carry_profit],
        [carry_profit,
         carry_profit - 0.5,  # inspection cost, nothing learned
         carry_profit + block_control_value - churn_if_blocked * c],
    ])
    user_labels = ["plaintext", "encrypt"]
    if steganography:
        # Steganography passes every ISP posture; only its cost varies.
        steg_value = v - steganography_cost
        user = np.vstack([user, [steg_value, steg_value, steg_value]])
        isp = np.vstack([
            isp,
            [carry_profit, carry_profit - 0.5, carry_profit],
        ])
        user_labels.append("steganography")
    return NormalFormGame(
        [user, isp],
        action_labels=[
            user_labels,
            ["carry", "exploit", "block-encrypted"],
        ],
        name=f"encryption-escalation(c={competition:.2f})",
    )


def peering_game(
    interconnection_value: float = 6.0,
    setup_cost: float = 2.0,
    asymmetric_benefit: float = 1.0,
) -> NormalFormGame:
    """Two competing ISPs deciding whether to peer.

    Both peer: each nets ``interconnection_value - setup_cost`` (their
    customers can reach everyone). One tries to peer alone: pays setup,
    gets nothing. Neither peers: zero. A coordination game with two pure
    equilibria (peer, peer) and (refuse, refuse) — "it is not at all clear
    what interests are being served... when ISPs negotiate terms of
    connection" (§I).
    """
    gain = interconnection_value - setup_cost
    if gain <= 0:
        raise GameError("peering must be jointly profitable for the game to be interesting")
    a = np.array([
        [gain + asymmetric_benefit, -setup_cost],
        [0.0, 0.0],
    ])
    b = np.array([
        [gain - asymmetric_benefit, 0.0],
        [-setup_cost, 0.0],
    ])
    return NormalFormGame(
        [a, b],
        action_labels=[["peer", "refuse"], ["peer", "refuse"]],
        name="peering",
    )


def anonymity_game(
    interaction_value: float = 5.0,
    anonymity_value: float = 2.0,
    abuse_risk: float = 6.0,
    accountability_value: float = 1.0,
) -> NormalFormGame:
    """Sender (identified/anonymous) vs receiver (accept-all/refuse-anonymous).

    "A possible outcome of this tension is that while it will be possible
    to act anonymously, many people will choose not to communicate with
    you if you do" (§V-B-1). The receiver accepting anonymous traffic
    gains the interaction but bears ``abuse_risk``; refusing it forgoes
    the interaction with anonymous senders only.
    """
    sender = np.array([
        # receiver: accept-all,                          refuse-anonymous
        [interaction_value,                              interaction_value],   # identified
        [interaction_value + anonymity_value,            0.0],                 # anonymous
    ])
    receiver = np.array([
        [interaction_value + accountability_value,       interaction_value + accountability_value],
        [interaction_value - abuse_risk,                 0.0],
    ])
    return NormalFormGame(
        [sender, receiver],
        action_labels=[
            ["identified", "anonymous"],
            ["accept-all", "refuse-anonymous"],
        ],
        name="anonymity",
    )


def wiretap_hide_seek(channels: int = 3, detection_payoff: float = 1.0) -> NormalFormGame:
    """Steganography as zero-sum hide-and-seek (§VI-A footnote).

    The hider picks one of ``channels`` covert channels; the inspector
    picks one channel to inspect. Inspection of the used channel wins
    ``detection_payoff`` for the inspector (zero-sum). The optimal mixed
    strategy for both is uniform with value -1/channels for the hider.
    """
    if channels < 2:
        raise GameError("need at least two channels")
    hider = np.full((channels, channels), 0.0)
    for channel in range(channels):
        hider[channel, channel] = -detection_payoff
    return NormalFormGame(
        [hider, -hider],
        action_labels=[
            [f"hide-ch{i}" for i in range(channels)],
            [f"inspect-ch{i}" for i in range(channels)],
        ],
        name="wiretap-hide-seek",
    )
