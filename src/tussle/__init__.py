"""tussle: an executable reproduction of "Tussle in Cyberspace" (Clark et
al., SIGCOMM 2002 / IEEE-ACM ToN 2005).

The paper is a position paper — it proposes design principles for networks
whose stakeholders have conflicting interests, but ships no system. This
library builds the closest executable equivalent: a stakeholder/policy
simulation framework in which every tussle scenario, principle and
post-mortem in the paper becomes a runnable experiment.

Subpackages
-----------
``tussle.core``
    The paper's contribution: stakeholders, mechanisms, tussle spaces, the
    adaptation simulator, and the design principles as metrics.
``tussle.netsim``
    Discrete-event network substrate: topology, packets (with encryption
    and tunnels), middleboxes, forwarding, transport, DNS, faults.
``tussle.routing``
    Link-state, path-vector (Gao-Rexford), user source routing with
    payment, overlays, and visibility analysis.
``tussle.econ``
    Markets, pricing strategies, competition metrics, the fear-and-greed
    investment model, broadband facilities, payments.
``tussle.gametheory``
    Normal-form games, zero-sum and Nash solvers, learning dynamics,
    repeated games, Vickrey/VCG mechanisms, bounded rationality, and the
    paper's canonical tussle games.
``tussle.actornet``
    Actor-network theory: actors, commitments, alignment, durability,
    churn, disruption.
``tussle.trust``
    Identity framework, trust graphs, trust-aware firewalls, third-party
    mediators, threat campaigns.
``tussle.policy``
    A small policy language with parser, evaluator, bounded ontology and
    two-party negotiation.
``tussle.experiments``
    One module per experiment E01-E12 (see DESIGN.md), each regenerating
    one of the paper's qualitative claims as a table.
``tussle.obs``
    Deterministic-safe observability: tracer, metrics, profiler, trace
    report CLI and benchmark record emitter. Off by default.
"""

from . import actornet, core, econ, gametheory, netsim, obs, policy, routing, trust
from .errors import (
    ActorNetworkError,
    AddressingError,
    DesignError,
    ExperimentError,
    GameError,
    MarketError,
    ObservabilityError,
    OntologyError,
    PolicyError,
    PolicyParseError,
    RoutingError,
    SimulationError,
    TopologyError,
    TrustError,
    TussleError,
)

__version__ = "1.0.0"

__all__ = [
    "actornet", "core", "econ", "gametheory", "netsim", "obs", "policy",
    "routing", "trust",
    "ActorNetworkError", "AddressingError", "DesignError", "ExperimentError",
    "GameError", "MarketError", "ObservabilityError", "OntologyError",
    "PolicyError", "PolicyParseError", "RoutingError", "SimulationError",
    "TopologyError", "TrustError", "TussleError",
    "__version__",
]
