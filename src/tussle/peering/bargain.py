"""Nash bargaining over the peering surplus.

§V-A-4 of the paper frames interconnection as a tussle that is
*negotiated*, not computed: two providers each control something the
other wants (reach into their customer cone), and the agreement they
strike divides the joint gain from connecting directly instead of
buying transit.  This module is that negotiation, made explicit:

* :func:`nash_bargain` — the textbook Nash bargaining solution on a
  linear utility frontier, in closed form.  The disagreement point is
  what each side earns *without* a deal — i.e. paying transit along the
  currently converged valley-free routes — which is exactly how the
  routing tussle feeds back into the money tussle.
* :func:`evaluate_pair` — turns directional exchanged traffic
  (:class:`~tussle.peering.value.PairTraffic`) into a concrete
  agreement: settlement-free peering when traffic is balanced, paid
  peering with an explicit side payment when one side sends far more
  than it receives (the content-pays-eyeballs outcome), or no deal when
  the joint surplus cannot cover two sets of ports.
* :func:`depeering_stage_game` / :func:`peering_sustainable` — the
  enforcement story.  Honoring an agreement is a repeated game: the
  one-shot game tempts each side to defect (squeeze the counterparty
  for nearly the whole surplus), and only the shadow of the future —
  :func:`tussle.gametheory.repeated.cooperation_sustainable` — keeps
  the agreement alive.  A depeering war is both sides playing defect.

Everything is closed-form or enumerated; nothing here draws random
numbers, so a bargain is a pure function of the traffic it is fed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from ..errors import PeeringError
from ..gametheory.games import NormalFormGame
from ..gametheory.repeated import (
    cooperation_sustainable,
    prisoners_dilemma,
)
from .value import PairTraffic, PeeringEconomics

__all__ = ["BargainOutcome", "nash_bargain", "AgreementKind",
           "PeeringAgreement", "evaluate_pair", "depeering_stage_game",
           "peering_sustainable"]

# Defection skims this share of the surplus in the one-shot game; the
# honoring side is left holding stranded ports (a small negative).
_TEMPTATION_SHARE = 0.8
_SUCKER_SHARE = -0.1


@dataclass(frozen=True)
class BargainOutcome:
    """The Nash bargaining solution for one two-party negotiation."""

    agreed: bool
    utilities: Tuple[float, float]
    disagreement: Tuple[float, float]
    surplus: float

    @property
    def gains(self) -> Tuple[float, float]:
        """Each party's gain over its disagreement payoff."""
        return (self.utilities[0] - self.disagreement[0],
                self.utilities[1] - self.disagreement[1])


def nash_bargain(total: float, disagreement: Tuple[float, float],
                 weights: Tuple[float, float] = (1.0, 1.0),
                 ) -> BargainOutcome:
    """Nash bargaining solution on the linear frontier ``w·u = total``.

    Maximizes the Nash product ``(u_a - d_a) * (u_b - d_b)`` over the
    feasible frontier ``w_a*u_a + w_b*u_b = total`` with ``u_i >= d_i``.
    On a linear frontier the maximizer is closed-form: each party gets
    its disagreement payoff plus half the (weight-normalised) surplus

        ``u_i = d_i + S / (2 * w_i)``  with  ``S = total - w·d``.

    If the surplus ``S`` is non-positive there is no feasible deal that
    improves on disagreement, and the outcome is ``agreed=False`` with
    both parties at their disagreement payoffs.  The weights let callers
    express utility scales; the solution is invariant to positive affine
    rescaling of either party's utility (tested property, not prose).
    """
    w_a, w_b = weights
    if w_a <= 0 or w_b <= 0:
        raise PeeringError("bargaining weights must be positive")
    d_a, d_b = float(disagreement[0]), float(disagreement[1])
    if not all(math.isfinite(x) for x in (total, d_a, d_b, w_a, w_b)):
        raise PeeringError("bargaining inputs must be finite")
    surplus = float(total) - (w_a * d_a + w_b * d_b)
    if surplus <= 0.0:
        return BargainOutcome(agreed=False, utilities=(d_a, d_b),
                              disagreement=(d_a, d_b), surplus=surplus)
    return BargainOutcome(
        agreed=True,
        utilities=(d_a + surplus / (2.0 * w_a),
                   d_b + surplus / (2.0 * w_b)),
        disagreement=(d_a, d_b),
        surplus=surplus,
    )


class AgreementKind(Enum):
    """What two ASes agreed to do about each other's traffic."""

    SETTLEMENT_FREE = "settlement_free"
    PAID_PEERING = "paid_peering"


@dataclass(frozen=True)
class PeeringAgreement:
    """A struck bargain between ``a`` and ``b`` (stored with a < b).

    ``transfer`` is the per-round side payment: positive means ``a``
    pays ``b``, negative means ``b`` pays ``a``, zero for
    settlement-free.  ``surplus`` is the joint gain over transit that
    the agreement divides; ``savings_a``/``savings_b`` are each side's
    gross transit savings the split was computed from.
    """

    a: int
    b: int
    kind: AgreementKind
    transfer: float
    surplus: float
    savings_a: float
    savings_b: float

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.a, self.b)

    def net_gain(self, asn: int, econ: PeeringEconomics) -> float:
        """One side's per-round gain from honoring the agreement."""
        if asn == self.a:
            return self.savings_a - econ.peering_cost - self.transfer
        if asn == self.b:
            return self.savings_b - econ.peering_cost + self.transfer
        raise PeeringError(f"AS {asn} is not a party to this agreement")

    def to_dict(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "kind": self.kind.value,
            "transfer": round(self.transfer, 9),
            "surplus": round(self.surplus, 9),
            "savings_a": round(self.savings_a, 9),
            "savings_b": round(self.savings_b, 9),
        }


def evaluate_pair(traffic: PairTraffic, econ: PeeringEconomics,
                  a_pays_transit: bool = True,
                  b_pays_transit: bool = True,
                  ) -> Optional[PeeringAgreement]:
    """Bargain one candidate (or existing) peering into an agreement.

    The disagreement point is the transit status quo: each side keeps
    paying ``transit_price`` per unit it *sends* toward the other's
    customer cone up its provider link (zero for a side with no
    providers — a tier-1 saves nothing by peering).  Peering moves that
    traffic onto a settlement-free edge at a flat ``peering_cost`` per
    side, so the joint surplus is

        ``S = savings_a + savings_b - 2 * peering_cost``.

    :func:`nash_bargain` splits ``S`` equally; the equal split is
    implemented as a side payment ``transfer = (savings_a -
    savings_b) / 2`` from the side that saves more (the heavy *sender*)
    to the side that saves less — which is precisely the paid-peering
    tussle: content-heavy networks end up paying eyeball networks even
    though both gain.  If the savings are within ``econ.ratio_cap`` of
    each other the parties waive the imbalance and peer settlement-free
    (the traffic-ratio clause of real peering policies).  Returns
    ``None`` when the surplus is non-positive: transit stays.
    """
    if traffic.to_b < 0 or traffic.to_a < 0:
        raise PeeringError("exchanged volumes cannot be negative")
    savings_a = econ.transit_price * traffic.to_b if a_pays_transit else 0.0
    savings_b = econ.transit_price * traffic.to_a if b_pays_transit else 0.0
    total = savings_a + savings_b - 2.0 * econ.peering_cost
    outcome = nash_bargain(total, disagreement=(0.0, 0.0))
    if not outcome.agreed:
        return None
    # Equal split of the surplus, realised as a side payment on top of
    # each side's own savings: u_i = savings_i - peering_cost -/+ transfer.
    transfer = (savings_a - savings_b) / 2.0
    hi, lo = max(savings_a, savings_b), min(savings_a, savings_b)
    balanced = hi <= econ.ratio_cap * lo
    if balanced:
        # Within ratio: waive settlement, each side banks its own savings.
        kind, transfer = AgreementKind.SETTLEMENT_FREE, 0.0
    else:
        kind = AgreementKind.PAID_PEERING
    return PeeringAgreement(
        a=traffic.a, b=traffic.b, kind=kind, transfer=transfer,
        surplus=outcome.surplus, savings_a=savings_a, savings_b=savings_b,
    )


def depeering_stage_game(surplus: float) -> NormalFormGame:
    """The one-shot honor/defect game behind a peering agreement.

    Each round both parties choose to *honor* the agreement (cooperate)
    or *defect* — throttle the interconnect and demand the whole
    surplus.  Honoring together yields the Nash split ``S/2`` each; a
    lone defector skims ``0.8 * S`` while the honoring side is left
    with stranded ports (``-0.1 * S``); mutual defection is the
    depeering war, which burns the whole surplus (0 each).  The payoffs
    satisfy T > R > P > S, so the one-shot game is a prisoner's
    dilemma: defection is dominant, and a single bargaining round
    cannot sustain peering — only repetition can.
    """
    if surplus <= 0:
        raise PeeringError("the honor/defect game needs a positive surplus")
    return prisoners_dilemma(
        t=_TEMPTATION_SHARE * surplus,
        r=0.5 * surplus,
        p=0.0,
        s=_SUCKER_SHARE * surplus,
    )


def peering_sustainable(surplus: float, discount: float) -> bool:
    """Folk-theorem check: does the shadow of the future hold the peace?

    True iff grim trigger sustains mutual honoring of an agreement with
    joint surplus ``surplus`` at per-round discount factor ``discount``
    — i.e. the one-shot temptation ``(0.8 - 0.5) * S`` is worth less
    than the discounted stream of Nash splits forfeited by a war.
    """
    if surplus <= 0:
        return False
    return cooperation_sustainable(
        t=_TEMPTATION_SHARE * surplus,
        r=0.5 * surplus,
        p=0.0,
        s=_SUCKER_SHARE * surplus,
        discount=discount,
    )
