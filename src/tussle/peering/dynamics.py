"""The coupled money/routing fixed point: peering decisions rewrite routes.

This is the loop the tentpole exists for.  In the paper's terms, the
interconnection tussle plays out *at run time*: providers look at the
traffic the current routes deliver, strike or abandon peering
agreements accordingly, the routing substrate reconverges under the new
business graph, traffic shifts, the value of every agreement changes,
and the bargaining round runs again — until nobody wants to change
anything (a fixed point), or the market visibly oscillates.

One iteration of :class:`PeeringDynamics`:

1. **Route** — :meth:`~tussle.routing.pathvector.PathVectorRouting.converge_fast`
   recomputes the valley-free RIB for the current relationship graph
   (stub destinations only — stubs are where demand originates).
2. **Measure** — :func:`~tussle.peering.value.route_volumes` pushes the
   gravity demand matrix along the converged routes, yielding directed
   per-edge volumes.
3. **Re-bargain** — every *existing* agreement is re-evaluated at the
   volumes its own edge actually carried (drop it if the surplus went
   non-positive), and every *candidate* pair (co-located at an IXP,
   currently unrelated, not under embargo) is bargained over its
   exclusive-cone forecast traffic (:func:`~tussle.peering.bargain.evaluate_pair`).
4. **Apply** — depeerings and new peerings rewrite the
   :class:`~tussle.netsim.topology.Network` relationships, in one batch,
   in sorted ``(min_asn, max_asn)`` order.

Pairs are always visited in that sorted total order, the traffic matrix
is a seeded substream of the master seed, and bargaining itself draws
no randomness — so the fixed point is a pure function of
``(network, seed, economics)`` and byte-identical across runs.  That is
asserted, not promised: ``tests/peering/test_determinism.py`` double-
runs the whole loop and compares canonical JSON bytes.

Reachability is preserved *by construction* through every war: peering
only ever adds or removes ``PEER_PEER`` edges, never customer/provider
edges, and the generated provider DAG plus tier-1 clique already reach
everything.  That is the paper's design-for-tussle point — the
isolation of the money tussle from the reachability invariant is a
property of where the designer drew the interface, and experiment P01
checks it rather than assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import PeeringError
from ..netsim.topology import Network, Relationship
from ..resil.workerchaos import digest63
from ..routing.pathvector import PathVectorRouting
from .bargain import PeeringAgreement, evaluate_pair
from .value import (
    AsAccount,
    PeeringEconomics,
    TrafficMatrix,
    as_accounts,
    cone_traffic,
    customer_cones,
    edge_traffic,
    route_volumes,
)

__all__ = ["IterationRecord", "FixedPointResult", "PeeringDynamics"]

Pair = Tuple[int, int]


def _pair(a: int, b: int) -> Pair:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class IterationRecord:
    """What one bargaining round did to the interconnection market."""

    iteration: int
    agreements: int
    peered: int
    depeered: int
    total_transit_cost: float
    total_transfers: float
    routing_levels: int

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "agreements": self.agreements,
            "peered": self.peered,
            "depeered": self.depeered,
            "total_transit_cost": round(self.total_transit_cost, 6),
            "total_transfers": round(self.total_transfers, 6),
            "routing_levels": self.routing_levels,
        }


@dataclass
class FixedPointResult:
    """Outcome of iterating the market to quiescence (or not).

    ``verdict`` is one of ``"fixed-point"`` (no side wants to change
    anything), ``"oscillation"`` (a previously seen market state
    recurred — the loop kept running to the cap so the cycle is on
    record), or ``"iteration-cap"`` (the cap stopped an unconverged
    run).  Either non-converged verdict is a structured result, never a
    hang.
    """

    converged: bool
    oscillating: bool
    iterations: int
    verdict: str
    history: List[IterationRecord] = field(default_factory=list)
    agreements: Dict[Pair, PeeringAgreement] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "converged": self.converged,
            "oscillating": self.oscillating,
            "iterations": self.iterations,
            "verdict": self.verdict,
            "history": [h.to_dict() for h in self.history],
            "agreements": [self.agreements[p].to_dict()
                           for p in sorted(self.agreements)],
        }


class PeeringDynamics:
    """Iterate bargaining and routing to a joint fixed point.

    Owns (and mutates) its ``network``: peer edges are added and
    removed as agreements are struck and abandoned.  The gravity demand
    matrix comes from the ``"tmatrix"`` substream of ``seed``; the
    bargaining layer's own substream (``"peering"/"bargain"``, exposed
    as :attr:`bargain_seed`) seeds the repeated-game probes in the
    experiments, so adding draws to one stream can never perturb the
    other (lint flows F201/F202 watch this).

    ``refusal_memory`` is the stabiliser: once a pair's agreement is
    dropped as unprofitable, the pair is not re-bargained from its
    (optimistic) cone forecast again.  With it on, every pair changes
    state at most twice, so the loop terminates; switching it off
    exposes genuine bargaining oscillation, which the loop detects and
    reports instead of hanging.
    """

    def __init__(self, network: Network, seed: int,
                 econ: PeeringEconomics = PeeringEconomics(),
                 max_iterations: int = 16,
                 refusal_memory: bool = True):
        if max_iterations < 1:
            raise PeeringError("need at least one bargaining iteration")
        self.network = network
        self.seed = seed
        self.econ = econ
        self.max_iterations = max_iterations
        self.refusal_memory = refusal_memory
        self.traffic = TrafficMatrix.from_network(network, seed, econ)
        self.bargain_seed = digest63(seed, "peering", "bargain")
        self.agreements: Dict[Pair, PeeringAgreement] = {}
        self.embargo: Set[Pair] = set()
        self.refused: Set[Pair] = set()
        self._tier1 = frozenset(a.asn for a in network.ases if a.tier == 1)
        self._cones = customer_cones(network)
        self.routing: Optional[PathVectorRouting] = None
        self.volumes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Routing / measurement
    # ------------------------------------------------------------------
    def reconverge(self) -> PathVectorRouting:
        """Reconverge valley-free routes for the current business graph."""
        proto = PathVectorRouting(self.network)
        proto.converge_fast(destinations=tuple(self.traffic.stub_asns))
        self.routing = proto
        self.volumes = route_volumes(proto.fast_rib, self.traffic)
        return proto

    def accounts(self) -> Dict[int, AsAccount]:
        """Per-AS accounts under the current routes and agreements."""
        if self.routing is None or self.volumes is None:
            raise PeeringError("call reconverge() before reading accounts")
        transfers: Dict[int, float] = {}
        for pair in sorted(self.agreements):
            agreement = self.agreements[pair]
            transfers[agreement.a] = transfers.get(agreement.a, 0.0) \
                - agreement.transfer
            transfers[agreement.b] = transfers.get(agreement.b, 0.0) \
                + agreement.transfer
        return as_accounts(self.network, self.routing.fast_rib, self.volumes,
                           self.traffic, self.econ, transfers)

    # ------------------------------------------------------------------
    # Bargaining
    # ------------------------------------------------------------------
    def _peer_pairs(self) -> List[Pair]:
        pairs: Set[Pair] = set()
        for autonomous in self.network.ases:
            for peer in self.network.peers_of(autonomous.asn):
                pairs.add(_pair(autonomous.asn, peer))
        return sorted(pairs)

    def _mutable(self, pair: Pair) -> bool:
        # The tier-1 clique is the substrate's reachability backbone;
        # the market neither prices nor dismantles it.
        return not (pair[0] in self._tier1 and pair[1] in self._tier1)

    def candidate_pairs(self) -> List[Pair]:
        """Unrelated pairs co-located at an IXP, in sorted total order."""
        at_ixp: Dict[str, List[int]] = {}
        for autonomous in self.network.ases:
            for ixp in sorted(autonomous.metadata.get("ixps", ())):
                at_ixp.setdefault(ixp, []).append(autonomous.asn)
        candidates: Set[Pair] = set()
        for ixp in sorted(at_ixp):
            members = sorted(at_ixp[ixp])
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    pair = (a, b)
                    if pair in self.embargo or not self._mutable(pair):
                        continue
                    if self.refusal_memory and pair in self.refused:
                        continue
                    if self.network.relationship(a, b) is not None:
                        continue
                    candidates.add(pair)
        return sorted(candidates)

    def evaluate_existing(self, pair: Pair) -> Optional[PeeringAgreement]:
        """Re-bargain a live peering at the volumes its edge carried."""
        if self.routing is None or self.volumes is None:
            raise PeeringError("call reconverge() before bargaining")
        traffic = edge_traffic(self.network, self.routing.fast_rib,
                               self.volumes, pair[0], pair[1])
        return evaluate_pair(
            traffic, self.econ,
            a_pays_transit=bool(self.network.providers_of(pair[0])),
            b_pays_transit=bool(self.network.providers_of(pair[1])),
        )

    def evaluate_candidate(self, pair: Pair) -> Optional[PeeringAgreement]:
        """Bargain a prospective peering over exclusive-cone demand."""
        traffic = cone_traffic(self.traffic, self._cones, pair[0], pair[1])
        return evaluate_pair(
            traffic, self.econ,
            a_pays_transit=bool(self.network.providers_of(pair[0])),
            b_pays_transit=bool(self.network.providers_of(pair[1])),
        )

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def step(self, iteration: int) -> IterationRecord:
        """One route/measure/re-bargain/apply round."""
        proto = self.reconverge()
        to_drop: List[Pair] = []
        to_add: Dict[Pair, PeeringAgreement] = {}
        for pair in self._peer_pairs():
            if not self._mutable(pair):
                continue
            if pair in self.embargo:
                to_drop.append(pair)
                continue
            agreement = self.evaluate_existing(pair)
            if agreement is None:
                to_drop.append(pair)
            else:
                self.agreements[pair] = agreement
        for pair in self.candidate_pairs():
            agreement = self.evaluate_candidate(pair)
            if agreement is not None:
                to_add[pair] = agreement
        for pair in to_drop:
            self.network.remove_as_relationship(pair[0], pair[1])
            self.agreements.pop(pair, None)
            self.refused.add(pair)
        for pair in sorted(to_add):
            self.network.add_as_relationship(pair[0], pair[1],
                                             Relationship.PEER_PEER)
            self.agreements[pair] = to_add[pair]
        total_transit = sum(
            self.econ.transit_price * float(self.volumes[
                proto.fast_rib.index.of(a.asn),
                proto.fast_rib.index.of(p)])
            for a in self.network.ases
            for p in sorted(self.network.providers_of(a.asn)))
        total_transfers = sum(abs(self.agreements[p].transfer)
                              for p in sorted(self.agreements))
        return IterationRecord(
            iteration=iteration,
            agreements=len(self.agreements),
            peered=len(to_add),
            depeered=len(to_drop),
            total_transit_cost=float(total_transit),
            total_transfers=float(total_transfers),
            routing_levels=proto.iterations_used,
        )

    def run(self) -> FixedPointResult:
        """Iterate until quiescent, oscillating, or capped — never hang."""
        history: List[IterationRecord] = []
        seen: Set[Tuple[Pair, ...]] = set()
        oscillating = False
        for iteration in range(1, self.max_iterations + 1):
            record = self.step(iteration)
            history.append(record)
            if record.peered == 0 and record.depeered == 0:
                return FixedPointResult(
                    converged=True, oscillating=oscillating,
                    iterations=iteration, verdict="fixed-point",
                    history=history, agreements=dict(self.agreements))
            signature = tuple(self._peer_pairs())
            if signature in seen:
                oscillating = True
            seen.add(signature)
        return FixedPointResult(
            converged=False, oscillating=oscillating,
            iterations=self.max_iterations,
            verdict="oscillation" if oscillating else "iteration-cap",
            history=history, agreements=dict(self.agreements))

    # ------------------------------------------------------------------
    # Dispute levers (the P01/P02 narrative hooks)
    # ------------------------------------------------------------------
    def depeer(self, a: int, b: int, embargo: bool = True) -> None:
        """Tear down a peering; with ``embargo``, refuse to re-bargain it."""
        pair = _pair(a, b)
        if not self._mutable(pair):
            raise PeeringError("the tier-1 clique cannot be depeered")
        if self.network.relationship(a, b) is not Relationship.PEER_PEER:
            raise PeeringError(f"ASes {a} and {b} are not peers")
        self.network.remove_as_relationship(a, b)
        self.agreements.pop(pair, None)
        if embargo:
            self.embargo.add(pair)

    def lift_embargo(self, a: int, b: int) -> None:
        """Allow a disputed pair back to the bargaining table."""
        pair = _pair(a, b)
        self.embargo.discard(pair)
        self.refused.discard(pair)
