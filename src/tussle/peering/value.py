"""Traffic-weighted interconnection value over a generated internet.

The paper's §V-A-4 story is that interconnection is where the money
tussle and the routing tussle meet: providers carry each other's
traffic under business agreements, and what an agreement is *worth*
depends on the routes the rest of the system converged to.  This module
computes that worth, at 10^3-AS scale, from three ingredients:

* a :mod:`tussle.topogen` business graph (who could peer where);
* a gravity demand matrix over the stub ASes
  (:mod:`tussle.scale.tmatrix` — heavy-tailed populations and content,
  deterministic per master-seed substream); and
* the converged valley-free RIB
  (:meth:`~tussle.routing.pathvector.PathVectorRouting.converge_fast`),
  which says which AS-AS edges each demand cell actually crosses.

Money model
-----------
Transit is metered on **sent** volume: a customer pays its provider
``transit_price`` per unit of traffic it hands *up* the hill; traffic
handed down to a customer rides the customer's bill, not the
provider's.  Peering is settlement-free per unit but each side pays a
flat ``peering_cost`` per agreement (ports, backhaul, ops).  Paid
peering adds an explicit side payment negotiated by
:mod:`tussle.peering.bargain`.  Stubs additionally value what actually
arrives (``delivery_value`` per delivered unit), which is what makes
"reachability intact" an economic statement and not just a routing one.

Everything here is a pure function of ``(network, demand, RIB,
economics)``; all iteration is in sorted AS order, so accounts are
byte-identical across runs and independent of dict insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import PeeringError
from ..netsim.topology import Network

# The scale-package imports live inside the functions that use them:
# ``tussle.scale``'s package init pulls in the parity harnesses, which
# import the experiment registry, which registers P01/P02 — a cycle if
# resolved at module import time (same deferral the routing layer uses
# for its fast path).
if TYPE_CHECKING:
    from ..scale.vrouting import RibArrays

__all__ = ["PeeringEconomics", "TrafficMatrix", "customer_cones",
           "route_volumes", "AsAccount", "as_accounts", "PairTraffic",
           "cone_traffic", "edge_traffic"]


@dataclass(frozen=True)
class PeeringEconomics:
    """Money knobs of the interconnection market.

    Attributes
    ----------
    transit_price:
        Price a customer pays its provider per unit of *sent* volume.
    peering_cost:
        Flat per-agreement cost each side of a peering pays (ports,
        backhaul, ops) per accounting round.
    delivery_value:
        Value a stub derives per unit of demand actually delivered.
    ratio_cap:
        Settlement-free threshold: a peering stays settlement-free while
        the larger side's transit savings are at most ``ratio_cap``
        times the smaller side's; beyond it the imbalance is settled as
        paid peering (the classic traffic-ratio clause).
    discount:
        Per-round discount factor for the repeated depeering game (the
        shadow of the future that keeps agreements honored).
    total_demand / demand_baseline / population_tail / content_tail:
        Gravity-demand knobs forwarded to :mod:`tussle.scale.tmatrix`.
    """

    transit_price: float = 1.0
    peering_cost: float = 10.0
    delivery_value: float = 2.0
    ratio_cap: float = 2.0
    discount: float = 0.9
    total_demand: float = 1e6
    demand_baseline: float = 0.25
    population_tail: float = 0.8
    content_tail: float = 1.2

    def __post_init__(self) -> None:
        if self.transit_price <= 0:
            raise PeeringError("transit_price must be positive")
        if self.peering_cost < 0:
            raise PeeringError("peering_cost must be non-negative")
        if self.ratio_cap < 1.0:
            raise PeeringError("ratio_cap below 1 makes every peering paid")
        if not 0.0 <= self.discount < 1.0:
            raise PeeringError("discount factor must be in [0, 1)")


class TrafficMatrix:
    """The gravity demand matrix over a generated internet's stubs.

    A pure function of ``(network, seed, economics)``: stub order is
    ascending ASN, attribute vectors come from per-label RNG substreams
    (see :mod:`tussle.scale.tmatrix`), and the demand matrix is fully
    determined by them.  ``demand[i, j]`` is traffic *sent* by
    ``stub_asns[i]`` to ``stub_asns[j]``.
    """

    def __init__(self, stub_asns: Sequence[int], population: np.ndarray,
                 content: np.ndarray, demand: np.ndarray):
        self.stub_asns: List[int] = [int(a) for a in stub_asns]
        if self.stub_asns != sorted(set(self.stub_asns)):
            raise PeeringError("stub ASNs must be sorted and distinct")
        self.population = population
        self.content = content
        self.demand = demand
        self._col_of: Dict[int, int] = {a: i
                                        for i, a in enumerate(self.stub_asns)}

    @classmethod
    def from_network(cls, network: Network, seed: int,
                     econ: PeeringEconomics = PeeringEconomics()) -> "TrafficMatrix":
        from ..scale.tmatrix import (
            gravity_demand,
            stub_content,
            stub_populations,
        )

        stubs = sorted(a.asn for a in network.ases if a.tier == 3)
        n = len(stubs)
        if n < 2:
            # Degenerate internets (single AS, all-transit) carry no
            # inter-stub demand; the peering market is trivially empty.
            return cls(stubs, np.ones(n), np.ones(n),
                       np.zeros((n, n), dtype=np.float64))
        population = stub_populations(n, seed, econ.population_tail)
        content = stub_content(n, seed, econ.content_tail)
        demand = gravity_demand(population, content,
                                total_demand=econ.total_demand,
                                baseline=econ.demand_baseline)
        return cls(stubs, population, content, demand)

    def index_of(self, stub_asn: int) -> int:
        try:
            return self._col_of[stub_asn]
        except KeyError:
            raise PeeringError(f"AS {stub_asn} is not a stub of this "
                               f"traffic matrix") from None

    @property
    def total(self) -> float:
        return float(self.demand.sum())

    def __len__(self) -> int:
        return len(self.stub_asns)


def customer_cones(network: Network) -> Dict[int, np.ndarray]:
    """Per-AS boolean stub membership of the customer cone.

    ``cones[asn][i]`` is True iff stub ``i`` (ascending-ASN order) is
    reachable from ``asn`` by descending customer edges only — the
    classic CAIDA customer cone, restricted to stubs because only stubs
    originate demand.  Computed by one pass over ASes in reverse
    topological order of the provider DAG (customers before providers),
    which the generator guarantees is acyclic.
    """
    stubs = sorted(a.asn for a in network.ases if a.tier == 3)
    col = {asn: i for i, asn in enumerate(stubs)}
    n_stub = len(stubs)
    # Kahn order over provider edges: process an AS only after all its
    # customers are done.
    pending = {a.asn: len(network.customers_of(a.asn)) for a in network.ases}
    ready = sorted(asn for asn, count in pending.items() if count == 0)
    cones: Dict[int, np.ndarray] = {}
    order: List[int] = []
    while ready:
        asn = ready.pop(0)
        order.append(asn)
        cone = np.zeros(n_stub, dtype=bool)
        if asn in col:
            cone[col[asn]] = True
        for customer in sorted(network.customers_of(asn)):
            cone |= cones[customer]
        cones[asn] = cone
        for provider in sorted(network.providers_of(asn)):
            pending[provider] -= 1
            if pending[provider] == 0:
                # Insert keeping ready sorted so the walk order is a
                # pure function of the graph.
                ready.append(provider)
                ready.sort()
    if len(order) != len(network.ases):
        raise PeeringError("customer/provider edges contain a cycle; "
                           "customer cones are undefined")
    return cones


def route_volumes(rib: RibArrays, traffic: TrafficMatrix) -> np.ndarray:
    """Directed per-AS-edge traffic volumes under the converged routes.

    Returns an ``(n_as, n_as)`` matrix ``vol`` where ``vol[u, v]`` is
    the demand volume handed from AS row ``u`` to AS row ``v`` (rows in
    :class:`~tussle.scale.vrouting.ASIndex` order) by the selected
    valley-free routes.  Unreachable demand cells carry no volume.

    Vectorized the same way the fast path itself is: every destination
    column advances simultaneously, each level scatter-adding the
    in-flight weight onto its next-hop edge, for at most
    ``max path length`` levels.
    """
    from ..scale.vrouting import CLASS_NONE

    n = len(rib.index)
    d = len(rib.dest_asns)
    vol = np.zeros(n * n, dtype=np.float64)
    if d == 0 or len(traffic) < 2:
        return vol.reshape(n, n)
    if [int(a) for a in rib.dest_asns] != traffic.stub_asns:
        raise PeeringError("RIB destination columns must be the traffic "
                           "matrix's stubs, in ascending-ASN order")
    stub_rows = rib.index.rows_of(np.array(traffic.stub_asns, dtype=np.int64))
    # In-flight weight: W[r, c] = demand currently at AS row r heading
    # for destination column c.
    weight = np.zeros((n, d), dtype=np.float64)
    weight[np.ix_(stub_rows, np.arange(d))] = traffic.demand
    weight[rib.cls == CLASS_NONE] = 0.0
    target_row = stub_rows  # column c's destination row
    at_target = np.zeros((n, d), dtype=bool)
    at_target[target_row, np.arange(d)] = True
    max_levels = int(rib.plen.max()) if rib.plen.size else 0
    for _ in range(max(max_levels, 0)):
        rows, cols = np.nonzero((weight > 0) & ~at_target)
        if rows.size == 0:
            break
        moving = weight[rows, cols]
        hops = rib.nhop[rows, cols]
        np.add.at(vol, rows * n + hops, moving)
        advanced = np.zeros((n, d), dtype=np.float64)
        np.add.at(advanced, (hops, cols), moving)
        weight = np.where(at_target, weight, 0.0)
        weight += advanced
    return vol.reshape(n, n)


def edge_traffic(network: Network, rib: RibArrays, vol: np.ndarray,
                 a: int, b: int) -> "PairTraffic":
    """Measured directed volumes on the AS-level edge ``a``-``b``."""
    ra, rb = rib.index.of(a), rib.index.of(b)
    return PairTraffic(a=a, b=b, to_b=float(vol[ra, rb]),
                       to_a=float(vol[rb, ra]))


@dataclass(frozen=True)
class PairTraffic:
    """Directional exchanged volume between two ASes.

    ``to_b`` is volume flowing ``a -> b``; ``to_a`` the reverse.  The
    pair is stored with ``a < b`` by convention.
    """

    a: int
    b: int
    to_b: float
    to_a: float

    @property
    def total(self) -> float:
        return self.to_b + self.to_a


def cone_traffic(traffic: TrafficMatrix, cones: Mapping[int, np.ndarray],
                 a: int, b: int) -> PairTraffic:
    """Forecast exchanged volume if ``a`` and ``b`` peered.

    Demand between the *exclusive* customer cones — stubs that ``a``
    can reach down customer edges but ``b`` cannot, and vice versa.
    Overlapping stubs (multihomed into both cones) are excluded because
    their traffic rides customer routes with or without the peering.
    """
    if a not in cones or b not in cones:
        raise PeeringError(f"no customer cone for pair ({a}, {b})")
    only_a = cones[a] & ~cones[b]
    only_b = cones[b] & ~cones[a]
    if len(traffic) < 2 or not only_a.any() or not only_b.any():
        return PairTraffic(a=a, b=b, to_b=0.0, to_a=0.0)
    to_b = float(traffic.demand[np.ix_(only_a, only_b)].sum())
    to_a = float(traffic.demand[np.ix_(only_b, only_a)].sum())
    return PairTraffic(a=a, b=b, to_b=to_b, to_a=to_a)


@dataclass(frozen=True)
class AsAccount:
    """One AS's interconnection account for one routed round.

    ``transit_bill`` is what it pays providers (sent volume metering),
    ``transit_revenue`` what customers pay it, ``peering_fees`` the flat
    per-agreement costs, ``transfers`` net paid-peering payments
    received minus paid, ``delivered_value`` the stub-side value of
    demand that actually arrived.  ``net`` sums them.
    """

    asn: int
    transit_bill: float
    transit_revenue: float
    peering_fees: float
    transfers: float
    delivered_value: float

    @property
    def net(self) -> float:
        return (self.transit_revenue - self.transit_bill
                - self.peering_fees + self.transfers
                + self.delivered_value)


def as_accounts(network: Network, rib: RibArrays, vol: np.ndarray,
                traffic: TrafficMatrix, econ: PeeringEconomics,
                transfers: Optional[Mapping[int, float]] = None,
                ) -> Dict[int, AsAccount]:
    """Per-AS interconnection accounts under the measured volumes.

    ``transfers`` maps ASN -> net paid-peering payment received (from
    the bargaining layer); omitted ASes default to zero.  Iteration is
    in ascending-ASN order throughout, so the float accumulation order
    — and therefore every byte of downstream canonical JSON — is a pure
    function of the inputs.
    """
    from ..scale.vrouting import CLASS_NONE

    transfers = transfers or {}
    # Delivered demand per stub column: weight that reached its target.
    delivered_by_stub: Dict[int, float] = {}
    if len(traffic) >= 2 and len(rib.dest_asns) == len(traffic):
        stub_rows = rib.index.rows_of(
            np.array(traffic.stub_asns, dtype=np.int64))
        reach = rib.cls[np.ix_(stub_rows, np.arange(len(traffic)))] \
            != CLASS_NONE
        arrived = np.where(reach, traffic.demand, 0.0).sum(axis=0)
        for i, asn in enumerate(traffic.stub_asns):
            delivered_by_stub[asn] = float(arrived[i])
    accounts: Dict[int, AsAccount] = {}
    for autonomous in network.ases:  # ascending ASN
        asn = autonomous.asn
        row = rib.index.of(asn)
        bill = 0.0
        for provider in sorted(network.providers_of(asn)):
            bill += econ.transit_price * float(vol[row, rib.index.of(provider)])
        revenue = 0.0
        for customer in sorted(network.customers_of(asn)):
            revenue += econ.transit_price * float(vol[rib.index.of(customer), row])
        fees = econ.peering_cost * len(network.peers_of(asn))
        accounts[asn] = AsAccount(
            asn=asn,
            transit_bill=bill,
            transit_revenue=revenue,
            peering_fees=fees,
            transfers=float(transfers.get(asn, 0.0)),
            delivered_value=econ.delivery_value
            * delivered_by_stub.get(asn, 0.0),
        )
    return accounts
