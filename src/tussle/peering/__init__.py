"""``tussle.peering`` — Nash bargaining over interconnection.

The paper's §V-A-4 names interconnection as the place where the money
tussle and the routing tussle are the *same* tussle: who carries whose
traffic is simultaneously a routing decision and a payment flow.  This
package models that coupling end to end, at topogen scale:

* :mod:`~tussle.peering.value` — what an interconnect is worth: a
  gravity demand matrix over the generated internet's stubs
  (:mod:`tussle.scale.tmatrix`), pushed along the converged valley-free
  routes (:meth:`~tussle.routing.pathvector.PathVectorRouting.converge_fast`)
  into directed per-edge volumes and per-AS transit/peering accounts.
* :mod:`~tussle.peering.bargain` — how the worth is divided: the Nash
  bargaining solution over the peering surplus, with transit along
  current routes as the disagreement point; settlement-free vs paid
  peering falls out of traffic imbalance, and honoring an agreement is
  a repeated game (:mod:`tussle.gametheory.repeated`).
* :mod:`~tussle.peering.dynamics` — the feedback loop: agreements
  rewrite the AS relationship graph, routes reconverge, traffic and
  value shift, agreements are re-bargained — iterated to a
  deterministic fixed point (or a structured oscillation verdict).

Experiments P01 (paid-peering dispute) and P02 (depeering war at
10^3-AS scale) drive the loop; ``tests/peering/`` holds the bargaining
core to its game-theoretic properties with Hypothesis.
"""

from .bargain import (
    AgreementKind,
    BargainOutcome,
    PeeringAgreement,
    depeering_stage_game,
    evaluate_pair,
    nash_bargain,
    peering_sustainable,
)
from .dynamics import FixedPointResult, IterationRecord, PeeringDynamics
from .value import (
    AsAccount,
    PairTraffic,
    PeeringEconomics,
    TrafficMatrix,
    as_accounts,
    cone_traffic,
    customer_cones,
    edge_traffic,
    route_volumes,
)

__all__ = [
    # value: demand, volumes, accounts
    "PeeringEconomics",
    "TrafficMatrix",
    "customer_cones",
    "route_volumes",
    "cone_traffic",
    "edge_traffic",
    "PairTraffic",
    "AsAccount",
    "as_accounts",
    # bargain: the Nash split and the agreements it yields
    "BargainOutcome",
    "nash_bargain",
    "AgreementKind",
    "PeeringAgreement",
    "evaluate_pair",
    "depeering_stage_game",
    "peering_sustainable",
    # dynamics: the coupled fixed-point loop
    "PeeringDynamics",
    "IterationRecord",
    "FixedPointResult",
]
