"""Streaming aggregation: running verdicts while a sweep is in flight.

Batch :func:`tussle.sweep.aggregate.aggregate` needs every cell before
it can say anything; the distributed sweep fabric (ROADMAP) wants
verdicts that *update as cells land*.  This module provides that:

:class:`MergingDigest`
    A mergeable summary of a float multiset supporting incremental
    min / median / mean / max.  Below its centroid cap the digest is
    *exact* and insertion-order-insensitive: centroids are the sorted
    multiset itself and every statistic is computed over sorted values,
    so a digest built cell-by-cell in completion order equals — byte for
    byte — one built from the full value list.  Beyond the cap it
    compresses deterministically (adjacent-pair weighted merge) and
    becomes an approximation; sweep groups (one value per seed) stay
    far below the cap.  Digests serialize and merge, which is what a
    multi-host fabric needs to combine per-shard summaries.

:class:`StreamingAggregator`
    Folds merged-channel payloads one at a time, in any order, into
    per-``(experiment, parameter point)`` group states, and exposes a
    running one-line verdict after every fold.  Its final
    :meth:`~StreamingAggregator.snapshot` is byte-identical to the
    batch aggregator's output on the same cells (test-asserted) because
    both share the digest and reconstruct checks in sorted-seed order.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, List, Optional, Tuple

from ..errors import SweepError

__all__ = ["MergingDigest", "StreamingAggregator"]

#: Centroid count above which a digest compresses (and approximates).
DIGEST_CAP = 512


class MergingDigest:
    """Mergeable min/median/mean/max digest over a float multiset."""

    __slots__ = ("cap", "_centroids", "_count")

    def __init__(self, cap: int = DIGEST_CAP):
        if cap < 2:
            raise SweepError(f"digest cap must be >= 2, got {cap}")
        self.cap = int(cap)
        #: (value, weight) pairs, sorted by value
        self._centroids: List[Tuple[float, float]] = []
        self._count = 0

    @classmethod
    def from_values(cls, values: List[float],
                    cap: int = DIGEST_CAP) -> "MergingDigest":
        digest = cls(cap=cap)
        for value in values:
            digest.add(value)
        return digest

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one observation in (any insertion order, same digest)."""
        bisect.insort(self._centroids, (float(value), 1.0))
        self._count += 1
        if len(self._centroids) > self.cap:
            self._compress()

    def merge(self, other: "MergingDigest") -> None:
        """Fold another digest's centroids into this one."""
        merged = sorted(self._centroids + other._centroids)
        self._centroids = merged
        self._count += other._count
        if len(self._centroids) > self.cap:
            self._compress()

    def _compress(self) -> None:
        """Shrink the centroid list by merging adjacent interior pairs.

        Deterministic given the current centroid list.  The outermost
        centroids are never merged, so ``minimum``/``maximum`` (and the
        total count and weight) stay exact through any number of
        compressions; interior quantiles become approximations.
        """
        centroids = self._centroids
        if len(centroids) <= 2:
            return
        last = len(centroids) - 1
        compressed: List[Tuple[float, float]] = [centroids[0]]
        index = 1
        while index < last:
            if index + 1 < last:
                (v1, w1), (v2, w2) = centroids[index], centroids[index + 1]
                weight = w1 + w2
                compressed.append(((v1 * w1 + v2 * w2) / weight, weight))
                index += 2
            else:
                compressed.append(centroids[index])
                index += 1
        compressed.append(centroids[last])
        self._centroids = compressed

    # ------------------------------------------------------------------
    # Queries (all computed over the sorted centroid list, so the
    # result is a pure function of the folded multiset)
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def exact(self) -> bool:
        """True while no compression has happened (weights all 1)."""
        return len(self._centroids) == self._count

    def minimum(self) -> float:
        self._require_values()
        return self._centroids[0][0]

    def maximum(self) -> float:
        self._require_values()
        return self._centroids[-1][0]

    def mean(self) -> float:
        """Weighted mean, summed in ascending-value order."""
        self._require_values()
        total = 0.0
        weight_total = 0.0
        for value, weight in self._centroids:
            total += value * weight
            weight_total += weight
        return total / weight_total

    def median(self) -> float:
        """The weighted median; equals ``statistics.median`` when exact."""
        self._require_values()
        weight_total = sum(weight for _, weight in self._centroids)
        position = (weight_total - 1.0) / 2.0
        lo = self._value_at(math.floor(position))
        hi = self._value_at(math.ceil(position))
        return lo if lo == hi else (lo + hi) / 2.0

    def _value_at(self, target: float) -> float:
        """The centroid value covering 0-based expanded position ``target``."""
        cumulative = 0.0
        for value, weight in self._centroids:
            if cumulative + weight > target:
                return value
            cumulative += weight
        return self._centroids[-1][0]

    def _require_values(self) -> None:
        if not self._centroids:
            raise SweepError("digest is empty")

    def summary(self) -> Dict[str, float]:
        """The aggregate-layout summary dict for this multiset."""
        return {
            "min": self.minimum(),
            "median": float(self.median()),
            "mean": self.mean(),
            "max": self.maximum(),
        }

    # ------------------------------------------------------------------
    # Serialization (for cross-shard merging)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "cap": self.cap,
            "count": self._count,
            "centroids": [[value, weight]
                          for value, weight in self._centroids],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MergingDigest":
        digest = cls(cap=data["cap"])
        digest._count = int(data["count"])
        digest._centroids = [(float(value), float(weight))
                             for value, weight in data["centroids"]]
        return digest


class _GroupState:
    """Running state for one (experiment, parameter point) group."""

    __slots__ = ("experiment_id", "params", "params_json", "seeds",
                 "failed_seeds", "ok_states", "digests")

    def __init__(self, experiment_id: str, params: Dict[str, Any],
                 params_json: str):
        self.experiment_id = experiment_id
        self.params = params
        self.params_json = params_json
        self.seeds: List[int] = []
        self.failed_seeds: List[int] = []
        #: seed -> (shape_holds, [(claim, holds), ...]) for ok cells
        self.ok_states: Dict[int, Tuple[bool, List[Tuple[str, bool]]]] = {}
        #: metric name -> incremental digest (ok cells only)
        self.digests: Dict[str, MergingDigest] = {}

    @property
    def holding(self) -> int:
        return sum(1 for holds, _ in self.ok_states.values() if holds)

    def verdict(self, total_seeds: Optional[int] = None) -> str:
        """The group's one-line verdict over the cells folded so far."""
        denominator = (total_seeds if total_seeds is not None
                       else len(self.seeds))
        line = (f"{self.experiment_id} shape holds on "
                f"{self.holding}/{denominator} seeds")
        if self.failed_seeds:
            line += f" ({len(self.failed_seeds)} failed)"
        return line


class StreamingAggregator:
    """Folds merged-channel cell payloads into running verdicts.

    Payloads may arrive in any order (completion order under a parallel
    executor); the final :meth:`snapshot` is nonetheless byte-identical
    to :func:`tussle.sweep.aggregate.aggregate` over the same cells.
    """

    def __init__(self) -> None:
        self._groups: Dict[Tuple[str, str], _GroupState] = {}
        self.cells_seen = 0

    def fold(self, payload: Dict[str, Any]) -> _GroupState:
        """Fold one cell payload; returns the updated group state."""
        from .cells import canonical_params
        from .aggregate import metric_scalars

        params_json = canonical_params(payload["params"])
        key = (payload["experiment_id"], params_json)
        group = self._groups.get(key)
        if group is None:
            group = _GroupState(payload["experiment_id"],
                                payload["params"], params_json)
            self._groups[key] = group

        seed = payload["base_seed"]
        if seed in group.seeds:
            raise SweepError(
                f"cell {key!r} seed={seed} folded twice")
        group.seeds.append(seed)
        self.cells_seen += 1
        if payload["status"] != "ok":
            group.failed_seeds.append(seed)
            return group

        result = payload["result"]
        checks = [(check["claim"], bool(check["holds"]))
                  for check in result["checks"]]
        group.ok_states[seed] = (bool(result["shape_holds"]), checks)
        for name, value in metric_scalars(result).items():
            digest = group.digests.get(name)
            if digest is None:
                digest = group.digests[name] = MergingDigest()
            digest.add(value)
        return group

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def verdicts(self) -> List[str]:
        """Running verdicts, in deterministic group order."""
        return [self._groups[key].verdict() for key in sorted(self._groups)]

    def snapshot(self) -> Dict[str, Any]:
        """The full aggregate document over the cells folded so far.

        Matches :func:`tussle.sweep.aggregate.aggregate` byte-for-byte
        on the same cell set: groups in sorted identity order, checks
        reconstructed in sorted-seed order, metric summaries from the
        shared digest.
        """
        from .aggregate import AGGREGATE_SCHEMA

        groups = []
        for key in sorted(self._groups):
            group = self._groups[key]
            ok_seeds = sorted(group.ok_states)
            checks: List[Dict[str, Any]] = []
            if ok_seeds:
                claims = [claim for claim, _
                          in group.ok_states[ok_seeds[0]][1]]
                for index, claim in enumerate(claims):
                    passes = sum(
                        1 for seed in ok_seeds
                        if index < len(group.ok_states[seed][1])
                        and group.ok_states[seed][1][index][1]
                    )
                    checks.append({
                        "claim": claim,
                        "passes": passes,
                        "seeds": len(ok_seeds),
                        "pass_fraction": passes / len(ok_seeds),
                    })
            metrics = {name: group.digests[name].summary()
                       for name in sorted(group.digests)}
            total = len(group.seeds)
            holding = group.holding
            robust = bool(ok_seeds) and holding == total
            verdict = (
                f"{group.experiment_id} shape holds on "
                f"{holding}/{total} seeds"
                + (f" ({len(group.failed_seeds)} failed)"
                   if group.failed_seeds else "")
            )
            groups.append({
                "experiment_id": group.experiment_id,
                "params": group.params,
                "seeds": sorted(group.seeds),
                "cells": total,
                "cells_failed": len(group.failed_seeds),
                "shape_holds_count": holding,
                "robust": robust,
                "verdict": verdict,
                "checks": checks,
                "metrics": metrics,
            })
        return {
            "schema": AGGREGATE_SCHEMA,
            "groups": groups,
            "robust": all(group["robust"] for group in groups),
            "verdicts": [group["verdict"] for group in groups],
        }
