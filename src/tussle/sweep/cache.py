"""On-disk result cache: completed cells survive across sweep runs.

Cache key contract
------------------
A cell's cache entry is keyed by SHA-256 over exactly four components::

    (experiment_id, canonical params JSON, run seed, code fingerprint)

The first three are the cell's identity (see :mod:`tussle.sweep.cells`);
the fourth is a digest of every ``.py`` file in the installed ``tussle``
package, so *any* source change invalidates *every* cached cell.  That
is deliberately coarse: experiments reach deep into the simulation
stack, and a stale hit that silently survives a behaviour change would
be worse than recomputing the matrix.

Only successfully completed cells are stored — failures are always
retried on the next run.  The stored payload is the cell's deterministic
channel only (the result dict, never worker timings), so a merged sweep
built from cache hits is byte-identical to one computed fresh.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..errors import SweepError
from ..experiments.common import canonical_json
from .cells import Cell

__all__ = ["ResultCache", "code_fingerprint"]

#: Bumped when the cached payload layout changes incompatibly.
CACHE_SCHEMA = 1

_FINGERPRINT_CACHE: Dict[str, str] = {}


def code_fingerprint(package_dir: Optional[Union[str, Path]] = None) -> str:
    """SHA-256 digest of the package's source tree.

    Hashes every ``.py`` file under ``package_dir`` (default: the
    installed ``tussle`` package) in sorted relative-path order, so the
    digest is independent of filesystem enumeration order and identical
    across machines holding the same source.  Only the default
    (installed-package) digest is memoized — sources do not change under
    a running process — while explicit directories are re-hashed every
    call so tests can observe content changes.
    """
    memoize = package_dir is None
    if package_dir is None:
        import tussle

        package_dir = Path(tussle.__file__).parent
    package_dir = Path(package_dir)
    cache_key = str(package_dir)
    if memoize:
        cached = _FINGERPRINT_CACHE.get(cache_key)
        if cached is not None:
            return cached
    digest = hashlib.sha256()
    for path in sorted(package_dir.rglob("*.py")):
        digest.update(str(path.relative_to(package_dir)).replace("\\", "/")
                      .encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    fingerprint = digest.hexdigest()
    if memoize:
        _FINGERPRINT_CACHE[cache_key] = fingerprint
    return fingerprint


class ResultCache:
    """Completed-cell store under one root directory.

    Layout: ``<root>/<experiment_id>/<key>.json`` where ``key`` is the
    cell's cache key under the current code fingerprint.  Entries for
    stale fingerprints simply never match again; ``prune`` removes them.
    """

    def __init__(self, root: Union[str, Path],
                 fingerprint: Optional[str] = None):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0

    def key(self, cell: Cell) -> str:
        digest = hashlib.sha256()
        for part in (cell.experiment_id, cell.params_json, str(cell.seed),
                     self.fingerprint):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x1f")
        return digest.hexdigest()[:40]

    def path(self, cell: Cell) -> Path:
        return self.root / cell.experiment_id / f"{self.key(cell)}.json"

    def load(self, cell: Cell) -> Optional[Dict[str, Any]]:
        """The cached deterministic payload, or None on miss/corruption."""
        path = self.path(cell)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        payload = entry.get("payload")
        if entry.get("schema") != CACHE_SCHEMA or payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store(self, cell: Cell, payload: Dict[str, Any]) -> Path:
        """Persist one completed cell's deterministic payload."""
        if payload.get("status") != "ok":
            raise SweepError("only successfully completed cells are cached")
        path = self.path(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "payload": payload,
        }
        path.write_text(canonical_json(entry) + "\n", encoding="utf-8")
        return path

    def prune(self) -> int:
        """Delete entries written under other code fingerprints."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in sorted(self.root.rglob("*.json")):
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if entry.get("fingerprint") != self.fingerprint:
                path.unlink()
                removed += 1
        return removed
