"""Sweep scheduler: cache-aware dispatch with a deterministic merge.

Determinism-under-parallelism rule
----------------------------------
The merged output of a sweep is a pure function of the
:class:`~tussle.sweep.cells.SweepSpec` and the code fingerprint —
independent of worker count, worker assignment, completion order, and
of which cells were served from cache.  Three mechanisms enforce it:

1. cell seeds are derived from cell identity, not dispatch order;
2. workers return the deterministic channel (result dicts) separately
   from the quarantined wall-clock channel (worker timings), and only
   the former enters the merge and the cache;
3. the merge re-sorts payloads by cell identity, so an executor may
   hand results back in any order.

Instrumentation goes through :mod:`tussle.obs`: deterministic scheduler
counters (cells total/dispatched/cached/failed) under the
``sweep.scheduler`` metrics scope, per-worker utilization into the
sanctioned Profiler channel as ``worker.<name>`` keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import SweepError
from ..obs import current
from .cache import ResultCache
from .cells import Cell, SweepSpec, canonical_params
from .executors import InProcessExecutor, cell_task

__all__ = ["SweepReport", "run_sweep"]


def _payload_shape(payload: Dict[str, Any]) -> Optional[bool]:
    result = payload.get("result")
    if payload.get("status") == "ok" and isinstance(result, dict):
        return result.get("shape_holds")
    return None


@dataclass
class SweepReport:
    """Everything one sweep run produces.

    ``cells`` is the merged deterministic channel, sorted by cell
    identity; ``stats`` are the scheduler's (deterministic) counters.
    ``recovery`` is the quarantined resilience channel — retry/timeout
    accounting copied from a :class:`~tussle.sweep.ResilientExecutor`
    (empty for other executors).  It is wall-clock-dependent and must
    never enter the deterministic merge or the cache.
    """

    cells: List[Dict[str, Any]] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    recovery: Dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return [cell for cell in self.cells if cell["status"] != "ok"]

    @property
    def ok(self) -> bool:
        return not self.failed


def run_sweep(
    spec: SweepSpec,
    executor: Optional[Any] = None,
    cache: Optional[ResultCache] = None,
    telemetry: Optional[Any] = None,
    on_cell: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> SweepReport:
    """Run the sweep matrix; return merged, deterministic payloads.

    ``executor`` is anything with a ``map(tasks) -> outputs`` method
    (default: :class:`InProcessExecutor`); executors that additionally
    expose ``imap`` stream outputs back as cells finish.  ``cache``
    short-circuits cells completed by earlier runs at the same code
    fingerprint.

    ``telemetry`` (a :class:`~tussle.obs.telemetry.SweepTelemetry`)
    receives the structured event stream: the scheduler emits the
    deterministic channel (dispatch / cache-hit / completion, ordered
    by cell identity at serialization time) and injects the object into
    the executor for the quarantined wall channel (attempts, retries,
    worker lifecycle).  ``on_cell`` is invoked with each merged payload
    as it lands — cache hits first, then executor outputs in completion
    order — which is what streaming aggregation hooks into; it must not
    mutate the payload.
    """
    if executor is None:
        executor = InProcessExecutor()
    if telemetry is not None and not telemetry.enabled:
        telemetry = None

    cells = spec.cells()
    keys = [cell.sort_key for cell in cells]
    if len(set(keys)) != len(keys):
        raise SweepError("sweep matrix contains duplicate cells")

    context = current()
    scope = (context.metrics.scope("sweep.scheduler")
             if context.metrics.enabled else None)
    profiler = context.profiler if context.profiler.enabled else None

    merged: Dict[tuple, Dict[str, Any]] = {}
    misses: List[Cell] = []
    for cell in cells:
        payload = cache.load(cell) if cache is not None else None
        if payload is not None:
            merged[cell.sort_key] = payload
            if telemetry is not None:
                telemetry.cell_cache_hit(cell.sort_key)
                telemetry.cell_completed(cell.sort_key, payload["status"],
                                         _payload_shape(payload))
            if on_cell is not None:
                on_cell(payload)
        else:
            misses.append(cell)

    if telemetry is not None:
        for cell in misses:
            telemetry.cell_dispatched(cell.sort_key)
        if hasattr(executor, "telemetry"):
            executor.telemetry = telemetry

    if misses:
        tasks = [cell_task(cell) for cell in misses]
        outputs = (executor.imap(tasks) if hasattr(executor, "imap")
                   else executor.map(tasks))
    else:
        outputs = []
    by_identity = {cell.sort_key: cell for cell in misses}
    returned = 0
    for output in outputs:
        returned += 1
        payload = output["payload"]
        key = (payload["experiment_id"],
               canonical_params(payload["params"]), payload["base_seed"])
        cell = by_identity.get(key)
        if cell is None or key in merged:
            raise SweepError(f"executor returned an unrequested cell {key!r}")
        merged[key] = payload
        if cache is not None and payload["status"] == "ok":
            cache.store(cell, payload)
        profile = output.get("profile") or {}
        if profiler is not None:
            profiler.record(f"worker.{profile.get('worker', 'unknown')}",
                            profile.get("seconds", 0.0))
        if telemetry is not None:
            telemetry.cell_completed(key, payload["status"],
                                     _payload_shape(payload))
            telemetry.cell_finished(key, profile.get("worker", "unknown"),
                                    profile.get("seconds", 0.0),
                                    payload["status"])
        if on_cell is not None:
            on_cell(payload)
    if returned != len(misses):
        raise SweepError(
            f"executor returned {returned} payloads for "
            f"{len(misses)} dispatched cells"
        )

    report = SweepReport(cells=[merged[key] for key in sorted(merged)])
    report.recovery = dict(getattr(executor, "recovery", None) or {})
    failed = len(report.failed)
    report.stats = {
        "cells_total": len(cells),
        "cells_cached": len(cells) - len(misses),
        "cells_dispatched": len(misses),
        "cells_failed": failed,
    }
    if scope is not None:
        scope.counter("cells_total").inc(len(cells))
        scope.counter("cells_cached").inc(len(cells) - len(misses))
        scope.counter("cells_dispatched").inc(len(misses))
        scope.counter("cells_failed").inc(failed)
    return report
