"""Cell model for parameter sweeps.

A sweep is a matrix of *cells*: one cell is one experiment run at one
parameter point and one seed.  Everything downstream — scheduling,
caching, merging, aggregation — keys off the cell's canonical identity:

``(experiment_id, canonical params JSON, seed)``

where the params JSON is produced by :func:`canonical_params` (sorted
keys, compact separators, exact floats), so two dicts with different
insertion order name the same cell.

Seed isolation
--------------
Workers never share RNG state: each cell's run seed is *derived* from
the sweep's base seed and the cell's identity via :func:`derive_seed`
(SHA-256 over the labels).  Two cells with the same base seed but
different experiments or parameters therefore drive their simulations
from statistically independent streams, and a cell's seed is a pure
function of its identity — independent of which worker runs it, or in
what order.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

from ..errors import SweepError
from ..experiments.common import canonical_json

__all__ = ["Cell", "SweepSpec", "canonical_params", "derive_seed",
           "expand_grid"]


def canonical_params(params: Mapping[str, Any]) -> str:
    """Canonical JSON of a parameter mapping (sorted keys, exact floats)."""
    return canonical_json(dict(params))


def derive_seed(base_seed: int, *labels: Any) -> int:
    """A 63-bit seed derived from ``base_seed`` and identity labels.

    Deterministic across processes and platforms (SHA-256, no hash
    randomization), and collision-resistant enough that no two cells in
    any practical sweep share RNG state.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("ascii"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") % (2 ** 63)


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of a parameter grid, in canonical order.

    Insensitive to both key insertion order and value order: keys are
    iterated sorted and the expanded points are sorted by their
    canonical JSON, so any permutation of the input yields the same
    list.  An empty grid expands to the single empty parameter point.
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        if not grid[key]:
            raise SweepError(f"grid axis {key!r} has no values")
    points = [dict(zip(keys, combo))
              for combo in itertools.product(*(grid[k] for k in keys))]
    return sorted(points, key=canonical_params)


@dataclass(frozen=True)
class Cell:
    """One (experiment, parameter point, seed) run in a sweep matrix.

    ``seed`` is the derived run seed actually passed to the experiment;
    ``base_seed`` is the matrix axis it came from.
    """

    experiment_id: str
    params_json: str
    base_seed: int
    seed: int

    @property
    def params(self) -> Dict[str, Any]:
        return json.loads(self.params_json)

    @property
    def sort_key(self) -> tuple:
        """Deterministic merge order, independent of completion order."""
        return (self.experiment_id, self.params_json, self.base_seed)

    @property
    def label(self) -> str:
        point = "" if self.params_json == "{}" else f" {self.params_json}"
        return f"{self.experiment_id}{point} seed={self.base_seed}"


@dataclass
class SweepSpec:
    """What to sweep: experiments x parameter grid x base seeds."""

    experiment_ids: List[str]
    seeds: List[int]
    grid: Dict[str, List[Any]]

    def __post_init__(self) -> None:
        if not self.experiment_ids:
            raise SweepError("sweep needs at least one experiment")
        if not self.seeds:
            raise SweepError("sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise SweepError("sweep seeds must be distinct")

    def cells(self) -> List[Cell]:
        """The full matrix in canonical (merge) order."""
        matrix = []
        for experiment_id in sorted(set(self.experiment_ids)):
            for point in expand_grid(self.grid):
                params_json = canonical_params(point)
                for base_seed in sorted(self.seeds):
                    matrix.append(Cell(
                        experiment_id=experiment_id,
                        params_json=params_json,
                        base_seed=base_seed,
                        seed=derive_seed(base_seed, experiment_id,
                                         params_json),
                    ))
        return matrix
