"""Sweep executors: the one sanctioned parallelism site in the package.

Everything else in the simulation stack is single-threaded by design
(lint rule D110 enforces it); fan-out happens only here, where the three
hazards of parallel simulation are contained:

* **RNG isolation** — a worker runs a cell at its *derived* seed
  (:func:`tussle.sweep.cells.derive_seed`), a pure function of the
  cell's identity, so no two cells share RNG state and results do not
  depend on worker assignment.
* **Completion order** — both executors return payloads in whatever
  order cells finish; the scheduler re-sorts by cell identity before
  merging, so the merged output is order-independent by construction.
* **Failure isolation** — :func:`run_cell` converts any exception into
  an error payload for that cell alone; one diverging cell never takes
  down the pool or its siblings.

Workers communicate in JSON-safe dicts (the ``ExperimentResult.to_dict``
form), so payloads cross process boundaries and the result cache without
a separate serialisation step.  Wall-clock per cell is measured with the
sanctioned :class:`~tussle.obs.profiler.Profiler` and travels in a
side channel that the scheduler quarantines from the deterministic
merge.
"""

from __future__ import annotations

import json
import multiprocessing
from typing import Any, Dict, List

from ..errors import SweepError
from ..obs import Profiler
from .cells import Cell

__all__ = ["InProcessExecutor", "ProcessPoolExecutor", "run_cell",
           "cell_task"]


def cell_task(cell: Cell) -> Dict[str, Any]:
    """The picklable work order handed to a worker for one cell."""
    return {
        "experiment_id": cell.experiment_id,
        "params_json": cell.params_json,
        "base_seed": cell.base_seed,
        "seed": cell.seed,
    }


def run_cell(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one cell, never raise.

    Returns ``{"payload": ..., "profile": ...}`` where ``payload`` is
    the deterministic channel (identity, status, result dict or error)
    and ``profile`` is the quarantined wall-clock channel (worker name,
    seconds).
    """
    from ..experiments import ALL_EXPERIMENTS

    profiler = Profiler()
    payload: Dict[str, Any] = {
        "experiment_id": task["experiment_id"],
        "params": json.loads(task["params_json"]),
        "base_seed": task["base_seed"],
        "seed": task["seed"],
    }
    try:
        entry = ALL_EXPERIMENTS.get(task["experiment_id"])
        if entry is None:
            raise SweepError(f"unknown experiment {task['experiment_id']!r}")
        with profiler.time("cell"):
            result = entry(seed=task["seed"], **payload["params"])
        payload.update(status="ok", result=result.to_dict(), error=None)
    except Exception as exc:  # failure isolation: one cell, one verdict
        payload.update(
            status="error",
            result=None,
            error={"type": type(exc).__name__, "message": str(exc)},
        )
    return {
        "payload": payload,
        "profile": {
            "worker": multiprocessing.current_process().name,
            "seconds": profiler.total_seconds("cell"),
        },
    }


class InProcessExecutor:
    """Serial executor: runs cells in the calling process.

    The debugging baseline — no pickling, no fork, breakpoints and
    monkeypatches work — and the parity reference: its merged output
    must be byte-identical to the pool's.
    """

    jobs = 1

    def map(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return [run_cell(task) for task in tasks]


class ProcessPoolExecutor:
    """Parallel executor over a ``multiprocessing`` pool.

    Results are collected in completion order (``imap_unordered``) —
    deliberately, so the scheduler's deterministic merge is exercised on
    every parallel run rather than masked by an ordered iterator.
    """

    def __init__(self, jobs: int):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def map(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        if not tasks or self.jobs == 1:
            return InProcessExecutor().map(tasks)
        with multiprocessing.Pool(processes=min(self.jobs, len(tasks))) as pool:
            return list(pool.imap_unordered(run_cell, tasks))
