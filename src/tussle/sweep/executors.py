"""Sweep executors: the one sanctioned parallelism site in the package.

Everything else in the simulation stack is single-threaded by design
(lint rule D110 enforces it); fan-out happens only here, where the three
hazards of parallel simulation are contained:

* **RNG isolation** — a worker runs a cell at its *derived* seed
  (:func:`tussle.sweep.cells.derive_seed`), a pure function of the
  cell's identity, so no two cells share RNG state and results do not
  depend on worker assignment.
* **Completion order** — both executors return payloads in whatever
  order cells finish; the scheduler re-sorts by cell identity before
  merging, so the merged output is order-independent by construction.
* **Failure isolation** — :func:`run_cell` converts any exception into
  an error payload for that cell alone; one diverging cell never takes
  down the pool or its siblings.

Workers communicate in JSON-safe dicts (the ``ExperimentResult.to_dict``
form), so payloads cross process boundaries and the result cache without
a separate serialisation step.  Wall-clock per cell is measured with the
sanctioned :class:`~tussle.obs.profiler.Profiler` and travels in a
side channel that the scheduler quarantines from the deterministic
merge.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from typing import Any, Dict, Iterator, List, Optional

from ..errors import SweepError
from ..obs import Profiler, current
from ..resil.backoff import Backoff
from ..resil.failures import FailedCell
from ..resil.workerchaos import WorkerChaos, digest63
from .cells import Cell

__all__ = ["InProcessExecutor", "ProcessPoolExecutor", "ResilientExecutor",
           "run_cell", "cell_task"]


def cell_task(cell: Cell) -> Dict[str, Any]:
    """The picklable work order handed to a worker for one cell."""
    return {
        "experiment_id": cell.experiment_id,
        "params_json": cell.params_json,
        "base_seed": cell.base_seed,
        "seed": cell.seed,
    }


def run_cell(task: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one cell, never raise.

    Returns ``{"payload": ..., "profile": ...}`` where ``payload`` is
    the deterministic channel (identity, status, result dict or error)
    and ``profile`` is the quarantined wall-clock channel (worker name,
    seconds).
    """
    from ..experiments import ALL_EXPERIMENTS

    profiler = Profiler()
    payload: Dict[str, Any] = {
        "experiment_id": task["experiment_id"],
        "params": json.loads(task["params_json"]),
        "base_seed": task["base_seed"],
        "seed": task["seed"],
    }
    try:
        entry = ALL_EXPERIMENTS.get(task["experiment_id"])
        if entry is None:
            raise SweepError(f"unknown experiment {task['experiment_id']!r}")
        with profiler.time("cell"):
            result = entry(seed=task["seed"], **payload["params"])
        payload.update(status="ok", result=result.to_dict(), error=None)
    except Exception as exc:  # failure isolation: one cell, one verdict
        payload.update(
            status="error",
            result=None,
            error={"type": type(exc).__name__, "message": str(exc)},
        )
    return {
        "payload": payload,
        "profile": {
            "worker": multiprocessing.current_process().name,
            "seconds": profiler.total_seconds("cell"),
        },
    }


class InProcessExecutor:
    """Serial executor: runs cells in the calling process.

    The debugging baseline — no pickling, no fork, breakpoints and
    monkeypatches work — and the parity reference: its merged output
    must be byte-identical to the pool's.
    """

    jobs = 1
    #: quarantined telemetry sink, injected by the scheduler
    telemetry: Any = None

    def imap(self, tasks: List[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        """Yield outputs one by one as cells finish (streaming channel)."""
        for task in tasks:
            yield run_cell(task)

    def map(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return list(self.imap(tasks))


class ProcessPoolExecutor:
    """Parallel executor over a ``multiprocessing`` pool.

    Results are collected in completion order (``imap_unordered``) —
    deliberately, so the scheduler's deterministic merge is exercised on
    every parallel run rather than masked by an ordered iterator.
    """

    telemetry: Any = None

    def __init__(self, jobs: int):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def imap(self, tasks: List[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        """Yield outputs in completion order as workers finish cells."""
        if not tasks or self.jobs == 1:
            yield from InProcessExecutor().imap(tasks)
            return
        with multiprocessing.Pool(processes=min(self.jobs, len(tasks))) as pool:
            yield from pool.imap_unordered(run_cell, tasks)

    def map(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return list(self.imap(tasks))


def _resilient_worker(task: Dict[str, Any], conn: Any) -> None:
    """Worker entry point for :class:`ResilientExecutor`.

    Honors the chaos directive planted by the parent (``_chaos`` key):
    ``"exit"`` dies with a nonzero exit code, ``"kill"`` SIGKILLs
    itself, ``"hang"`` sleeps past any per-cell timeout.  With no
    directive it behaves exactly like :func:`run_cell` and ships the
    output back over the pipe.
    """
    task = dict(task)
    mode = task.pop("_chaos", None)
    if mode == "exit":
        os._exit(3)
    elif mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "hang":
        while True:  # parent's deadline reaps us
            time.sleep(0.5)
    try:
        conn.send(run_cell(task))
    finally:
        conn.close()


class _PendingCell:
    """Parent-side retry state for one cell in a resilient sweep."""

    __slots__ = ("task", "backoff", "attempt", "reasons", "retry_at",
                 "process", "conn", "deadline")

    def __init__(self, task: Dict[str, Any], backoff: Backoff):
        self.task = task
        self.backoff = backoff
        self.attempt = 0
        self.reasons: List[str] = []
        self.retry_at = 0.0  # on the quarantined monotonic clock
        self.process: Optional[multiprocessing.Process] = None
        self.conn: Any = None
        self.deadline: Optional[float] = None

    def identity(self) -> tuple:
        return (self.task["experiment_id"], self.task["params_json"],
                self.task["base_seed"])


class ResilientExecutor:
    """Crash-safe executor: one supervised process per cell.

    Unlike :class:`ProcessPoolExecutor` (which loses cells silently if a
    worker dies and blocks forever if one hangs), this executor watches
    every worker with a per-cell wall-clock deadline and retries
    infrastructure failures — worker death, timeout — with seeded
    exponential backoff.  Deterministic ``status: "error"`` payloads are
    *not* retried: the cell ran to a verdict, and rerunning a pure
    function cannot change it.

    A cell that exhausts its retry budget yields a structured
    ``status: "failed"`` payload (:class:`~tussle.resil.FailedCell`)
    instead of aborting the sweep.  Recovery accounting lands in
    ``self.recovery`` and in ``resil``-scope obs counters; both are
    quarantined from the deterministic merge, which stays byte-identical
    to a fault-free run whenever every cell eventually succeeds.

    The wall clock (``time.monotonic``) and the poll sleep
    (``time.sleep``) used here are the package's single sanctioned
    retry-sleep site, allowlisted by lint rules D104/D112.

    ``chaos`` (a :class:`~tussle.resil.WorkerChaos`) deterministically
    sabotages a fraction of first attempts — the chaos gate in CI.
    """

    #: seconds between supervision polls of running workers
    poll_interval = 0.02

    def __init__(self, jobs: int = 1, timeout: float = 30.0,
                 retries: int = 3, backoff: Optional[Backoff] = None,
                 chaos: Optional[WorkerChaos] = None,
                 backoff_seed: int = 0):
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        if timeout <= 0:
            raise SweepError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise SweepError(f"retries must be >= 0, got {retries}")
        self.jobs = jobs
        self.timeout = float(timeout)
        self.retries = int(retries)
        self._backoff_template = backoff if backoff is not None else Backoff(
            base=0.05, factor=2.0, cap=1.0, max_retries=retries, jitter=0.5)
        self.chaos = chaos
        self.backoff_seed = int(backoff_seed)
        self.recovery: Dict[str, int] = self._fresh_recovery()
        #: quarantined telemetry sink, injected by the scheduler
        self.telemetry: Any = None

    @staticmethod
    def _fresh_recovery() -> Dict[str, int]:
        return {"retries": 0, "worker_deaths": 0, "timeouts": 0,
                "recovered_cells": 0, "failed_cells": 0}

    def _cell_backoff(self, task: Dict[str, Any]) -> Backoff:
        """A per-cell retry schedule seeded from the cell's identity."""
        seed = digest63(self.backoff_seed, "retry", task["experiment_id"],
                        task["params_json"], str(task["base_seed"]))
        return self._backoff_template.spawn(seed)

    def _chaos_mode(self, task: Dict[str, Any], attempt: int) -> Optional[str]:
        if self.chaos is None:
            return None
        return self.chaos.mode_for(task["experiment_id"],
                                   task["params_json"],
                                   task["base_seed"], attempt)

    def _start(self, pending: _PendingCell) -> None:
        task = dict(pending.task)
        mode = self._chaos_mode(task, pending.attempt)
        if mode is not None:
            task["_chaos"] = mode
        recv, send = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_resilient_worker, args=(task, send),
            name=f"resil-{task['experiment_id']}-a{pending.attempt}",
            daemon=True,
        )
        process.start()
        send.close()  # parent keeps only the read end
        pending.process = process
        pending.conn = recv
        pending.deadline = time.monotonic() + self.timeout

    def _reap(self, pending: _PendingCell) -> None:
        if pending.process is not None:
            if pending.process.is_alive():
                pending.process.kill()
            pending.process.join()
        if pending.conn is not None:
            pending.conn.close()
        pending.process = None
        pending.conn = None
        pending.deadline = None

    def _failed_payload(self, pending: _PendingCell) -> Dict[str, Any]:
        task = pending.task
        record = FailedCell(
            experiment_id=task["experiment_id"],
            params_json=task["params_json"],
            base_seed=task["base_seed"],
            attempts=pending.attempt + 1,
            reasons=list(pending.reasons),
        )
        payload = {
            "experiment_id": task["experiment_id"],
            "params": json.loads(task["params_json"]),
            "base_seed": task["base_seed"],
            "seed": task["seed"],
            "status": "failed",
            "result": None,
            "error": record.to_error_dict(),
        }
        return {"payload": payload,
                "profile": {"worker": "resil-failed", "seconds": 0.0}}

    def imap(self, tasks: List[Dict[str, Any]]) -> Iterator[Dict[str, Any]]:
        """Yield outputs as cells reach a final verdict (any order).

        Quarantined telemetry (worker lifecycle, attempts, retries,
        deaths, timeouts) flows to ``self.telemetry`` when the scheduler
        injected one; none of it can reach the deterministic channel.
        """
        self.recovery = self._fresh_recovery()
        context = current()
        scope = (context.metrics.scope("resil")
                 if context.metrics.enabled else None)
        telemetry = (self.telemetry
                     if self.telemetry is not None
                     and self.telemetry.enabled else None)

        def count(event: str, n: int = 1) -> None:
            self.recovery[event] += n
            if scope is not None:
                scope.counter(event).inc(n)

        waiting = [_PendingCell(task, self._cell_backoff(task))
                   for task in tasks]
        running: List[_PendingCell] = []

        while waiting or running:
            now = time.monotonic()
            # promote waiting cells whose backoff delay has elapsed
            ready = [p for p in waiting if p.retry_at <= now]
            for pending in ready:
                if len(running) >= self.jobs:
                    break
                waiting.remove(pending)
                self._start(pending)
                running.append(pending)
                if telemetry is not None:
                    name = pending.process.name
                    telemetry.worker_started(name)
                    telemetry.cell_attempt(pending.identity(),
                                           pending.attempt, name)

            progressed = False
            for pending in list(running):
                worker = (pending.process.name
                          if pending.process is not None else "?")
                outcome = self._poll(pending)
                if outcome is None:
                    continue
                progressed = True
                running.remove(pending)
                kind, output = outcome
                if kind == "ok":
                    if pending.attempt > 0:
                        count("recovered_cells")
                    if telemetry is not None:
                        telemetry.worker_exited(worker, "ok")
                    yield output
                    continue
                # infrastructure failure: retry or give up
                count("worker_deaths" if kind == "death" else "timeouts")
                reason = pending.reasons[-1] if pending.reasons else kind
                if telemetry is not None:
                    telemetry.worker_exited(worker, reason)
                if pending.backoff.exhausted:
                    count("failed_cells")
                    if telemetry is not None:
                        telemetry.wall_event(
                            "cell_abandoned",
                            experiment_id=pending.task["experiment_id"],
                            base_seed=pending.task["base_seed"],
                            attempts=pending.attempt + 1,
                            reasons=list(pending.reasons))
                    yield self._failed_payload(pending)
                else:
                    count("retries")
                    delay = pending.backoff.next_delay()
                    if telemetry is not None:
                        telemetry.cell_retried(pending.identity(),
                                               pending.attempt, reason,
                                               delay)
                    pending.attempt += 1
                    pending.retry_at = time.monotonic() + delay
                    waiting.append(pending)

            if not progressed and (running or waiting):
                time.sleep(self.poll_interval)

    def map(self, tasks: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return list(self.imap(tasks))

    def _poll(self, pending: _PendingCell):
        """One supervision check.  ``None`` means still running."""
        conn, process = pending.conn, pending.process
        assert conn is not None and process is not None
        if conn.poll():
            try:
                output = conn.recv()
            except EOFError:  # died mid-send: treat as worker death
                self._reap(pending)
                pending.reasons.append("worker-death(eof)")
                return ("death", None)
            self._reap(pending)
            return ("ok", output)
        if not process.is_alive():
            code = process.exitcode
            self._reap(pending)
            pending.reasons.append(f"worker-death(exitcode={code})")
            return ("death", None)
        if pending.deadline is not None and \
                time.monotonic() >= pending.deadline:
            self._reap(pending)
            pending.reasons.append(f"timeout({self.timeout:g}s)")
            return ("timeout", None)
        return None
