"""Seed-axis aggregation: from a cell matrix to robustness verdicts.

The paper's claims are qualitative, so the unit of evidence is not one
blessed seed but a *fraction of seeds on which the shape holds*.  This
module collapses the seed axis of a merged sweep into, per
``(experiment, parameter point)`` group:

* a per-check pass fraction ("holds on 50/50 seeds");
* per-metric summaries (min/median/mean/max across seeds) for every
  numeric table column, keyed ``"<table title>/<column>"`` with the
  per-seed scalar being the column's mean over its rows;
* a one-line robustness verdict.

Aggregation is arithmetic over the merged (already deterministically
ordered) cells — values are summed in sorted-seed order — so the
aggregate JSON inherits the sweep's byte-reproducibility.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from .cells import canonical_params
from .progress import MergingDigest

__all__ = ["aggregate", "metric_scalars"]

#: Bumped when the aggregate layout changes incompatibly.
AGGREGATE_SCHEMA = 1


def _numeric(value: Any) -> Optional[float]:
    """The cell's float value, or None for bools / None / non-numbers.

    NaN and infinities are treated as missing: they cannot survive the
    canonical-JSON serialization of the aggregate document, and a
    single poisoned row must not erase a whole column's summary.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    value = float(value)
    if not math.isfinite(value):
        return None
    return value


def _summary(values: List[float]) -> Dict[str, float]:
    """Summary over the seed axis, via the shared mergeable digest.

    Using :class:`~tussle.sweep.progress.MergingDigest` here keeps the
    batch aggregate byte-identical to the streaming aggregator's final
    snapshot: both compute every statistic from the same sorted-multiset
    representation, whatever order the values were folded in.
    """
    return MergingDigest.from_values(values).summary()


def metric_scalars(result: Dict[str, Any]) -> Dict[str, float]:
    """Per-metric scalar for one seed: column mean per numeric column."""
    scalars: Dict[str, float] = {}
    for table in result["tables"]:
        for column in table["columns"]:
            values = [v for v in (_numeric(row.get(column))
                                  for row in table["rows"]) if v is not None]
            if values:
                scalars[f"{table['title']}/{column}"] = (
                    sum(values) / len(values))
    return scalars


def _aggregate_group(experiment_id: str, params: Dict[str, Any],
                     cells: List[Dict[str, Any]]) -> Dict[str, Any]:
    seeds = [cell["base_seed"] for cell in cells]
    ok_cells = [cell for cell in cells if cell["status"] == "ok"]
    holding = [cell for cell in ok_cells
               if cell["result"]["shape_holds"]]

    checks: List[Dict[str, Any]] = []
    if ok_cells:
        claims = [check["claim"] for check in ok_cells[0]["result"]["checks"]]
        for index, claim in enumerate(claims):
            passes = sum(
                1 for cell in ok_cells
                if index < len(cell["result"]["checks"])
                and cell["result"]["checks"][index]["holds"]
            )
            checks.append({
                "claim": claim,
                "passes": passes,
                "seeds": len(ok_cells),
                "pass_fraction": passes / len(ok_cells),
            })

    metrics: Dict[str, Dict[str, float]] = {}
    per_seed = [metric_scalars(cell["result"]) for cell in ok_cells]
    for name in sorted({name for scalars in per_seed for name in scalars}):
        values = [scalars[name] for scalars in per_seed if name in scalars]
        metrics[name] = _summary(values)

    robust = bool(ok_cells) and len(holding) == len(cells)
    verdict = (
        f"{experiment_id} shape holds on {len(holding)}/{len(cells)} seeds"
        + (f" ({len(cells) - len(ok_cells)} failed)"
           if len(ok_cells) < len(cells) else "")
    )
    return {
        "experiment_id": experiment_id,
        "params": params,
        "seeds": sorted(seeds),
        "cells": len(cells),
        "cells_failed": len(cells) - len(ok_cells),
        "shape_holds_count": len(holding),
        "robust": robust,
        "verdict": verdict,
        "checks": checks,
        "metrics": metrics,
    }


def aggregate(cells: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Collapse the seed axis of merged sweep payloads.

    ``cells`` is ``SweepReport.cells`` — already sorted by cell
    identity, so groups come out in deterministic order too.
    """
    grouped: Dict[tuple, List[Dict[str, Any]]] = {}
    order: List[tuple] = []
    for cell in cells:
        key = (cell["experiment_id"], canonical_params(cell["params"]))
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(cell)

    groups = []
    for key in order:
        members = sorted(grouped[key], key=lambda c: c["base_seed"])
        groups.append(_aggregate_group(members[0]["experiment_id"],
                                       members[0]["params"], members))
    return {
        "schema": AGGREGATE_SCHEMA,
        "groups": groups,
        "robust": all(group["robust"] for group in groups),
        "verdicts": [group["verdict"] for group in groups],
    }
