"""tussle.sweep: parallel multi-seed / parameter sweep engine.

The ROADMAP's north star asks the framework to validate the paper's
qualitative claims over "as many scenarios as you can imagine", as fast
as the hardware allows.  This package fans ``(experiment, params, seed)``
cells out across a process pool while keeping the output byte-
reproducible:

:mod:`~tussle.sweep.cells`
    The cell model — canonical parameter JSON, grid expansion, and the
    SHA-256 seed derivation that keeps every cell's RNG stream
    independent of every other's.
:mod:`~tussle.sweep.executors`
    The sanctioned parallelism site (lint rule D110): a
    ``multiprocessing`` pool plus an in-process fallback for debugging,
    both returning identical payloads.
:mod:`~tussle.sweep.scheduler`
    Cache-aware dispatch and the deterministic merge: output is sorted
    by cell identity, never by completion order.
:mod:`~tussle.sweep.cache`
    On-disk completed-cell cache keyed by (experiment, params, seed,
    code fingerprint) — re-runs and CI are incremental.
:mod:`~tussle.sweep.aggregate`
    Collapses the seed axis into per-metric summaries and robustness
    verdicts ("E01 shape holds on 50/50 seeds").

Quickstart::

    from tussle.sweep import SweepSpec, ProcessPoolExecutor, run_sweep, aggregate

    spec = SweepSpec(experiment_ids=["E01"], seeds=list(range(20)), grid={})
    report = run_sweep(spec, executor=ProcessPoolExecutor(jobs=4))
    print(aggregate(report.cells)["verdicts"])

or from the command line: ``python -m tussle sweep E01 --seeds 20 --jobs 4``.
"""

from .aggregate import aggregate, metric_scalars
from .cache import ResultCache, code_fingerprint
from .cells import Cell, SweepSpec, canonical_params, derive_seed, expand_grid
from .executors import (
    InProcessExecutor,
    ProcessPoolExecutor,
    ResilientExecutor,
    run_cell,
)
from .progress import MergingDigest, StreamingAggregator
from .scheduler import SweepReport, run_sweep

__all__ = [
    "aggregate", "metric_scalars",
    "ResultCache", "code_fingerprint",
    "Cell", "SweepSpec", "canonical_params", "derive_seed", "expand_grid",
    "InProcessExecutor", "ProcessPoolExecutor", "ResilientExecutor",
    "run_cell",
    "MergingDigest", "StreamingAggregator",
    "SweepReport", "run_sweep",
]
