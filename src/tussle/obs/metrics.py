"""Metrics registry: named counters, gauges and histograms per subsystem.

Instruments are deterministic by construction — they only aggregate
values the simulation itself computed (event counts, queue depths,
iteration totals), never wall-clock time — so a metrics snapshot taken
at a fixed seed is reproducible and safe to embed in an
:class:`~tussle.experiments.common.ExperimentResult`.

Scopes name the subsystem that owns the instruments
(``"netsim.engine"``, ``"econ.market"``, ...); the snapshot is a nested
dict keyed scope → instrument kind → name, with every level sorted so
serializations are stable.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsScope", "Metrics",
           "NullMetrics"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; ``set_max`` tracks a high-water mark."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Streaming summary of observed values: count/total/min/max."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsScope:
    """All instruments belonging to one subsystem."""

    __slots__ = ("name", "_counters", "_gauges", "_histograms")

    def __init__(self, name: str):
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self._counters:
            data["counters"] = {n: c.value
                                for n, c in sorted(self._counters.items())}
        if self._gauges:
            data["gauges"] = {n: g.value
                              for n, g in sorted(self._gauges.items())}
        if self._histograms:
            data["histograms"] = {n: h.summary()
                                  for n, h in sorted(self._histograms.items())}
        return data


class Metrics:
    """Registry of per-subsystem :class:`MetricsScope` objects.

    Like the tracer, ``enabled`` is the construction-time switch: when
    False (:class:`NullMetrics`, the default) instrumented code caches
    ``None`` and the hot path pays one ``is not None`` test.
    """

    enabled = True

    def __init__(self) -> None:
        self._scopes: Dict[str, MetricsScope] = {}

    def scope(self, name: str) -> MetricsScope:
        existing = self._scopes.get(name)
        if existing is None:
            existing = self._scopes[name] = MetricsScope(name)
        return existing

    def scopes(self) -> Dict[str, MetricsScope]:
        return dict(self._scopes)

    def snapshot(self) -> Dict[str, Any]:
        """Nested scope → instruments dict, sorted at every level."""
        return {name: scope.snapshot()
                for name, scope in sorted(self._scopes.items())}


class NullMetrics(Metrics):
    """Default registry: marks observability as off."""

    enabled = False
