"""Trace analysis: turn a JSONL trace into per-subsystem breakdowns.

Drives ``python -m tussle.obs report <trace.jsonl>``.  The report has
three sections, all computed from logical (simulated) time:

* **subsystems** — per-scope span counts, total span time, and event
  counts: where sim time goes;
* **event rates** — per (scope, name) record counts and rates over the
  scope's observed time span;
* **hottest callbacks** — the top-N most-fired engine callbacks.

This module deliberately avoids importing the experiment harness (the
instrumented subsystems import :mod:`tussle.obs` at module load, so
anything here that imported them back would be a cycle); it renders its
own plain-text tables.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from ..errors import ObservabilityError

__all__ = ["load_trace", "TraceReport", "build_report"]


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse one JSONL trace file into a list of record dicts."""
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace {source}: {exc}") from exc
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{source}:{lineno}: not valid JSON: {exc}") from exc
        if not isinstance(record, dict) or "kind" not in record:
            raise ObservabilityError(
                f"{source}:{lineno}: not a trace record (missing 'kind')")
        records.append(record)
    return records


def _format_table(title: str, columns: Sequence[str],
                  rows: Sequence[Sequence[Any]]) -> str:
    body = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in body)) if body
        else len(columns[i])
        for i in range(len(columns))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class TraceReport:
    """Aggregated view over one trace's records."""

    def __init__(self, records: Sequence[Dict[str, Any]]):
        self.records = list(records)
        self.spans = [r for r in self.records if r.get("kind") == "span"]
        self.events = [r for r in self.records if r.get("kind") == "event"]

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def subsystem_breakdown(self) -> List[Dict[str, Any]]:
        """Per-scope span/event totals, sorted by total span time."""
        scopes: Dict[str, Dict[str, Any]] = {}
        for record in self.records:
            scope = scopes.setdefault(record.get("scope", "?"), {
                "spans": 0, "span_time": 0.0, "events": 0,
                "t_min": None, "t_max": None,
            })
            if record["kind"] == "span":
                scope["spans"] += 1
                scope["span_time"] += record["t1"] - record["t0"]
                lo, hi = record["t0"], record["t1"]
            else:
                scope["events"] += 1
                lo = hi = record["t"]
            if scope["t_min"] is None or lo < scope["t_min"]:
                scope["t_min"] = lo
            if scope["t_max"] is None or hi > scope["t_max"]:
                scope["t_max"] = hi
        rows = [
            {"scope": name, **data} for name, data in scopes.items()
        ]
        rows.sort(key=lambda r: (-r["span_time"], r["scope"]))
        return rows

    def event_rates(self) -> List[Dict[str, Any]]:
        """Per (scope, name) counts and rates over the scope's time span."""
        tally: _TallyCounter = _TallyCounter()
        for record in self.records:
            tally[(record.get("scope", "?"), record.get("name", "?"))] += 1
        spans = {row["scope"]: row for row in self.subsystem_breakdown()}
        rows = []
        for (scope, name), count in tally.items():
            info = spans.get(scope, {})
            t_min, t_max = info.get("t_min"), info.get("t_max")
            duration = (t_max - t_min) if (t_min is not None
                                           and t_max is not None) else 0.0
            rows.append({
                "scope": scope,
                "name": name,
                "count": count,
                "rate": count / duration if duration > 0 else 0.0,
            })
        rows.sort(key=lambda r: (-r["count"], r["scope"], r["name"]))
        return rows

    def hottest_callbacks(self, top: int = 10) -> List[Tuple[str, int]]:
        """Most frequently fired callbacks (engine ``fire`` events)."""
        tally: _TallyCounter = _TallyCounter()
        for record in self.events:
            if record.get("name") != "fire":
                continue
            callback = record.get("fields", {}).get("callback")
            if callback is not None:
                tally[callback] += 1
        return tally.most_common(top)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format(self, top: int = 10) -> str:
        sections = [
            f"trace: {len(self.records)} records "
            f"({len(self.spans)} spans, {len(self.events)} events)",
            "",
            _format_table(
                "Per-subsystem breakdown (logical time)",
                ["scope", "spans", "span_time", "events", "t_min", "t_max"],
                [[r["scope"], r["spans"], r["span_time"], r["events"],
                  r["t_min"] if r["t_min"] is not None else "-",
                  r["t_max"] if r["t_max"] is not None else "-"]
                 for r in self.subsystem_breakdown()],
            ),
            "",
            _format_table(
                "Event rates (per scope/name)",
                ["scope", "name", "count", "rate"],
                [[r["scope"], r["name"], r["count"], r["rate"]]
                 for r in self.event_rates()],
            ),
        ]
        callbacks = self.hottest_callbacks(top)
        if callbacks:
            sections += ["", _format_table(
                f"Top-{min(top, len(callbacks))} hottest callbacks",
                ["callback", "fires"],
                [[name, count] for name, count in callbacks],
            )]
        return "\n".join(sections)

    def to_dict(self, top: int = 10) -> Dict[str, Any]:
        return {
            "records": len(self.records),
            "spans": len(self.spans),
            "events": len(self.events),
            "subsystems": self.subsystem_breakdown(),
            "event_rates": self.event_rates(),
            "hottest_callbacks": [
                {"callback": name, "fires": count}
                for name, count in self.hottest_callbacks(top)
            ],
        }


def build_report(path: Union[str, Path]) -> TraceReport:
    """Load ``path`` and aggregate it into a :class:`TraceReport`."""
    return TraceReport(load_trace(path))
