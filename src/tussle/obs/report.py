"""Trace analysis: turn a JSONL trace into per-subsystem breakdowns.

Drives ``python -m tussle.obs report <trace.jsonl>``.  The report has
three sections, all computed from logical (simulated) time:

* **subsystems** — per-scope span counts, total span time, and event
  counts: where sim time goes;
* **event rates** — per (scope, name) record counts and rates over the
  scope's observed time span;
* **hottest callbacks** — the top-N most-fired engine callbacks.

This module deliberately avoids importing the experiment harness (the
instrumented subsystems import :mod:`tussle.obs` at module load, so
anything here that imported them back would be a cycle); it renders its
own plain-text tables.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ObservabilityError

__all__ = ["load_trace", "load_trace_tolerant", "TraceReport",
           "build_report", "SweepTelemetryReport", "build_sweep_report"]


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _record_problem(record: Any) -> Optional[str]:
    """Why this parsed line is not an analyzable trace record, or None.

    Records of other kinds (telemetry ``cell``/``wall``/``meta``/
    ``summary`` lines in a mixed-schema file) are *not* problems — the
    report counts them separately — but spans and events with missing
    or non-numeric timestamps are: downstream time math would crash or
    silently corrupt aggregates.
    """
    if not isinstance(record, dict):
        return "not a JSON object"
    if "kind" not in record:
        return "missing 'kind'"
    kind = record["kind"]
    if kind == "span":
        if not (_is_number(record.get("t0")) and _is_number(record.get("t1"))):
            return "span without numeric t0/t1"
    elif kind == "event":
        if not _is_number(record.get("t")):
            return "event without numeric t"
    return None


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse one JSONL trace file into a list of record dicts.

    Strict: the first unreadable line raises :class:`ObservabilityError`
    with the file and line number.  For salvaging damaged or
    mixed-schema files, use :func:`load_trace_tolerant`.
    """
    records, problems = _load(path, strict=True)
    assert not problems  # strict mode raised instead
    return records


def load_trace_tolerant(
    path: Union[str, Path],
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Parse a trace file, salvaging what parses.

    Returns ``(records, problems)``: every line that parses into an
    analyzable record, plus one human-readable problem per skipped line
    (truncated tail from a crashed run, interleaved non-JSON output,
    records from a different schema).  Never raises for file *content*;
    an unreadable file still raises.
    """
    return _load(path, strict=False)


def _load(path: Union[str, Path],
          strict: bool) -> Tuple[List[Dict[str, Any]], List[str]]:
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace {source}: {exc}") from exc
    records: List[Dict[str, Any]] = []
    problems: List[str] = []

    def problem(lineno: int, message: str) -> None:
        full = f"{source}:{lineno}: {message}"
        if strict:
            raise ObservabilityError(full)
        problems.append(full)

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problem(lineno, f"not valid JSON: {exc}")
            continue
        if not isinstance(record, dict) or "kind" not in record:
            problem(lineno, "not a trace record (missing 'kind')")
            continue
        reason = _record_problem(record)
        if reason is not None and not strict:
            # Strict mode historically accepted these; tolerant mode
            # quarantines them so aggregation stays crash-free.
            problems.append(f"{source}:{lineno}: {reason}")
            continue
        records.append(record)
    return records, problems


def _format_table(title: str, columns: Sequence[str],
                  rows: Sequence[Sequence[Any]]) -> str:
    body = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in body)) if body
        else len(columns[i])
        for i in range(len(columns))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class TraceReport:
    """Aggregated view over one trace's records.

    Construction never raises on malformed records: spans/events with
    broken timestamps are quarantined into ``skipped`` (with a reason
    appended to ``problems``) and records of other kinds — telemetry
    lines in a mixed-schema file, meta headers — are counted in
    ``other`` and excluded from time math, so the report is always at
    least partial.
    """

    def __init__(self, records: Sequence[Dict[str, Any]],
                 problems: Sequence[str] = ()):
        self.records = []
        self.skipped: List[Dict[str, Any]] = []
        self.other: List[Dict[str, Any]] = []
        self.problems = list(problems)
        for index, record in enumerate(records):
            reason = _record_problem(record)
            if reason is not None:
                self.skipped.append(record)
                self.problems.append(f"record {index}: {reason}")
            elif record.get("kind") in ("span", "event"):
                self.records.append(record)
            else:
                self.other.append(record)
        self.spans = [r for r in self.records if r.get("kind") == "span"]
        self.events = [r for r in self.records if r.get("kind") == "event"]

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def subsystem_breakdown(self) -> List[Dict[str, Any]]:
        """Per-scope span/event totals, sorted by total span time."""
        scopes: Dict[str, Dict[str, Any]] = {}
        for record in self.records:
            scope = scopes.setdefault(record.get("scope", "?"), {
                "spans": 0, "span_time": 0.0, "events": 0,
                "t_min": None, "t_max": None,
            })
            if record["kind"] == "span":
                scope["spans"] += 1
                scope["span_time"] += record["t1"] - record["t0"]
                lo, hi = record["t0"], record["t1"]
            else:
                scope["events"] += 1
                lo = hi = record["t"]
            if scope["t_min"] is None or lo < scope["t_min"]:
                scope["t_min"] = lo
            if scope["t_max"] is None or hi > scope["t_max"]:
                scope["t_max"] = hi
        rows = [
            {"scope": name, **data} for name, data in scopes.items()
        ]
        rows.sort(key=lambda r: (-r["span_time"], r["scope"]))
        return rows

    def event_rates(self) -> List[Dict[str, Any]]:
        """Per (scope, name) counts and rates over the scope's time span."""
        tally: _TallyCounter = _TallyCounter()
        for record in self.records:
            tally[(record.get("scope", "?"), record.get("name", "?"))] += 1
        spans = {row["scope"]: row for row in self.subsystem_breakdown()}
        rows = []
        for (scope, name), count in tally.items():
            info = spans.get(scope, {})
            t_min, t_max = info.get("t_min"), info.get("t_max")
            duration = (t_max - t_min) if (t_min is not None
                                           and t_max is not None) else 0.0
            rows.append({
                "scope": scope,
                "name": name,
                "count": count,
                "rate": count / duration if duration > 0 else 0.0,
            })
        rows.sort(key=lambda r: (-r["count"], r["scope"], r["name"]))
        return rows

    def hottest_callbacks(self, top: int = 10) -> List[Tuple[str, int]]:
        """Most frequently fired callbacks (engine ``fire`` events)."""
        tally: _TallyCounter = _TallyCounter()
        for record in self.events:
            if record.get("name") != "fire":
                continue
            callback = record.get("fields", {}).get("callback")
            if callback is not None:
                tally[callback] += 1
        return tally.most_common(top)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format(self, top: int = 10) -> str:
        headline = (f"trace: {len(self.records)} records "
                    f"({len(self.spans)} spans, {len(self.events)} events)")
        if self.other:
            headline += f", {len(self.other)} other-schema records"
        if self.problems:
            headline += f", {len(self.problems)} skipped"
        sections = [
            headline,
            "",
            _format_table(
                "Per-subsystem breakdown (logical time)",
                ["scope", "spans", "span_time", "events", "t_min", "t_max"],
                [[r["scope"], r["spans"], r["span_time"], r["events"],
                  r["t_min"] if r["t_min"] is not None else "-",
                  r["t_max"] if r["t_max"] is not None else "-"]
                 for r in self.subsystem_breakdown()],
            ),
            "",
            _format_table(
                "Event rates (per scope/name)",
                ["scope", "name", "count", "rate"],
                [[r["scope"], r["name"], r["count"], r["rate"]]
                 for r in self.event_rates()],
            ),
        ]
        callbacks = self.hottest_callbacks(top)
        if callbacks:
            sections += ["", _format_table(
                f"Top-{min(top, len(callbacks))} hottest callbacks",
                ["callback", "fires"],
                [[name, count] for name, count in callbacks],
            )]
        if self.problems:
            shown = self.problems[:top]
            sections += ["", f"Problems ({len(self.problems)}):"]
            sections += [f"  {line}" for line in shown]
            if len(self.problems) > top:
                sections.append(
                    f"  ... and {len(self.problems) - top} more")
        return "\n".join(sections)

    def to_dict(self, top: int = 10) -> Dict[str, Any]:
        return {
            "records": len(self.records),
            "spans": len(self.spans),
            "events": len(self.events),
            "other": len(self.other),
            "skipped": len(self.skipped),
            "problems": list(self.problems),
            "subsystems": self.subsystem_breakdown(),
            "event_rates": self.event_rates(),
            "hottest_callbacks": [
                {"callback": name, "fires": count}
                for name, count in self.hottest_callbacks(top)
            ],
        }


def build_report(path: Union[str, Path],
                 strict: bool = True) -> TraceReport:
    """Load ``path`` and aggregate it into a :class:`TraceReport`.

    ``strict=False`` salvages damaged files: unparseable lines become
    entries in the report's ``problems`` instead of exceptions.
    """
    if strict:
        return TraceReport(load_trace(path))
    records, problems = load_trace_tolerant(path)
    return TraceReport(records, problems=problems)


class SweepTelemetryReport:
    """Aggregated view over a sweep telemetry stream (both channels).

    Built from a deterministic-channel file plus (when present) its
    :func:`~tussle.obs.telemetry.wall_path_for` sibling.  Deterministic
    facts — cell totals, cache-hit rate, outcome counts — come from the
    deterministic channel; utilization, stragglers, and retry storms
    come from the quarantined wall channel and are absent when it is.
    """

    def __init__(self, det_records: Sequence[Dict[str, Any]],
                 wall_records: Sequence[Dict[str, Any]] = (),
                 problems: Sequence[str] = ()):
        self.problems = list(problems)
        self.schema: Optional[int] = None
        self.det_counters: Dict[str, int] = {}
        self.wall_counters: Dict[str, int] = {}
        self.cells: List[Dict[str, Any]] = []
        for record in det_records:
            kind = record.get("kind")
            if kind == "meta":
                self.schema = record.get("schema")
            elif kind == "summary":
                self.det_counters = dict(record.get("counters", {}))
            elif kind == "cell":
                self.cells.append(record)
        self.wall_events: List[Dict[str, Any]] = []
        for record in wall_records:
            kind = record.get("kind")
            if kind == "summary":
                self.wall_counters = dict(record.get("counters", {}))
            elif kind == "wall":
                self.wall_events.append(record)
        from .telemetry import TELEMETRY_SCHEMA
        if self.schema is not None and self.schema != TELEMETRY_SCHEMA:
            self.problems.append(
                f"telemetry schema {self.schema} != supported "
                f"{TELEMETRY_SCHEMA}; report may be incomplete")

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def cache_hit_rate(self) -> Optional[float]:
        total = self.det_counters.get("cells_total", 0)
        if not total:
            return None
        return self.det_counters.get("cache_hits", 0) / total

    def worker_utilization(self) -> List[Dict[str, Any]]:
        """Per-worker cell counts and busy seconds from ``cell_finished``."""
        workers: Dict[str, Dict[str, Any]] = {}
        for event in self.wall_events:
            if event.get("event") != "cell_finished":
                continue
            name = str(event.get("worker", "?"))
            row = workers.setdefault(
                name, {"worker": name, "cells": 0, "busy_seconds": 0.0})
            row["cells"] += 1
            seconds = event.get("seconds")
            if _is_number(seconds):
                row["busy_seconds"] += seconds
        rows = sorted(workers.values(),
                      key=lambda r: (-r["busy_seconds"], r["worker"]))
        return rows

    def stragglers(self, top: int = 5) -> List[Dict[str, Any]]:
        """The slowest finished cells by wall seconds."""
        finished = [
            e for e in self.wall_events
            if e.get("event") == "cell_finished"
            and _is_number(e.get("seconds"))
        ]
        finished.sort(key=lambda e: -e["seconds"])
        return [{"experiment_id": e.get("experiment_id"),
                 "base_seed": e.get("base_seed"),
                 "worker": e.get("worker"),
                 "seconds": e["seconds"],
                 "status": e.get("status")} for e in finished[:top]]

    def retry_storms(self) -> List[Dict[str, Any]]:
        """Cells retried more than once — the chaos hot spots."""
        tally: Dict[Tuple[Any, Any], Dict[str, Any]] = {}
        for event in self.wall_events:
            if event.get("event") != "cell_retried":
                continue
            key = (event.get("experiment_id"), event.get("base_seed"))
            row = tally.setdefault(key, {
                "experiment_id": key[0], "base_seed": key[1],
                "retries": 0, "reasons": []})
            row["retries"] += 1
            reason = event.get("reason")
            if reason and reason not in row["reasons"]:
                row["reasons"].append(reason)
        rows = [r for r in tally.values() if r["retries"] > 1]
        rows.sort(key=lambda r: (-r["retries"], str(r["experiment_id"]),
                                 str(r["base_seed"])))
        return rows

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def format(self, top: int = 5) -> str:
        det = self.det_counters
        lines = [
            f"sweep telemetry (schema {self.schema}): "
            f"{det.get('cells_total', len(self.cells))} cells, "
            f"{det.get('cache_hits', 0)} cache hits, "
            f"{det.get('completed_error', 0) + det.get('completed_failed', 0)}"
            " failures",
        ]
        rate = self.cache_hit_rate()
        if rate is not None:
            lines.append(f"cache hit rate: {rate:.1%}")
        if self.wall_counters:
            lines.append(
                f"wall: {self.wall_counters.get('attempts', 0)} attempts, "
                f"{self.wall_counters.get('retries', 0)} retries, "
                f"{self.wall_counters.get('worker_deaths', 0)} worker deaths, "
                f"{self.wall_counters.get('timeouts', 0)} timeouts, "
                f"{self.wall_counters.get('breaker_trips', 0)} breaker trips")
        utilization = self.worker_utilization()
        if utilization:
            lines += ["", _format_table(
                "Per-worker utilization (wall)",
                ["worker", "cells", "busy_seconds"],
                [[r["worker"], r["cells"], r["busy_seconds"]]
                 for r in utilization],
            )]
        stragglers = self.stragglers(top)
        if stragglers:
            lines += ["", _format_table(
                f"Top-{len(stragglers)} stragglers (wall)",
                ["experiment", "seed", "worker", "seconds", "status"],
                [[r["experiment_id"], r["base_seed"], r["worker"],
                  r["seconds"], r["status"]] for r in stragglers],
            )]
        storms = self.retry_storms()
        if storms:
            lines += ["", _format_table(
                "Retry storms (cells retried more than once)",
                ["experiment", "seed", "retries", "reasons"],
                [[r["experiment_id"], r["base_seed"], r["retries"],
                  "; ".join(r["reasons"])] for r in storms],
            )]
        if self.problems:
            lines += ["", f"Problems ({len(self.problems)}):"]
            lines += [f"  {p}" for p in self.problems[:10]]
        return "\n".join(lines)

    def to_dict(self, top: int = 5) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "det_counters": dict(self.det_counters),
            "wall_counters": dict(self.wall_counters),
            "cache_hit_rate": self.cache_hit_rate(),
            "worker_utilization": self.worker_utilization(),
            "stragglers": self.stragglers(top),
            "retry_storms": self.retry_storms(),
            "problems": list(self.problems),
        }


def build_sweep_report(path: Union[str, Path]) -> SweepTelemetryReport:
    """Load a telemetry file (plus wall sibling, if any) into a report.

    ``path`` is the deterministic-channel file written by
    ``python -m tussle sweep --telemetry``.  Loading is tolerant: a
    truncated or damaged file yields a partial report with problems
    listed, never a traceback.
    """
    from .telemetry import wall_path_for
    det_records, problems = load_trace_tolerant(path)
    wall_records: List[Dict[str, Any]] = []
    wall_path = wall_path_for(path)
    if wall_path.exists():
        wall_records, wall_problems = load_trace_tolerant(wall_path)
        problems = problems + wall_problems
    return SweepTelemetryReport(det_records, wall_records,
                                problems=problems)
