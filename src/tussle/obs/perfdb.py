"""Perf-history ledger: a committed trend line for every benchmark.

Individual ``benchmarks/results/bench_<id>.json`` records are
machine-dependent and gitignored, so until now the bench trajectory
evaporated with every CI run.  This module consolidates them into one
committed, canonical-JSON ledger — ``benchmarks/history.json`` — that
future performance PRs can diff, trend, and gate against:

* :func:`ingest` appends the current results as one numbered run per
  benchmark (no timestamps: the ledger stays a deterministic function
  of the ingested records);
* :func:`trend` extracts a benchmark's wall-time trajectory across
  runs;
* :func:`check` is the regression gate behind
  ``python -m tussle.obs perf --check``: current wall time must stay
  within ``threshold`` × the best recorded wall time, with an absolute
  jitter floor so microbenchmarks don't flap.

Quarantine rule: wall-clock numbers live under each entry's ``"wall"``
key and are compared only ratio-wise against other wall numbers;
deterministic facts (event counts, queue depths, shape verdicts) live
under ``"det"`` and may be compared exactly.  This module never reads
the host clock itself — every wall number arrives via the sanctioned
Profiler channel inside the bench records.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ObservabilityError

__all__ = ["HISTORY_SCHEMA", "load_history", "load_results", "ingest",
           "write_history", "trend", "check", "PerfFinding"]

#: Bumped when the ledger layout changes incompatibly.
HISTORY_SCHEMA = 1

#: Default regression threshold: current best-of-N wall time may not
#: exceed this multiple of the best wall time in the ledger.
DEFAULT_THRESHOLD = 3.0

#: Absolute jitter floor in seconds: wall deltas below this are noise
#: regardless of ratio (sub-millisecond benchmarks flap on shared CI).
DEFAULT_ABS_FLOOR = 0.005


def _empty_history() -> Dict[str, Any]:
    return {"schema": HISTORY_SCHEMA, "benchmarks": {}}


def load_history(path: Union[str, Path]) -> Dict[str, Any]:
    """Read the ledger; a missing file is an empty ledger."""
    source = Path(path)
    if not source.exists():
        return _empty_history()
    try:
        history = json.loads(source.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(
            f"cannot read perf history {source}: {exc}") from exc
    if not isinstance(history, dict) or "benchmarks" not in history:
        raise ObservabilityError(
            f"{source}: not a perf history ledger (missing 'benchmarks')")
    if history.get("schema") != HISTORY_SCHEMA:
        raise ObservabilityError(
            f"{source}: ledger schema {history.get('schema')!r} "
            f"!= supported {HISTORY_SCHEMA}")
    return history


def load_results(results_dir: Union[str, Path]) -> Dict[str, Dict[str, Any]]:
    """Read every ``bench_*.json`` record under ``results_dir``.

    Returns ``{bench_id: record}``; unreadable or non-record files
    raise — a truncated result should fail the gate loudly, not
    silently shrink coverage.
    """
    directory = Path(results_dir)
    records: Dict[str, Dict[str, Any]] = {}
    for path in sorted(directory.glob("bench_*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ObservabilityError(
                f"cannot read bench record {path}: {exc}") from exc
        bench_id = record.get("id") if isinstance(record, dict) else None
        if not bench_id:
            raise ObservabilityError(
                f"{path}: not a bench record (missing 'id')")
        records[bench_id] = record
    return records


def _entry_from_record(record: Dict[str, Any], run: int) -> Dict[str, Any]:
    """One ledger entry: deterministic facts + quarantined wall facts."""
    det: Dict[str, Any] = {
        "event_counts": dict(sorted(
            (record.get("event_counts") or {}).items())),
        "peak_queue_depth": record.get("peak_queue_depth"),
    }
    if record.get("shape_holds") is not None:
        det["shape_holds"] = record["shape_holds"]
    wall = {
        "seconds": record.get("wall_seconds"),
        "seconds_min": record.get("wall_seconds_min"),
        "calls": record.get("calls", 0),
    }
    return {"run": run, "det": det, "wall": wall}


def ingest(history: Dict[str, Any],
           results: Dict[str, Dict[str, Any]]) -> List[str]:
    """Append every result as the next run of its benchmark (in place).

    Returns the ingested benchmark ids, sorted.  Run numbers are the
    per-benchmark ledger position — deliberately not timestamps, so the
    ledger is a deterministic function of the records fed to it.
    """
    benchmarks = history.setdefault("benchmarks", {})
    ingested = []
    for bench_id in sorted(results):
        entries = benchmarks.setdefault(bench_id, [])
        entries.append(_entry_from_record(results[bench_id],
                                          run=len(entries) + 1))
        ingested.append(bench_id)
    return ingested


def write_history(path: Union[str, Path],
                  history: Dict[str, Any]) -> Path:
    """Write the ledger as reviewable canonical JSON (sorted, indented)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(history, indent=2, sort_keys=True, allow_nan=False)
        + "\n",
        encoding="utf-8",
    )
    return target


def _wall_min(entry: Dict[str, Any]) -> Optional[float]:
    wall = entry.get("wall") or {}
    value = wall.get("seconds_min")
    if value is None:
        value = wall.get("seconds")
    return value


def trend(history: Dict[str, Any], bench_id: str) -> Dict[str, Any]:
    """A benchmark's wall-time trajectory across its recorded runs."""
    entries = (history.get("benchmarks") or {}).get(bench_id)
    if not entries:
        raise ObservabilityError(
            f"no history for benchmark {bench_id!r}")
    walls = [(entry["run"], _wall_min(entry)) for entry in entries]
    measured = [seconds for _, seconds in walls if seconds is not None]
    latest = measured[-1] if measured else None
    best = min(measured) if measured else None
    direction = "flat"
    if len(measured) >= 2:
        if measured[-1] > measured[0] * 1.05:
            direction = "slower"
        elif measured[-1] < measured[0] * 0.95:
            direction = "faster"
    return {
        "id": bench_id,
        "runs": len(entries),
        "wall_seconds_min": walls,
        "latest": latest,
        "best": best,
        "direction": direction,
    }


@dataclass
class PerfFinding:
    """One observation from the regression check."""

    bench_id: str
    kind: str      # "regression" | "counter-drift" | "new-benchmark"
    message: str
    blocking: bool

    def to_dict(self) -> Dict[str, Any]:
        return {"id": self.bench_id, "kind": self.kind,
                "message": self.message, "blocking": self.blocking}


def check(history: Dict[str, Any], results: Dict[str, Dict[str, Any]],
          threshold: float = DEFAULT_THRESHOLD,
          abs_floor: float = DEFAULT_ABS_FLOOR
          ) -> Tuple[List[PerfFinding], bool]:
    """Compare current results against the ledger baseline.

    Returns ``(findings, ok)``.  Blocking findings are wall-time
    regressions: current best-of-N above ``threshold`` × the ledger's
    best *and* above the absolute floor.  Counter drift (deterministic
    event counts changed vs. the latest ledger entry) and benchmarks
    with no baseline are reported but do not block — counts legitimately
    move when instrumentation or workloads change, and a new benchmark
    has nothing to regress against.
    """
    if threshold <= 1.0:
        raise ObservabilityError(
            f"threshold must be > 1.0, got {threshold}")
    findings: List[PerfFinding] = []
    benchmarks = history.get("benchmarks") or {}
    for bench_id in sorted(results):
        record = results[bench_id]
        entries = benchmarks.get(bench_id)
        if not entries:
            findings.append(PerfFinding(
                bench_id, "new-benchmark",
                "no ledger baseline yet; ingest to start its history",
                blocking=False))
            continue
        current = record.get("wall_seconds_min")
        if current is None:
            current = record.get("wall_seconds")
        baselines = [w for w in (_wall_min(e) for e in entries)
                     if w is not None]
        if current is not None and baselines:
            best = min(baselines)
            limit = best * threshold
            if current > limit and (current - best) > abs_floor:
                findings.append(PerfFinding(
                    bench_id, "regression",
                    f"wall {current:.4f}s exceeds {threshold:g}x ledger "
                    f"best {best:.4f}s",
                    blocking=True))
        latest_counts = (entries[-1].get("det") or {}).get(
            "event_counts") or {}
        current_counts = dict(sorted(
            (record.get("event_counts") or {}).items()))
        if latest_counts and current_counts != latest_counts:
            changed = sorted(
                key for key in set(latest_counts) | set(current_counts)
                if latest_counts.get(key) != current_counts.get(key))
            findings.append(PerfFinding(
                bench_id, "counter-drift",
                "deterministic event counts moved vs. latest ledger "
                f"entry: {', '.join(changed[:6])}"
                + ("..." if len(changed) > 6 else ""),
                blocking=False))
    ok = not any(finding.blocking for finding in findings)
    return findings, ok
