"""The Profiler: the one sanctioned wall-clock consumer in the package.

Everything else in the simulation stack is forbidden to read the host
clock (lint rules D104/D109 enforce it); this module is the explicit
exception, allowlisted in :data:`tussle.lint.determinism.WALL_CLOCK_ALLOWLIST`.

Quarantine rule: wall-clock measurements never enter a trace, a metrics
snapshot, or an :class:`~tussle.experiments.common.ExperimentResult` —
the channels covered by the seedcheck fingerprint.  They flow only into
the separate profile channel (:meth:`Profiler.snapshot`), which the
benchmark emitter writes to ``benchmarks/results/bench_<id>.json``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Profiler", "NullProfiler"]


class _KeyStats:
    __slots__ = ("calls", "total", "min", "max")

    def __init__(self) -> None:
        self.calls = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds


class Profiler:
    """Accumulates wall-clock durations per key.

    Usage::

        profiler = Profiler()
        with profiler.time("experiment"):
            run_e01()
        profiler.snapshot()["experiment"]["total_seconds"]
    """

    enabled = True

    def __init__(self) -> None:
        self._stats: Dict[str, _KeyStats] = {}

    @contextmanager
    def time(self, key: str) -> Iterator[None]:
        """Time the enclosed block under ``key``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._stats.setdefault(key, _KeyStats()).record(
                time.perf_counter() - start)

    def record(self, key: str, seconds: float) -> None:
        """Fold an externally measured duration into ``key``."""
        self._stats.setdefault(key, _KeyStats()).record(float(seconds))

    def keys(self) -> List[str]:
        return sorted(self._stats)

    def total_seconds(self, key: str) -> float:
        stats = self._stats.get(key)
        return stats.total if stats is not None else 0.0

    def min_seconds(self, key: str) -> Optional[float]:
        stats = self._stats.get(key)
        return stats.min if stats is not None else None

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The quarantined wall-clock channel: key → timing summary."""
        return {
            key: {
                "calls": stats.calls,
                "total_seconds": stats.total,
                "min_seconds": stats.min,
                "max_seconds": stats.max,
                "mean_seconds": stats.total / stats.calls if stats.calls else 0.0,
            }
            for key, stats in sorted(self._stats.items())
        }


class NullProfiler(Profiler):
    """Default profiler: never reads the clock."""

    enabled = False

    @contextmanager
    def time(self, key: str) -> Iterator[None]:
        yield

    def record(self, key: str, seconds: float) -> None:
        pass
