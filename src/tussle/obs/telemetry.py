"""Sweep telemetry: a schema-versioned, two-channel JSONL event stream.

The sweep fabric needs to be *watchable* — which cells ran where, what
was cached, what was retried, how long everything took — without
breaking the determinism contract (merged sweep output is a pure
function of the spec and the code fingerprint).  Telemetry therefore
splits into two channels, mirroring the worker protocol in
:mod:`tussle.sweep.executors`:

**Deterministic channel**
    Cell lifecycle facts that are pure functions of the sweep spec, the
    cache state, and the (deterministic) cell results: ``cell_dispatched``,
    ``cell_cache_hit``, ``cell_completed``.  Records are ordered by cell
    identity plus a fixed per-cell logical sequence — *not* by emission
    order — so the serialized stream is byte-identical regardless of
    worker count, completion order, or worker sabotage (the chaos gate
    asserts this).  Retry/latency facts never appear here.

**Quarantined wall-clock channel**
    Everything timing- or placement-dependent: per-attempt starts,
    retries, worker deaths, timeouts, worker lifecycle, breaker trips,
    and per-cell latencies.  Timestamps are host-clock offsets from
    stream start; this file is a sibling of the deterministic one
    (``<path>.wall.jsonl``) and must never feed a merge, a cache, or a
    seedcheck fingerprint.

This module reads the host clock for the quarantined channel and is
allowlisted in :data:`tussle.lint.determinism.WALL_CLOCK_ALLOWLIST`;
the deterministic channel never touches it.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..canon import canonical_json

__all__ = ["SweepTelemetry", "NullSweepTelemetry", "TELEMETRY_SCHEMA",
           "wall_path_for"]

#: Bumped when either channel's record layout changes incompatibly.
TELEMETRY_SCHEMA = 1

#: Fixed per-cell logical ordinals for deterministic-channel events.
#: Dispatch and cache-hit are mutually exclusive for one cell, so they
#: share ordinal 0; completion always sorts after either.
_DET_ORDINALS = {"cell_dispatched": 0, "cell_cache_hit": 0,
                 "cell_completed": 1}

#: Counter keys maintained on the deterministic channel.
_DET_COUNTERS = ("cells_total", "cache_hits", "dispatched",
                 "completed_ok", "completed_error", "completed_failed")

#: Counter keys maintained on the quarantined wall channel.
_WALL_COUNTERS = ("attempts", "retries", "worker_deaths", "timeouts",
                  "breaker_trips")


def wall_path_for(path: Union[str, Path]) -> Path:
    """The sibling wall-channel file for a deterministic-channel path."""
    target = Path(path)
    suffix = target.suffix
    if suffix == ".jsonl":
        return target.with_suffix(".wall.jsonl")
    return target.with_name(target.name + ".wall")


class SweepTelemetry:
    """Collects both telemetry channels for one sweep run.

    The scheduler emits the deterministic channel; executors emit the
    wall channel (they receive the telemetry object via their
    ``telemetry`` attribute).  ``enabled`` is the fast-path switch, as
    for the other observability facilities.
    """

    enabled = True

    def __init__(self) -> None:
        self._det: List[Tuple[tuple, int, Dict[str, Any]]] = []
        self._wall: List[Dict[str, Any]] = []
        self.det_counters: Dict[str, int] = {k: 0 for k in _DET_COUNTERS}
        self.wall_counters: Dict[str, int] = {k: 0 for k in _WALL_COUNTERS}
        self._t0: Optional[float] = None

    # ------------------------------------------------------------------
    # Deterministic channel (no clock access on any path below)
    # ------------------------------------------------------------------
    def _det_event(self, event: str, cell: tuple,
                   **fields: Any) -> None:
        record = {
            "kind": "cell",
            "event": event,
            "experiment_id": cell[0],
            "params_json": cell[1],
            "base_seed": cell[2],
        }
        record.update(fields)
        self._det.append((cell, _DET_ORDINALS[event], record))

    def cell_dispatched(self, cell: tuple) -> None:
        """A cache miss handed to the executor (identity triple)."""
        self.det_counters["cells_total"] += 1
        self.det_counters["dispatched"] += 1
        self._det_event("cell_dispatched", cell)

    def cell_cache_hit(self, cell: tuple) -> None:
        """A cell served from the result cache."""
        self.det_counters["cells_total"] += 1
        self.det_counters["cache_hits"] += 1
        self._det_event("cell_cache_hit", cell)

    def cell_completed(self, cell: tuple, status: str,
                       shape_holds: Optional[bool] = None) -> None:
        """A cell's final verdict entered the merge (any source)."""
        key = f"completed_{status}" if f"completed_{status}" \
            in self.det_counters else "completed_failed"
        self.det_counters[key] += 1
        self._det_event("cell_completed", cell, status=status,
                        shape_holds=shape_holds)

    # ------------------------------------------------------------------
    # Quarantined wall-clock channel
    # ------------------------------------------------------------------
    def _now(self) -> float:
        now = time.monotonic()
        if self._t0 is None:
            self._t0 = now
        return now - self._t0

    def elapsed(self) -> float:
        """Quarantined wall seconds since the first wall-channel touch."""
        return self._now()

    def wall_event(self, event: str, **fields: Any) -> None:
        """Record one wall-channel event stamped with a stream offset."""
        record: Dict[str, Any] = {"kind": "wall", "event": event,
                                  "t": round(self._now(), 6)}
        record.update(fields)
        self._wall.append(record)

    def cell_attempt(self, cell: tuple, attempt: int,
                     worker: str) -> None:
        """One attempt at a cell started on ``worker``."""
        self.wall_counters["attempts"] += 1
        self.wall_event("cell_attempt", experiment_id=cell[0],
                        base_seed=cell[2], attempt=attempt, worker=worker)

    def cell_retried(self, cell: tuple, attempt: int, reason: str,
                     delay: float) -> None:
        """An infrastructure failure scheduled a retry."""
        self.wall_counters["retries"] += 1
        if "worker-death" in reason:
            self.wall_counters["worker_deaths"] += 1
        elif "timeout" in reason:
            self.wall_counters["timeouts"] += 1
        self.wall_event("cell_retried", experiment_id=cell[0],
                        base_seed=cell[2], attempt=attempt, reason=reason,
                        delay=round(delay, 6))

    def cell_finished(self, cell: tuple, worker: str,
                      seconds: float, status: str) -> None:
        """A cell's (final) attempt finished; latency in wall seconds."""
        self.wall_event("cell_finished", experiment_id=cell[0],
                        base_seed=cell[2], worker=worker,
                        seconds=round(seconds, 6), status=status)

    def worker_started(self, worker: str) -> None:
        self.wall_event("worker_started", worker=worker)

    def worker_exited(self, worker: str, reason: str) -> None:
        self.wall_event("worker_exited", worker=worker, reason=reason)

    def breaker_trip(self, site: str, consecutive_failures: int) -> None:
        """A circuit breaker opened somewhere in the sweep fabric."""
        self.wall_counters["breaker_trips"] += 1
        self.wall_event("breaker_trip", site=site,
                        consecutive_failures=consecutive_failures)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def deterministic_lines(self) -> List[str]:
        """The deterministic channel as canonical JSONL lines.

        A meta header, then cell events sorted by (cell identity,
        logical ordinal), then a counter summary — all pure functions of
        the sweep spec, cache state, and cell verdicts, so the joined
        bytes are identical whatever the worker count, completion
        order, or chaos plan.
        """
        header = {"kind": "meta", "schema": TELEMETRY_SCHEMA,
                  "channel": "deterministic"}
        ordered = sorted(self._det, key=lambda item: (item[0], item[1]))
        summary = {"kind": "summary",
                   "counters": dict(sorted(self.det_counters.items()))}
        return ([canonical_json(header)]
                + [canonical_json(record) for _, _, record in ordered]
                + [canonical_json(summary)])

    def wall_lines(self) -> List[str]:
        """The quarantined channel as JSONL lines, in emission order."""
        header = {"kind": "meta", "schema": TELEMETRY_SCHEMA,
                  "channel": "wall"}
        summary = {"kind": "summary",
                   "counters": dict(sorted(self.wall_counters.items()))}
        return ([canonical_json(header)]
                + [canonical_json(record) for record in self._wall]
                + [canonical_json(summary)])

    def to_deterministic_jsonl(self) -> str:
        return "\n".join(self.deterministic_lines()) + "\n"

    def to_wall_jsonl(self) -> str:
        return "\n".join(self.wall_lines()) + "\n"

    def write(self, path: Union[str, Path]) -> Tuple[Path, Path]:
        """Write both channels; returns (deterministic path, wall path).

        The deterministic channel goes to ``path``; the wall channel to
        the :func:`wall_path_for` sibling, keeping the byte-comparable
        file free of timing data.
        """
        det_path = Path(path)
        det_path.parent.mkdir(parents=True, exist_ok=True)
        det_path.write_text(self.to_deterministic_jsonl(), encoding="utf-8")
        wall_path = wall_path_for(det_path)
        wall_path.write_text(self.to_wall_jsonl(), encoding="utf-8")
        return det_path, wall_path

    def summary_line(self, wall_seconds: Optional[float] = None) -> str:
        """One human line over both channels' counters."""
        det, wall = self.det_counters, self.wall_counters
        failures = det["completed_error"] + det["completed_failed"]
        parts = [
            f"{det['cells_total']} cells",
            f"{det['cache_hits']} cache hits",
            f"{wall['retries']} retries",
            f"{failures} failures",
        ]
        if wall_seconds is not None:
            parts.append(f"{wall_seconds:.2f}s wall")
        return "sweep: " + ", ".join(parts)


class NullSweepTelemetry(SweepTelemetry):
    """Disabled telemetry: every hook is a no-op, nothing is recorded."""

    enabled = False

    def _det_event(self, event: str, cell: tuple, **fields: Any) -> None:
        pass

    def elapsed(self) -> float:
        return 0.0

    def cell_dispatched(self, cell: tuple) -> None:
        pass

    def cell_cache_hit(self, cell: tuple) -> None:
        pass

    def cell_completed(self, cell: tuple, status: str,
                       shape_holds: Optional[bool] = None) -> None:
        pass

    def wall_event(self, event: str, **fields: Any) -> None:
        pass

    def cell_attempt(self, cell: tuple, attempt: int, worker: str) -> None:
        pass

    def cell_retried(self, cell: tuple, attempt: int, reason: str,
                     delay: float) -> None:
        pass

    def cell_finished(self, cell: tuple, worker: str, seconds: float,
                      status: str) -> None:
        pass

    def worker_started(self, worker: str) -> None:
        pass

    def worker_exited(self, worker: str, reason: str) -> None:
        pass

    def breaker_trip(self, site: str, consecutive_failures: int) -> None:
        pass
