"""Benchmark record emitter: machine-readable perf baselines.

Every benchmark writes a ``benchmarks/results/bench_<id>.json`` next to
its human-readable ``.txt`` table so future performance PRs have a
measured baseline to beat: wall time (from the quarantined
:class:`~tussle.obs.profiler.Profiler` channel), deterministic event and
metric counts, and the peak event-queue depth.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .metrics import Metrics
from .profiler import Profiler

__all__ = ["BenchRecord", "bench_record", "write_bench_record"]

#: Bumped when the record layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass
class BenchRecord:
    """One benchmark's machine-readable perf record."""

    bench_id: str
    wall_seconds: Optional[float] = None
    wall_seconds_min: Optional[float] = None
    calls: int = 0
    event_counts: Dict[str, int] = field(default_factory=dict)
    peak_queue_depth: Optional[float] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    profile: Dict[str, Any] = field(default_factory=dict)
    shape_holds: Optional[bool] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "id": self.bench_id,
            "wall_seconds": self.wall_seconds,
            "wall_seconds_min": self.wall_seconds_min,
            "calls": self.calls,
            "event_counts": dict(sorted(self.event_counts.items())),
            "peak_queue_depth": self.peak_queue_depth,
            "metrics": self.metrics,
            "profile": self.profile,
        }
        if self.shape_holds is not None:
            data["shape_holds"] = self.shape_holds
        data.update(self.extra)
        return data


def _engine_stats(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    return snapshot.get("netsim.engine", {})


def bench_record(
    bench_id: str,
    metrics: Optional[Metrics] = None,
    profiler: Optional[Profiler] = None,
    timing_key: str = "experiment",
    result: Optional[Any] = None,
    **extra: Any,
) -> BenchRecord:
    """Assemble a :class:`BenchRecord` from the observability facilities.

    ``metrics`` supplies the deterministic channel (event counts per
    scope, peak queue depth); ``profiler`` supplies the quarantined
    wall-clock channel under ``timing_key``; ``result`` (an
    ``ExperimentResult``-shaped object) contributes the shape verdict.
    """
    record = BenchRecord(bench_id=bench_id, extra=dict(extra))

    if metrics is not None:
        snapshot = metrics.snapshot()
        record.metrics = snapshot
        counts: Dict[str, int] = {}
        for scope_name, scope_data in snapshot.items():
            for name, value in scope_data.get("counters", {}).items():
                counts[f"{scope_name}/{name}"] = value
        record.event_counts = counts
        engine_gauges = _engine_stats(snapshot).get("gauges", {})
        if "peak_queue_depth" in engine_gauges:
            record.peak_queue_depth = engine_gauges["peak_queue_depth"]

    if profiler is not None:
        profile = profiler.snapshot()
        record.profile = profile
        timing = profile.get(timing_key)
        if timing is not None:
            record.calls = timing["calls"]
            record.wall_seconds = timing["mean_seconds"]
            record.wall_seconds_min = timing["min_seconds"]

    if result is not None:
        record.shape_holds = getattr(result, "shape_holds", None)

    return record


def write_bench_record(results_dir: Union[str, Path],
                       record: BenchRecord) -> Path:
    """Write ``bench_<id>.json`` into ``results_dir``; returns the path."""
    directory = Path(results_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"bench_{record.bench_id.lower()}.json"
    path.write_text(
        json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path
