"""tussle.obs: deterministic-safe observability for the simulation stack.

The paper's central method is *watching the tussle unfold* — moves,
counter-moves, who controls what at each instant.  This subsystem makes
the simulation observable without compromising the determinism contract
(DESIGN.md, "Determinism contract"):

``Tracer``
    Span/event records stamped with *logical* time (the event-loop
    clock, round indices, convergence iterations) — never the host
    clock — so a trace at a fixed seed is byte-for-byte reproducible.
``Metrics``
    Named counters/gauges/histograms per subsystem scope; snapshots are
    deterministic and embeddable in an ``ExperimentResult``.
``Profiler``
    The one sanctioned wall-clock consumer (allowlisted in
    ``tussle.lint.determinism``); its measurements are quarantined to a
    separate channel that never feeds seedcheck fingerprints.

Everything is **off by default**: the active context holds a
:class:`NullTracer`/:class:`NullMetrics`/:class:`NullProfiler`, and
instrumented hot paths cache ``None`` so a disabled run pays one
``is not None`` test per hook.  Enable with::

    from tussle import obs
    with obs.observe(tracer=obs.Tracer(), metrics=obs.Metrics()) as ctx:
        result = run_e01()
    ctx.tracer.write_jsonl("trace.jsonl")

Analyze a trace with ``python -m tussle.obs report trace.jsonl``; emit a
perf baseline with :mod:`tussle.obs.bench`.
"""

from . import bench
from .diff import Divergence, diff_files, first_divergence, format_divergence
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    MetricsScope,
    NullMetrics,
)
from .profiler import NullProfiler, Profiler
from .runtime import ObsContext, current, observe
from .telemetry import NullSweepTelemetry, SweepTelemetry, wall_path_for
from .tracer import NullTracer, Span, Tracer, callback_name

__all__ = [
    "Counter", "Gauge", "Histogram", "Metrics", "MetricsScope",
    "NullMetrics",
    "NullProfiler", "Profiler",
    "ObsContext", "current", "observe",
    "NullTracer", "Span", "Tracer", "callback_name",
    "NullSweepTelemetry", "SweepTelemetry", "wall_path_for",
    "Divergence", "diff_files", "first_divergence", "format_divergence",
    "bench",
]
