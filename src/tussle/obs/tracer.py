"""Structured, deterministic tracing: spans and events on simulated time.

Every record is stamped with a *logical* time supplied by the caller —
the event-loop clock (:attr:`tussle.netsim.engine.Simulator.now`), a
round index, or a convergence iteration — never the host clock, so a
trace taken at a fixed seed is byte-for-byte reproducible across runs
and machines.  Wall-clock timing lives in one quarantined place,
:mod:`tussle.obs.profiler`, and never enters a trace.

Records are serialized as JSON Lines with sorted keys and compact
separators, which makes the reproducibility contract checkable with a
plain byte comparison of two trace files.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Union

__all__ = ["Span", "Tracer", "NullTracer", "callback_name"]


def callback_name(callback: Any) -> str:
    """Deterministic display name for a scheduled callable.

    ``repr`` embeds memory addresses and would break trace
    reproducibility; qualified names (falling back to the type name for
    partials and other callable objects) do not.
    """
    name = getattr(callback, "__qualname__", None)
    if name is None:
        name = type(callback).__name__
    return name


class Span:
    """An open interval of logical time inside one subsystem scope.

    Created by :meth:`Tracer.begin`; the caller closes it with
    :meth:`end`, at which point one ``span`` record is appended to the
    tracer.  Spans may also be used as context managers when the end
    time equals the begin time (pure grouping).
    """

    __slots__ = ("_tracer", "seq", "scope", "name", "t0", "fields", "closed")

    def __init__(self, tracer: "Tracer", seq: int, scope: str, name: str,
                 t0: float, fields: Dict[str, Any]):
        self._tracer = tracer
        self.seq = seq
        self.scope = scope
        self.name = name
        self.t0 = float(t0)
        self.fields = fields
        self.closed = False

    def end(self, t1: float, **fields: Any) -> None:
        """Close the span at logical time ``t1``; extra fields merge in."""
        if self.closed:
            return
        self.closed = True
        merged = dict(self.fields)
        merged.update(fields)
        self._tracer._append({
            "kind": "span",
            "seq": self.seq,
            "scope": self.scope,
            "name": self.name,
            "t0": self.t0,
            "t1": float(t1),
            "fields": merged,
        })

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.end(self.t0)


class _NullSpan:
    """The span :class:`NullTracer` hands out: every operation is a no-op."""

    __slots__ = ()

    def end(self, t1: float, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects span/event records in memory and serializes them to JSONL.

    The ``enabled`` class attribute is the fast-path switch instrumented
    code checks once at construction time: when it is False (the
    :class:`NullTracer` default) hot loops skip tracing entirely, which
    is what keeps the off-by-default overhead within budget.
    """

    enabled = True

    def __init__(self) -> None:
        self._records: List[Dict[str, Any]] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def event(self, scope: str, name: str, t: float, **fields: Any) -> None:
        """Record one instantaneous event at logical time ``t``."""
        self._append({
            "kind": "event",
            "seq": next(self._seq),
            "scope": scope,
            "name": name,
            "t": float(t),
            "fields": fields,
        })

    def begin(self, scope: str, name: str, t0: float,
              **fields: Any) -> Span:
        """Open a span at logical time ``t0``; close it with ``Span.end``."""
        return Span(self, next(self._seq), scope, name, t0, fields)

    def _append(self, record: Dict[str, Any]) -> None:
        self._records.append(record)

    # ------------------------------------------------------------------
    # Access & export
    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """The raw records, in emission order."""
        return list(self._records)

    def scopes(self) -> List[str]:
        """Sorted distinct scopes seen so far."""
        return sorted({r["scope"] for r in self._records})

    def iter_jsonl(self) -> Iterator[str]:
        """One deterministic JSON line per record (sorted keys, compact)."""
        for record in self._records:
            yield json.dumps(record, sort_keys=True, separators=(",", ":"))

    def to_jsonl(self) -> str:
        lines = list(self.iter_jsonl())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write every record to ``path`` as JSON Lines; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_jsonl(), encoding="utf-8")
        return target

    def __len__(self) -> int:
        return len(self._records)


class NullTracer(Tracer):
    """The default tracer: records nothing, costs (almost) nothing.

    Instrumented code checks ``tracer.enabled`` once and caches ``None``
    instead of the tracer, so per-event work reduces to a single
    ``is not None`` test.  The no-op methods below are for callers that
    hold a tracer reference without checking the flag.
    """

    enabled = False

    def event(self, scope: str, name: str, t: float, **fields: Any) -> None:
        pass

    def begin(self, scope: str, name: str, t0: float,
              **fields: Any) -> Span:
        return _NULL_SPAN  # type: ignore[return-value]
