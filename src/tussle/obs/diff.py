"""Trace diffing: localize the first divergence between two JSONL streams.

The repo's parity gates (scalar-vs-vector market, fault-free-vs-chaos
sweep, ``--jobs 1`` vs ``--jobs N`` telemetry) all assert byte-identity
of serialized record streams.  When such a gate fails, "bytes differ"
is useless; this module turns it into *where*: the first record index
at which the streams diverge, the two records themselves, the JSON
fields that changed, and a window of aligned context on both sides.

Works on any line-oriented record stream — deterministic telemetry,
``Tracer`` JSONL traces, canonical-JSON record dumps — and drives
``python -m tussle.obs diff A.jsonl B.jsonl``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import ObservabilityError

__all__ = ["Divergence", "first_divergence", "diff_files", "diff_lines",
           "format_divergence"]


@dataclass
class Divergence:
    """The first point at which two record streams disagree."""

    #: 0-based index of the first differing record (== min length when
    #: one stream is a strict prefix of the other).
    index: int
    #: the differing records (None past the shorter stream's end)
    a_line: Optional[str]
    b_line: Optional[str]
    #: shared records immediately before the divergence
    context: List[str] = field(default_factory=list)
    #: per-field changes when both records parse as JSON objects
    changed_fields: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: total lengths, to report prefix/truncation cases
    a_total: int = 0
    b_total: int = 0

    @property
    def kind(self) -> str:
        if self.a_line is None or self.b_line is None:
            return "length"
        return "record"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "a": self.a_line,
            "b": self.b_line,
            "context": list(self.context),
            "changed_fields": self.changed_fields,
            "a_total": self.a_total,
            "b_total": self.b_total,
        }


def _changed_fields(a_line: str, b_line: str) -> Dict[str, Dict[str, Any]]:
    """Per-key old/new values when both lines are JSON objects."""
    try:
        a_record, b_record = json.loads(a_line), json.loads(b_line)
    except json.JSONDecodeError:
        return {}
    if not isinstance(a_record, dict) or not isinstance(b_record, dict):
        return {}
    changes: Dict[str, Dict[str, Any]] = {}
    for key in sorted(set(a_record) | set(b_record)):
        a_value = a_record.get(key, "<missing>")
        b_value = b_record.get(key, "<missing>")
        if a_value != b_value:
            changes[key] = {"a": a_value, "b": b_value}
    return changes


def first_divergence(a: Sequence[str], b: Sequence[str],
                     context: int = 3) -> Optional[Divergence]:
    """The first index where ``a`` and ``b`` disagree, or None.

    ``context`` records preceding the divergence (necessarily identical
    on both sides) are attached for orientation.  A strict prefix
    relation is reported as a ``length`` divergence at the shorter
    stream's end.
    """
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            return Divergence(
                index=index,
                a_line=a[index],
                b_line=b[index],
                context=list(a[max(0, index - context):index]),
                changed_fields=_changed_fields(a[index], b[index]),
                a_total=len(a),
                b_total=len(b),
            )
    if len(a) != len(b):
        longer = a if len(a) > len(b) else b
        return Divergence(
            index=limit,
            a_line=a[limit] if len(a) > limit else None,
            b_line=b[limit] if len(b) > limit else None,
            context=list(longer[max(0, limit - context):limit]),
            a_total=len(a),
            b_total=len(b),
        )
    return None


def diff_lines(a_text: str, b_text: str,
               context: int = 3) -> Optional[Divergence]:
    """Diff two JSONL documents held in memory (blank lines ignored)."""
    a = [line for line in a_text.splitlines() if line.strip()]
    b = [line for line in b_text.splitlines() if line.strip()]
    return first_divergence(a, b, context=context)


def diff_files(a_path: Union[str, Path], b_path: Union[str, Path],
               context: int = 3) -> Optional[Divergence]:
    """Diff two JSONL files; None means byte-equivalent record streams."""
    texts = []
    for path in (a_path, b_path):
        try:
            texts.append(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read trace {path}: {exc}") from exc
    return diff_lines(texts[0], texts[1], context=context)


def _clip(line: Optional[str], width: int = 160) -> str:
    if line is None:
        return "<absent: stream ended>"
    return line if len(line) <= width else line[:width - 3] + "..."


def format_divergence(divergence: Optional[Divergence],
                      a_name: str = "A", b_name: str = "B") -> str:
    """Human-readable rendering of a divergence (or of agreement)."""
    if divergence is None:
        return "streams are identical"
    lines = [
        f"first divergence at record {divergence.index} "
        f"({a_name}: {divergence.a_total} records, "
        f"{b_name}: {divergence.b_total} records)",
    ]
    if divergence.context:
        lines.append("aligned context before divergence:")
        for offset, record in enumerate(divergence.context):
            index = divergence.index - len(divergence.context) + offset
            lines.append(f"  [{index}] {_clip(record)}")
    lines.append(f"- {a_name}[{divergence.index}]: "
                 f"{_clip(divergence.a_line)}")
    lines.append(f"+ {b_name}[{divergence.index}]: "
                 f"{_clip(divergence.b_line)}")
    if divergence.changed_fields:
        lines.append("changed fields:")
        for key, change in divergence.changed_fields.items():
            lines.append(f"  {key}: {change['a']!r} -> {change['b']!r}")
    return "\n".join(lines)
