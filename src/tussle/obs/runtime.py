"""The active observability context and its installation machinery.

Instrumented subsystems ask :func:`current` for the active
:class:`ObsContext` when they are constructed (or, for free functions,
when they are called) and cache ``None`` for every disabled facility, so
a run without :func:`observe` pays a single ``is not None`` test per
hook.  The default context is fully disabled: a :class:`NullTracer`, a
:class:`NullMetrics` and a :class:`NullProfiler`.

The context is process-global and not thread-safe — the simulation
stack is single-threaded by design (see DESIGN.md, "No hidden
globals": *observation* is the one sanctioned global because it must
reach code the caller does not construct directly, and it can never
influence results).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import Metrics, NullMetrics
from .profiler import NullProfiler, Profiler
from .tracer import NullTracer, Tracer

__all__ = ["ObsContext", "current", "observe"]


class ObsContext:
    """One installed (tracer, metrics, profiler) triple."""

    __slots__ = ("tracer", "metrics", "profiler")

    def __init__(self, tracer: Tracer, metrics: Metrics, profiler: Profiler):
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler

    @property
    def active(self) -> bool:
        """True when any facility is enabled."""
        return (self.tracer.enabled or self.metrics.enabled
                or self.profiler.enabled)


_DISABLED = ObsContext(NullTracer(), NullMetrics(), NullProfiler())
_current = _DISABLED


def current() -> ObsContext:
    """The active context (the disabled default unless inside observe())."""
    return _current


@contextmanager
def observe(
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    profiler: Optional[Profiler] = None,
) -> Iterator[ObsContext]:
    """Install an observability context for the enclosed block.

    Omitted facilities stay disabled.  Objects built *inside* the block
    pick the context up at construction time; the previous context is
    restored on exit, even on error.

    >>> from tussle.obs import Tracer, observe
    >>> with observe(tracer=Tracer()) as ctx:
    ...     pass  # build and run simulations here
    """
    global _current
    context = ObsContext(
        tracer if tracer is not None else _DISABLED.tracer,
        metrics if metrics is not None else _DISABLED.metrics,
        profiler if profiler is not None else _DISABLED.profiler,
    )
    previous = _current
    _current = context
    try:
        yield context
    finally:
        _current = previous
