"""Command-line interface: ``python -m tussle.obs``.

Subcommands
-----------
``report <trace.jsonl>``
    Aggregate a JSONL trace (written by ``python -m tussle run --trace``
    or ``Tracer.write_jsonl``) into a per-subsystem time breakdown, an
    event-rate table, and the top-N hottest engine callbacks.
    ``--format json`` emits the same aggregates machine-readably;
    ``--tolerant`` salvages damaged/truncated files into a partial
    report with problems listed instead of a hard error.
``sweep-report <telemetry.jsonl>``
    Summarize a sweep telemetry stream (deterministic channel plus its
    ``.wall.jsonl`` sibling when present): totals, cache-hit rate,
    per-worker utilization, stragglers, and retry storms.
``diff <a.jsonl> <b.jsonl>``
    Compare two deterministic JSONL streams (traces or telemetry) and
    report the first divergent line with aligned context and per-field
    changes.  Exits 0 when identical, 1 on divergence.
``perf [--check]``
    Inspect the committed perf-history ledger
    (``benchmarks/history.json``).  ``--ingest`` folds fresh
    ``benchmarks/results/bench_*.json`` records into the ledger;
    ``--check`` compares fresh results against ledger history and exits
    non-zero on a blocking wall-clock regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..errors import ObservabilityError
from .diff import diff_files, format_divergence
from .report import build_report, build_sweep_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tussle.obs",
        description="Analyze tussle observability traces.",
    )
    subparsers = parser.add_subparsers(dest="command")

    report_parser = subparsers.add_parser(
        "report", help="summarize a JSONL trace file")
    report_parser.add_argument("trace", metavar="TRACE.JSONL",
                               help="trace file to analyze")
    report_parser.add_argument("--top", type=int, default=10,
                               help="callbacks to list (default 10)")
    report_parser.add_argument("--format", choices=("text", "json"),
                               default="text")
    report_parser.add_argument(
        "--tolerant", action="store_true",
        help="salvage damaged/mixed-schema files into a partial report")

    sweep_parser = subparsers.add_parser(
        "sweep-report", help="summarize a sweep telemetry stream")
    sweep_parser.add_argument(
        "telemetry", metavar="TELEMETRY.JSONL",
        help="deterministic-channel file from tussle sweep --telemetry")
    sweep_parser.add_argument("--top", type=int, default=5,
                              help="stragglers to list (default 5)")
    sweep_parser.add_argument("--format", choices=("text", "json"),
                              default="text")

    diff_parser = subparsers.add_parser(
        "diff", help="find the first divergence between two JSONL streams")
    diff_parser.add_argument("a", metavar="A.JSONL")
    diff_parser.add_argument("b", metavar="B.JSONL")
    diff_parser.add_argument("--context", type=int, default=3,
                             help="aligned lines shown before the "
                                  "divergence (default 3)")
    diff_parser.add_argument("--format", choices=("text", "json"),
                             default="text")

    perf_parser = subparsers.add_parser(
        "perf", help="inspect the perf-history ledger")
    perf_parser.add_argument(
        "--history", default="benchmarks/history.json", metavar="PATH",
        help="ledger file (default benchmarks/history.json)")
    perf_parser.add_argument(
        "--results", default="benchmarks/results", metavar="DIR",
        help="fresh bench_*.json directory (default benchmarks/results)")
    perf_parser.add_argument(
        "--ingest", action="store_true",
        help="fold fresh results into the ledger and rewrite it")
    perf_parser.add_argument(
        "--check", action="store_true",
        help="compare fresh results against history; exit non-zero on "
             "a blocking wall-clock regression")
    perf_parser.add_argument(
        "--threshold", type=float, default=None, metavar="FACTOR",
        help="regression factor over the historical best (default 3.0)")
    return parser


def _command_report(args: argparse.Namespace) -> int:
    try:
        report = build_report(args.trace, strict=not args.tolerant)
    except ObservabilityError as exc:
        print(f"tussle.obs: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(args.top), indent=2, sort_keys=True))
    else:
        print(report.format(args.top))
    return 0


def _command_sweep_report(args: argparse.Namespace) -> int:
    try:
        report = build_sweep_report(args.telemetry)
    except ObservabilityError as exc:
        print(f"tussle.obs: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(args.top), indent=2, sort_keys=True))
    else:
        print(report.format(args.top))
    return 0


def _command_diff(args: argparse.Namespace) -> int:
    try:
        divergence = diff_files(args.a, args.b, context=args.context)
    except ObservabilityError as exc:
        print(f"tussle.obs: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            divergence.to_dict() if divergence is not None else None,
            indent=2, sort_keys=True))
    elif divergence is None:
        print(f"identical: {args.a} == {args.b}")
    else:
        print(format_divergence(divergence, args.a, args.b))
    return 0 if divergence is None else 1


def _command_perf(args: argparse.Namespace) -> int:
    from ..errors import TussleError
    from . import perfdb

    threshold = (args.threshold if args.threshold is not None
                 else perfdb.DEFAULT_THRESHOLD)
    try:
        history = perfdb.load_history(args.history)
        if args.ingest or args.check:
            results = perfdb.load_results(args.results)
        if args.ingest:
            ingested = perfdb.ingest(history, results)
            perfdb.write_history(args.history, history)
            print(f"ingested {len(ingested)} benchmark(s) into "
                  f"{args.history}: {', '.join(ingested)}")
        if args.check:
            findings, ok = perfdb.check(history, results,
                                        threshold=threshold)
            for finding in findings:
                tag = "REGRESSION" if finding.blocking else "note"
                print(f"{tag}: {finding.bench_id}: {finding.message}")
            verdict = "ok" if ok else "REGRESSED"
            print(f"perf check vs {args.history}: {verdict} "
                  f"({len(results)} fresh result(s), "
                  f"threshold x{threshold:g})")
            return 0 if ok else 1
    except TussleError as exc:
        print(f"tussle.obs: {exc}", file=sys.stderr)
        return 2
    if not args.ingest and not args.check:
        benchmarks = history.get("benchmarks", {})
        if not benchmarks:
            print(f"{args.history}: empty ledger")
            return 0
        print(f"{args.history}: {len(benchmarks)} benchmark(s)")
        for bench_id in sorted(benchmarks):
            summary = perfdb.trend(history, bench_id)
            latest, best = summary["latest"], summary["best"]
            wall = ("no wall data" if latest is None
                    else f"latest {latest:.4f}s, best {best:.4f}s, "
                         f"{summary['direction']}")
            print(f"  {bench_id}: {summary['runs']} run(s), {wall}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "report":
        return _command_report(args)
    if args.command == "sweep-report":
        return _command_sweep_report(args)
    if args.command == "diff":
        return _command_diff(args)
    if args.command == "perf":
        return _command_perf(args)
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
