"""Command-line interface: ``python -m tussle.obs``.

Subcommands
-----------
``report <trace.jsonl>``
    Aggregate a JSONL trace (written by ``python -m tussle run --trace``
    or ``Tracer.write_jsonl``) into a per-subsystem time breakdown, an
    event-rate table, and the top-N hottest engine callbacks.
    ``--format json`` emits the same aggregates machine-readably.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..errors import ObservabilityError
from .report import build_report

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tussle.obs",
        description="Analyze tussle observability traces.",
    )
    subparsers = parser.add_subparsers(dest="command")

    report_parser = subparsers.add_parser(
        "report", help="summarize a JSONL trace file")
    report_parser.add_argument("trace", metavar="TRACE.JSONL",
                               help="trace file to analyze")
    report_parser.add_argument("--top", type=int, default=10,
                               help="callbacks to list (default 10)")
    report_parser.add_argument("--format", choices=("text", "json"),
                               default="text")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command != "report":
        parser.print_help()
        return 0
    try:
        report = build_report(args.trace)
    except ObservabilityError as exc:
        print(f"tussle.obs: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(args.top), indent=2, sort_keys=True))
    else:
        print(report.format(args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
