"""Competition metrics and entry/exit dynamics.

The paper's economics tussle turns on how healthy competition is: "The
probable outcome of this tussle depends strongly on whether one perceives
competition as currently healthy in the Internet, or eroding to dangerous
levels" (§V-A-2). These metrics let experiments report competition level
as a number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import MarketError

__all__ = [
    "herfindahl_index",
    "effective_competitors",
    "lerner_index",
    "CompetitionReport",
    "competition_report",
]


def herfindahl_index(shares: Sequence[float]) -> float:
    """Herfindahl–Hirschman index of market concentration.

    Input shares must sum to (approximately) 1 over active firms; returns
    a value in (0, 1]: 1 = monopoly, 1/n = n symmetric competitors.
    """
    active = [s for s in shares if s > 0]
    if not active:
        raise MarketError("no active market shares")
    total = sum(active)
    if total <= 0:
        raise MarketError("shares must sum to a positive value")
    normalized = [s / total for s in active]
    return sum(s * s for s in normalized)


def effective_competitors(shares: Sequence[float]) -> float:
    """Inverse HHI: the 'numbers-equivalent' count of competitors."""
    return 1.0 / herfindahl_index(shares)


def lerner_index(price: float, marginal_cost: float) -> float:
    """Lerner index of market power: (P - MC) / P, clamped to [0, 1].

    0 = perfectly competitive pricing; approaching 1 = monopoly pricing.
    """
    if price <= 0:
        raise MarketError(f"price must be positive, got {price}")
    return max(0.0, min(1.0, (price - marginal_cost) / price))


@dataclass
class CompetitionReport:
    """Snapshot of how competitive a market is."""

    hhi: float
    effective_competitors: float
    mean_lerner: float

    @property
    def healthy(self) -> bool:
        """Rule of thumb: at least ~3 effective competitors and modest margins.

        (US antitrust practice treats HHI > 0.25 as highly concentrated;
        we use the same threshold.)
        """
        return self.hhi <= 0.25 and self.mean_lerner <= 0.5


def competition_report(
    shares: Mapping[str, float],
    prices: Mapping[str, float],
    marginal_costs: Mapping[str, float],
) -> CompetitionReport:
    """Build a :class:`CompetitionReport` from per-provider observations."""
    share_values = [s for s in shares.values() if s > 0]
    if not share_values:
        raise MarketError("no provider holds any share")
    hhi = herfindahl_index(share_values)
    lerners = []
    for name, share in shares.items():
        if share <= 0:
            continue
        price = prices.get(name)
        cost = marginal_costs.get(name)
        if price is None or cost is None or price <= 0:
            continue
        lerners.append(lerner_index(price, cost))
    mean_lerner = sum(lerners) / len(lerners) if lerners else 0.0
    return CompetitionReport(
        hhi=hhi,
        effective_competitors=1.0 / hhi,
        mean_lerner=mean_lerner,
    )
