"""The access-market simulation: providers, consumers, rounds.

Each round of :class:`Market`:

1. providers adjust prices per their :class:`~tussle.econ.pricing.PricingStrategy`;
2. every consumer evaluates each provider's *effective* offer — price for
   their visible behaviour, the value they would get (can they run their
   server openly? must they tunnel?) — and switches when the surplus gain
   beats their switching cost;
3. revenue, profit, surplus and churn are recorded.

This is the substrate for E01 (switching cost sweep), E02 (value pricing
vs tunnelling) and E03 (facility competition), each of which configures
consumers/providers differently and reads the recorded series.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MarketError
from ..obs.runtime import current as _obs_current
from .agents import Consumer, Provider
from .decision import TIE_EPSILON, amount_paid, effective_offer
from .pricing import PricingStrategy

__all__ = ["MarketRound", "Market"]


@dataclass
class MarketRound:
    """Per-round aggregate record."""

    index: int
    mean_price: float
    switches: int
    consumer_surplus: float
    provider_profit: float
    tunnelling_consumers: int
    shares: Dict[str, float] = field(default_factory=dict)


class Market:
    """A round-based access market.

    Parameters
    ----------
    providers, consumers:
        The participating agents. Consumers with ``provider=None`` pick
        their best initial provider in round 0 at zero switching cost.
    strategies:
        Optional per-provider pricing strategies.
    server_prohibited_without_tier:
        When True, tiered providers require the business rate to run a
        server *openly*; non-tiered providers allow servers at the basic
        rate. (The §V-A-2 acceptable-use policy.)
    preference_noise:
        Amplitude of per-(consumer, provider) idiosyncratic taste, drawn
        uniformly on [-noise, +noise] once at construction. Models product
        differentiation; without it, identical prices send every consumer
        to the alphabetically-first provider.
    seed:
        Seeds tie-breaking and preference noise.
    """

    def __init__(
        self,
        providers: Sequence[Provider],
        consumers: Sequence[Consumer],
        strategies: Optional[Dict[str, PricingStrategy]] = None,
        server_prohibited_without_tier: bool = True,
        preference_noise: float = 0.0,
        seed: int = 0,
    ):
        if not providers:
            raise MarketError("market needs at least one provider")
        names = [p.name for p in providers]
        if len(set(names)) != len(names):
            raise MarketError("provider names must be unique")
        self.providers: Dict[str, Provider] = {p.name: p for p in providers}
        self.consumers: List[Consumer] = list(consumers)
        self.strategies = dict(strategies or {})
        self.server_prohibited_without_tier = server_prohibited_without_tier
        self.rng = random.Random(seed)
        self._taste: Dict[Tuple[str, str], float] = {}
        if preference_noise > 0:
            noise_rng = random.Random(seed + 1)
            for consumer in self.consumers:
                for name in sorted(self.providers):
                    self._taste[(consumer.name, name)] = noise_rng.uniform(
                        -preference_noise, preference_noise
                    )
        self.history: List[MarketRound] = []
        # Offers depend only on static consumer attributes and the
        # provider's pricing signature, so each provider's per-consumer
        # offer column is cached and recomputed only when its prices (or
        # detection posture) actually change that round.
        self._offer_cache: Dict[str, List[Tuple[float, bool]]] = {}
        self._offer_signatures: Dict[str, Tuple] = {}
        ctx = _obs_current()
        self._trace = ctx.tracer if ctx.tracer.enabled else None
        if ctx.metrics.enabled:
            scope = ctx.metrics.scope("econ.market")
            self._c_rounds = scope.counter("clearing_rounds")
            self._c_switches = scope.counter("switches")
            self._c_pricing = scope.counter("pricing_adjustments")
            self._h_price = scope.histogram("mean_price")
        else:
            self._c_rounds = None
            self._c_switches = None
            self._c_pricing = None
            self._h_price = None
        self._initial_assignment()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _initial_assignment(self) -> None:
        """Round-0 free choice: everyone picks their best offer."""
        for index, consumer in enumerate(self.consumers):
            if consumer.provider is not None:
                self.providers[consumer.provider].subscribers.add(consumer.name)
                continue
            best, _, _, _ = self._best_offer(index, consumer, free_switch=True)
            if best is not None:
                consumer.provider = best
                self.providers[best].subscribers.add(consumer.name)

    # ------------------------------------------------------------------
    # Offers
    # ------------------------------------------------------------------
    def _evaluate_offer(self, consumer: Consumer, provider: Provider) -> Tuple[float, bool]:
        """Net per-round surplus at ``provider`` and whether they'd tunnel.

        Delegates to the pure decision rule in :mod:`tussle.econ.decision`
        shared with the vectorized backend.
        """
        return effective_offer(
            wtp=consumer.wtp,
            values_server=consumer.values_server(),
            server_value=consumer.server_value,
            can_tunnel=consumer.can_tunnel,
            tunnel_cost=consumer.tunnel_cost,
            price=provider.price,
            business_price=provider.business_price,  # type: ignore[arg-type]
            tiered=provider.tiered,
            detects_tunnels=provider.detects_tunnels,
            server_prohibited_without_tier=self.server_prohibited_without_tier,
        )

    @staticmethod
    def _pricing_signature(provider: Provider) -> Tuple:
        """Everything the offer depends on that can change between rounds."""
        return (provider.price, provider.business_price,
                provider.detects_tunnels)

    def _provider_offers(self, name: str) -> List[Tuple[float, bool]]:
        """Per-consumer offer column for one provider, cached.

        Consumer attributes entering the offer (wtp, segment, tunnel
        repertoire) are static, so the column stays valid until the
        provider's pricing signature changes — providers whose price did
        not move this round cost nothing to re-evaluate.
        """
        provider = self.providers[name]
        signature = self._pricing_signature(provider)
        if self._offer_signatures.get(name) != signature:
            self._offer_cache[name] = [
                self._evaluate_offer(consumer, provider)
                for consumer in self.consumers
            ]
            self._offer_signatures[name] = signature
        return self._offer_cache[name]

    def _best_offer(self, index: int, consumer: Consumer,
                    free_switch: bool = False
                    ) -> Tuple[Optional[str], float, float, bool]:
        """Best provider for this consumer net of switching cost.

        Returns ``(name, net_surplus, raw_surplus, tunnels)`` where the
        raw surplus/tunnel flag describe the chosen provider *before*
        taste and switching-cost adjustments — exactly what the round
        accounting needs, so the winning offer is never recomputed.
        """
        current = consumer.provider
        best_name: Optional[str] = None
        best_surplus = float("-inf")
        best_raw = 0.0
        best_tunnels = False
        for name in sorted(self.providers):
            raw, tunnels = self._provider_offers(name)[index]
            surplus = raw
            surplus += self._taste.get((consumer.name, name), 0.0)
            if not free_switch and current is not None and name != current:
                surplus -= consumer.switching_cost
            if surplus > best_surplus + TIE_EPSILON:
                best_surplus = surplus
                best_name = name
                best_raw = raw
                best_tunnels = tunnels
        return best_name, best_surplus, best_raw, best_tunnels

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def step(self) -> MarketRound:
        """Run one market round and return its record."""
        index = len(self.history)
        span = (self._trace.begin("econ.market", "round", float(index))
                if self._trace is not None else None)
        # 1. Providers adjust prices.
        prices = {name: p.price for name, p in self.providers.items()}
        shares = {
            name: p.market_share(len(self.consumers))
            for name, p in self.providers.items()
        }
        pricing_moves = 0
        for name, provider in sorted(self.providers.items()):
            strategy = self.strategies.get(name)
            if strategy is not None:
                strategy.adjust(provider, prices, shares[name])
                pricing_moves += 1

        # 2. Consumers re-evaluate and possibly switch.
        switches = 0
        total_surplus = 0.0
        revenue: Dict[str, float] = {name: 0.0 for name in self.providers}
        tunnelling = 0
        for consumer_index, consumer in enumerate(self.consumers):
            best_name, _, surplus, tunnels = self._best_offer(
                consumer_index, consumer)
            if best_name is None:
                continue
            if consumer.provider != best_name:
                if consumer.provider is not None:
                    self.providers[consumer.provider].subscribers.discard(consumer.name)
                    consumer.surplus -= consumer.switching_cost
                    total_surplus -= consumer.switching_cost
                    consumer.switches += 1
                    switches += 1
                consumer.provider = best_name
                self.providers[best_name].subscribers.add(consumer.name)
            provider = self.providers[consumer.provider]
            consumer.tunnelling = tunnels
            if tunnels:
                tunnelling += 1
            # Leave if even the best offer is negative-surplus.
            if surplus < 0:
                provider.subscribers.discard(consumer.name)
                consumer.provider = None
                continue
            consumer.surplus += surplus
            total_surplus += surplus
            paid = self._amount_paid(consumer, provider, tunnels)
            revenue[provider.name] += paid

        # 3. Accounting.
        for name, provider in self.providers.items():
            provider.record_round(revenue[name], len(provider.subscribers))
        record = MarketRound(
            index=index,
            mean_price=sum(p.price for p in self.providers.values()) / len(self.providers),
            switches=switches,
            consumer_surplus=total_surplus,
            provider_profit=sum(
                revenue[name] - p.unit_cost * len(p.subscribers)
                for name, p in self.providers.items()
            ),
            tunnelling_consumers=tunnelling,
            shares={
                name: p.market_share(len(self.consumers))
                for name, p in self.providers.items()
            },
        )
        self.history.append(record)
        if self._c_rounds is not None:
            self._c_rounds.inc()
            self._c_switches.inc(switches)
            self._c_pricing.inc(pricing_moves)
            self._h_price.observe(record.mean_price)
        if span is not None:
            span.end(float(index + 1), switches=switches,
                     tunnelling=tunnelling, pricing_moves=pricing_moves,
                     mean_price=record.mean_price)
        return record

    def run(self, rounds: int) -> List[MarketRound]:
        for _ in range(rounds):
            self.step()
        return self.history

    def _amount_paid(self, consumer: Consumer, provider: Provider, tunnels: bool) -> float:
        return amount_paid(
            wtp=consumer.wtp,
            values_server=consumer.values_server(),
            server_value=consumer.server_value,
            tunnels=tunnels,
            price=provider.price,
            business_price=provider.business_price,  # type: ignore[arg-type]
            tiered=provider.tiered,
            server_prohibited_without_tier=self.server_prohibited_without_tier,
        )

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def total_switches(self) -> int:
        return sum(r.switches for r in self.history)

    def mean_price(self) -> float:
        if not self.history:
            return 0.0
        return self.history[-1].mean_price

    def total_consumer_surplus(self) -> float:
        return sum(r.consumer_surplus for r in self.history)

    def total_provider_profit(self) -> float:
        return sum(r.provider_profit for r in self.history)

    def subscribed_fraction(self) -> float:
        if not self.consumers:
            return 0.0
        subscribed = sum(1 for c in self.consumers if c.provider is not None)
        return subscribed / len(self.consumers)
