"""Value flow: payment mechanisms and their viability.

"Whatever the compensation, recognize that it must flow, just as much as
data must flow... If this 'value flow' requires a protocol, design it.
(There is an interesting case study in the rise and fall of
micro-payments, the success of the traditional credit card companies for
Internet payments, and the emergence of PayPal and similar schemes.)"
(§IV-C)

This module models payment mechanisms by their cost structure and computes
which mechanism survives for a given transaction-size distribution — the
micropayments case study as arithmetic. It also provides
:class:`ValueFlowLedger`, the value-conservation substrate used by the
source-routing payment experiments (E04) and mutual-aid accounting
(the Napster example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MarketError

__all__ = [
    "PaymentMechanism",
    "MICROPAYMENT",
    "CREDIT_CARD",
    "AGGREGATOR",
    "MUTUAL_AID",
    "viable_mechanisms",
    "cheapest_mechanism",
    "ValueFlowLedger",
]


@dataclass(frozen=True)
class PaymentMechanism:
    """A way of moving value, characterized by its cost structure.

    Attributes
    ----------
    fixed_fee:
        Per-transaction fee in currency units.
    proportional_fee:
        Fraction of the transaction amount taken as fee.
    min_transaction:
        Smallest amount the mechanism will process.
    monetary:
        False for in-kind schemes (the Napster "mutual aid" example).
    """

    name: str
    fixed_fee: float
    proportional_fee: float
    min_transaction: float = 0.0
    monetary: bool = True

    def fee(self, amount: float) -> float:
        if amount < 0:
            raise MarketError(f"negative transaction amount {amount}")
        return self.fixed_fee + self.proportional_fee * amount

    def net(self, amount: float) -> float:
        """What the payee receives."""
        return amount - self.fee(amount)

    def viable_for(self, amount: float) -> bool:
        """A mechanism is viable when fees don't eat the transaction."""
        if amount < self.min_transaction:
            return False
        return self.net(amount) > 0


#: The paper's case-study mechanisms, with stylized cost structures.
MICROPAYMENT = PaymentMechanism("micropayment", fixed_fee=0.002,
                                proportional_fee=0.01, min_transaction=0.0)
CREDIT_CARD = PaymentMechanism("credit-card", fixed_fee=0.30,
                               proportional_fee=0.029, min_transaction=0.5)
AGGREGATOR = PaymentMechanism("aggregator", fixed_fee=0.05,
                              proportional_fee=0.02, min_transaction=0.01)
MUTUAL_AID = PaymentMechanism("mutual-aid", fixed_fee=0.0,
                              proportional_fee=0.0, monetary=False)


def viable_mechanisms(
    amount: float,
    mechanisms: Optional[Sequence[PaymentMechanism]] = None,
) -> List[PaymentMechanism]:
    """Mechanisms viable for a transaction of ``amount``."""
    candidates = mechanisms or (MICROPAYMENT, CREDIT_CARD, AGGREGATOR, MUTUAL_AID)
    return [m for m in candidates if m.viable_for(amount)]


def cheapest_mechanism(
    amount: float,
    mechanisms: Optional[Sequence[PaymentMechanism]] = None,
    monetary_only: bool = True,
) -> Optional[PaymentMechanism]:
    """The viable mechanism with the lowest fee, or None."""
    viable = viable_mechanisms(amount, mechanisms)
    if monetary_only:
        viable = [m for m in viable if m.monetary]
    if not viable:
        return None
    return min(viable, key=lambda m: (m.fee(amount), m.name))


class ValueFlowLedger:
    """Double-entry ledger: value must flow, and must balance.

    Every transfer debits the payer and credits the payee minus fees; fees
    accrue to the mechanism operator's account. The class invariant —
    total created value equals zero (it only moves) — is enforced and is a
    target of the property-based test suite.
    """

    FEE_ACCOUNT = "__fees__"

    def __init__(self) -> None:
        self._balances: Dict[str, float] = {}
        self.transfers: List[Tuple[str, str, float, str]] = []

    def balance(self, party: str) -> float:
        return self._balances.get(party, 0.0)

    def transfer(
        self,
        payer: str,
        payee: str,
        amount: float,
        mechanism: PaymentMechanism = CREDIT_CARD,
    ) -> float:
        """Move ``amount`` from payer to payee; returns the payee's net.

        Raises :class:`MarketError` if the mechanism is not viable for the
        amount — value that cannot flow does not flow, which is exactly the
        failure mode the QoS post-mortem identifies.
        """
        if payer == payee:
            raise MarketError("payer and payee must differ")
        if not mechanism.viable_for(amount):
            raise MarketError(
                f"{mechanism.name} not viable for amount {amount} "
                f"(fee {mechanism.fee(amount):.4f})"
            )
        fee = mechanism.fee(amount)
        net = amount - fee
        self._balances[payer] = self.balance(payer) - amount
        self._balances[payee] = self.balance(payee) + net
        self._balances[self.FEE_ACCOUNT] = self.balance(self.FEE_ACCOUNT) + fee
        self.transfers.append((payer, payee, amount, mechanism.name))
        return net

    def total(self) -> float:
        """Sum of all balances; always ~0 (conservation of value)."""
        return sum(self._balances.values())

    def volume(self) -> float:
        return sum(t[2] for t in self.transfers)

    def parties(self) -> List[str]:
        return sorted(k for k in self._balances if k != self.FEE_ACCOUNT)
