"""Economic agents: consumers and providers.

"Providers tussle as they compete, and consumers tussle with providers to
get the service they want at a low price" (§V-A). Consumers here carry the
attributes every economics experiment varies: willingness to pay, segment
(server-runner or not), switching cost (set by the addressing substrate in
E01), and their repertoire of counter-moves (switch provider, tunnel).
Providers carry a price schedule, unit cost and profit ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..errors import MarketError
from .demand import Segment

__all__ = ["Consumer", "Provider"]


@dataclass
class Consumer:
    """A consumer in the access market.

    Attributes
    ----------
    wtp:
        Willingness to pay per round for basic service.
    segment:
        BASIC or BUSINESS; business consumers want to run a server and
        get extra value ``server_value`` per round from doing so.
    switching_cost:
        One-time cost to change providers (E01 ties this to addressing).
    can_tunnel:
        Whether this consumer knows how to tunnel around usage
        restrictions (§V-A-2's counter-move); tunnelling costs
        ``tunnel_cost`` per round in hassle.
    """

    name: str
    wtp: float
    segment: Segment = Segment.BASIC
    switching_cost: float = 0.0
    server_value: float = 0.0
    can_tunnel: bool = False
    tunnel_cost: float = 2.0
    provider: Optional[str] = None
    tunnelling: bool = False
    switches: int = 0
    surplus: float = 0.0

    def values_server(self) -> bool:
        return self.segment is Segment.BUSINESS and self.server_value > 0

    def round_value(self, runs_server: bool) -> float:
        """Gross value this consumer derives in one round."""
        value = self.wtp
        if runs_server and self.values_server():
            value += self.server_value
        return value


@dataclass
class Provider:
    """An access provider (ISP).

    Attributes
    ----------
    price:
        Current price for basic service per round.
    business_price:
        Price for the "business" tier that permits servers (value
        pricing); ``None`` means no tiering (servers permitted at the
        basic rate).
    unit_cost:
        Marginal cost of serving one consumer per round.
    detects_tunnels:
        Whether the provider's classifier catches tunnelled servers (the
        escalation step beyond port-based detection).
    """

    name: str
    price: float
    business_price: Optional[float] = None
    unit_cost: float = 5.0
    detects_tunnels: bool = False
    subscribers: Set[str] = field(default_factory=set)
    profit: float = 0.0
    revenue_history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.price < 0:
            raise MarketError(f"negative price {self.price}")
        if self.business_price is not None and self.business_price < self.price:
            raise MarketError("business tier cannot undercut the basic tier")

    @property
    def tiered(self) -> bool:
        """Does this provider practice value pricing?"""
        return self.business_price is not None

    def price_for(self, consumer: Consumer, runs_server_openly: bool) -> float:
        """The price this consumer would pay given their visible behaviour."""
        if self.tiered and runs_server_openly:
            return self.business_price  # type: ignore[return-value]
        return self.price

    def record_round(self, revenue: float, n_subscribers: int) -> None:
        cost = self.unit_cost * n_subscribers
        self.profit += revenue - cost
        self.revenue_history.append(revenue)

    def market_share(self, total_consumers: int) -> float:
        if total_consumers <= 0:
            return 0.0
        return len(self.subscribers) / total_consumers
