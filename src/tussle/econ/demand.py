"""Demand side: willingness to pay and consumer segments.

Value pricing (§V-A-2) works by dividing "customers into classes based on
their willingness to pay" — so the demand model distinguishes segments
(basic vs business/server-running households, mirroring the paper's
residential-broadband example) and draws per-consumer willingness to pay
from seeded distributions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..errors import MarketError

__all__ = ["Segment", "WtpDistribution", "UniformWtp", "LogNormalWtp", "DemandCurve"]


class Segment(Enum):
    """Consumer segments used by value-pricing strategies.

    BASIC consumers browse; BUSINESS consumers run servers at home (the
    behaviour the paper's acceptable-use policies prohibit without a
    higher "business" rate) and have higher willingness to pay.
    """

    BASIC = "basic"
    BUSINESS = "business"


class WtpDistribution:
    """Interface: draw one willingness-to-pay value."""

    def sample(self, rng: random.Random) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class UniformWtp(WtpDistribution):
    """Uniform willingness to pay on [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise MarketError(f"invalid WTP range [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class LogNormalWtp(WtpDistribution):
    """Log-normal willingness to pay (heavy right tail of rich customers)."""

    mu: float = 3.0
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise MarketError(f"sigma must be positive, got {self.sigma}")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)


#: Default per-segment distributions: business WTP dominates basic WTP.
DEFAULT_SEGMENT_WTP: Dict[Segment, WtpDistribution] = {
    Segment.BASIC: UniformWtp(10.0, 40.0),
    Segment.BUSINESS: UniformWtp(40.0, 120.0),
}


class DemandCurve:
    """Aggregate demand from a sampled population.

    Builds an empirical demand curve: ``quantity(price)`` is how many
    sampled consumers have WTP >= price. Supports revenue-maximizing price
    search, which monopoly pricing strategies use.
    """

    def __init__(
        self,
        n_consumers: int,
        distribution: Optional[WtpDistribution] = None,
        seed: int = 0,
    ):
        if n_consumers <= 0:
            raise MarketError(f"need at least one consumer, got {n_consumers}")
        rng = random.Random(seed)
        dist = distribution or UniformWtp(10.0, 100.0)
        self.wtps: List[float] = sorted(dist.sample(rng) for _ in range(n_consumers))

    def quantity(self, price: float) -> int:
        """Number of consumers willing to buy at ``price`` (binary search)."""
        lo, hi = 0, len(self.wtps)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.wtps[mid] < price:
                lo = mid + 1
            else:
                hi = mid
        return len(self.wtps) - lo

    def revenue(self, price: float) -> float:
        return price * self.quantity(price)

    def revenue_maximizing_price(self) -> float:
        """The WTP value that maximizes price x quantity."""
        best_price = 0.0
        best_revenue = -1.0
        for wtp in self.wtps:
            r = self.revenue(wtp)
            if r > best_revenue:
                best_revenue = r
                best_price = wtp
        return best_price

    def consumer_surplus(self, price: float) -> float:
        """Sum of (WTP - price) over consumers who buy."""
        return sum(w - price for w in self.wtps if w >= price)
