"""The pure consumer decision rule shared by every market backend.

:class:`~tussle.econ.market.Market` (the scalar reference) and
:class:`~tussle.scale.vmarket.VectorMarket` (the NumPy backend) must make
*identical* choices — the parity harness in :mod:`tussle.scale.parity`
asserts their round records match bit for bit.  That is only tractable if
the decision rule lives in one place, as pure functions of plain floats
with a documented operation order.  The vectorized kernels in
:mod:`tussle.scale.kernels` mirror these functions element-wise; any
change here must be reflected there (and the parity gate will catch a
mismatch).

Contract notes (load-bearing for bit-parity):

* Option order is ``[forgo, open-tier, tunnel]`` for a tiered provider
  under a server-prohibition policy, ``[forgo, with-server]`` otherwise;
  ties prefer the *earlier* option (``max`` keeps the first maximum), so
  a consumer indifferent between tunnelling and paying the tier pays the
  tier, and one indifferent between forgoing and acting forgoes.
* Float expressions keep Python's left-to-right association:
  ``(wtp + server_value) - price`` etc.  Reassociating them changes the
  low bits and breaks parity.
* Provider preference uses a strict ``> best + TIE_EPSILON`` update while
  scanning providers in sorted-name order, so equal-surplus ties resolve
  to the alphabetically-first provider and sub-epsilon improvements never
  trigger a switch.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["TIE_EPSILON", "effective_offer", "amount_paid"]

#: Surplus improvements at or below this never displace the current best
#: provider (and therefore never justify a switch).  Shared by the scalar
#: scan in ``Market._best_offer`` and the column scan in
#: ``tussle.scale.kernels.best_provider``.
TIE_EPSILON = 1e-12


def effective_offer(
    wtp: float,
    values_server: bool,
    server_value: float,
    can_tunnel: bool,
    tunnel_cost: float,
    price: float,
    business_price: float,
    tiered: bool,
    detects_tunnels: bool,
    server_prohibited_without_tier: bool,
) -> Tuple[float, bool]:
    """Net per-round surplus at a provider and whether the consumer tunnels.

    A server-running consumer weighs three postures: pay the business
    tier (run openly), tunnel (basic rate, hassle cost, works unless the
    provider detects tunnels), or forgo the server.
    """
    if not values_server:
        return wtp - price, False
    options = [(wtp - price, False)]  # forgo the server entirely
    if tiered and server_prohibited_without_tier:
        # Pay the business rate and run openly.
        options.append((wtp + server_value - business_price, False))
        # Tunnel around the restriction at the basic rate.
        if can_tunnel and not detects_tunnels:
            options.append((wtp + server_value - price - tunnel_cost, True))
    else:
        # Servers permitted at the basic rate.
        options.append((wtp + server_value - price, False))
    return max(options, key=lambda o: o[0])


def amount_paid(
    wtp: float,
    values_server: bool,
    server_value: float,
    tunnels: bool,
    price: float,
    business_price: float,
    tiered: bool,
    server_prohibited_without_tier: bool,
) -> float:
    """What the consumer actually pays given their (visible) behaviour.

    Openly running a server on a tiered provider means paying the tier;
    if the surplus calculus picked "forgo", they pay basic.  The choice
    is re-derived from the same expressions ``effective_offer`` uses, so
    the two functions never disagree about which posture won.
    """
    if not values_server:
        return price
    if tunnels:
        return price
    if tiered and server_prohibited_without_tier:
        open_surplus = wtp + server_value - business_price
        forgo_surplus = wtp - price
        if open_surplus >= forgo_surplus:
            return business_price
        return price
    return price
