"""Pricing strategies for providers.

"One of the standard ways to improve revenues is to find ways to divide
customers into classes based on their willingness to pay, and charge them
accordingly — what economists call value pricing" (§V-A-2). Strategies
here are provider policies that adjust prices each market round given what
the provider can observe (its share, competitors' prices, detected server
usage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import MarketError
from .agents import Provider

__all__ = [
    "PricingStrategy",
    "FlatPricing",
    "UndercutPricing",
    "MonopolyPricing",
    "ValuePricingStrategy",
]


class PricingStrategy:
    """Interface: adjust a provider's prices for the next round.

    ``observe`` receives the provider, all current market prices and the
    provider's current share; it mutates ``provider.price`` (and
    ``business_price`` for tiering strategies).
    """

    def adjust(
        self,
        provider: Provider,
        market_prices: Dict[str, float],
        own_share: float,
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class FlatPricing(PricingStrategy):
    """Never change the price (the passive baseline)."""

    def adjust(self, provider: Provider, market_prices: Dict[str, float],
               own_share: float) -> None:
        return None


@dataclass
class UndercutPricing(PricingStrategy):
    """Competitive pricing: undercut the cheapest rival, floored at cost.

    This is the "fear" dynamic: "The vector of fear is competition, which
    results when the consumer has choice" (§V-A). With several undercutters
    in a market, prices race toward marginal cost.
    """

    undercut_by: float = 1.0
    margin_floor: float = 0.5

    def adjust(self, provider: Provider, market_prices: Dict[str, float],
               own_share: float) -> None:
        rivals = [p for name, p in market_prices.items() if name != provider.name]
        if not rivals:
            return
        floor = provider.unit_cost + self.margin_floor
        target = min(rivals) - self.undercut_by
        provider.price = max(floor, target)
        if provider.business_price is not None:
            provider.business_price = max(provider.price, provider.business_price)


@dataclass
class MonopolyPricing(PricingStrategy):
    """Raise prices while share holds: the no-fear regime.

    "Many telephone company executives remember the good old monopoly
    days, with a comfortable regulated rate of return and no fear" (§V-C).
    Price creeps up each round unless share has collapsed, bounded by
    ``price_cap``.
    """

    creep: float = 1.0
    share_floor: float = 0.25
    price_cap: float = 200.0

    def adjust(self, provider: Provider, market_prices: Dict[str, float],
               own_share: float) -> None:
        if own_share >= self.share_floor:
            provider.price = min(self.price_cap, provider.price + self.creep)
        else:
            provider.price = max(provider.unit_cost, provider.price - self.creep)
        if provider.business_price is not None and provider.business_price < provider.price:
            provider.business_price = provider.price


@dataclass
class ValuePricingStrategy(PricingStrategy):
    """Maintain a business tier at a multiple of the basic price.

    The provider keeps (or introduces) a server-permitting tier priced at
    ``tier_multiple`` x basic, and otherwise delegates basic-price motion
    to ``base_strategy``.
    """

    tier_multiple: float = 2.5
    base_strategy: Optional[PricingStrategy] = None

    def __post_init__(self) -> None:
        if self.tier_multiple < 1.0:
            raise MarketError("business tier multiple must be >= 1")

    def adjust(self, provider: Provider, market_prices: Dict[str, float],
               own_share: float) -> None:
        if self.base_strategy is not None:
            self.base_strategy.adjust(provider, market_prices, own_share)
        provider.business_price = provider.price * self.tier_multiple
