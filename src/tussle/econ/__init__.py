"""Economics substrate: markets, pricing, competition, investment, payments.

Implements the agents and mechanisms behind the paper's economics tussle
space (§V-A): consumers and providers with conflicting interests, pricing
strategies (flat, undercutting, monopoly, value pricing), a round-based
access market, competition metrics, the fear-and-greed investment model,
the two-layer broadband facilities market and the value-flow machinery.
"""

from .agents import Consumer, Provider
from .demand import (
    DemandCurve,
    LogNormalWtp,
    Segment,
    UniformWtp,
    WtpDistribution,
)
from .pricing import (
    FlatPricing,
    MonopolyPricing,
    PricingStrategy,
    UndercutPricing,
    ValuePricingStrategy,
)
from .market import Market, MarketRound
from .competition import (
    CompetitionReport,
    competition_report,
    effective_competitors,
    herfindahl_index,
    lerner_index,
)
from .investment import (
    DeploymentChoice,
    InvestmentModel,
    QosFactorial,
    qos_deployment_game,
)
from .accesstech import (
    AccessRegime,
    Facility,
    build_access_market,
    build_service_providers,
)
from .payments import (
    AGGREGATOR,
    CREDIT_CARD,
    MICROPAYMENT,
    MUTUAL_AID,
    PaymentMechanism,
    ValueFlowLedger,
    cheapest_mechanism,
    viable_mechanisms,
)

__all__ = [
    "Consumer", "Provider",
    "DemandCurve", "LogNormalWtp", "Segment", "UniformWtp", "WtpDistribution",
    "FlatPricing", "MonopolyPricing", "PricingStrategy", "UndercutPricing",
    "ValuePricingStrategy",
    "Market", "MarketRound",
    "CompetitionReport", "competition_report", "effective_competitors",
    "herfindahl_index", "lerner_index",
    "DeploymentChoice", "InvestmentModel", "QosFactorial", "qos_deployment_game",
    "AccessRegime", "Facility", "build_access_market", "build_service_providers",
    "AGGREGATOR", "CREDIT_CARD", "MICROPAYMENT", "MUTUAL_AID",
    "PaymentMechanism", "ValueFlowLedger", "cheapest_mechanism", "viable_mechanisms",
]
