"""The fear-and-greed investment model (§V-A, §VII).

"A standard business saying is that the drivers of investment are fear and
greed... The vector of fear is competition, which results when the
consumer has choice."

The paper's QoS post-mortem (§VII) is a two-factor story:

* **greed** — open deployment pays only if (a) a value-transfer mechanism
  exists so the provider is "rewarded for making the investment", and
  (b) users can *route to* the deploying provider: "What was missing was
  routing, to allow the user to favor one ISP over another if that ISP
  honored the bits." Without routing choice, an open service reaches only
  the provider's captive access customers.
* **fear** — when users can choose providers, a rival offering a more
  attractive service steals customers; not deploying becomes costly.

A **closed** deployment (vertical integration) monetizes through the ISP's
own bundled applications at monopoly prices and needs neither factor —
"if they deploy QoS mechanisms but only turn them on for applications that
they sell... they can price it at monopoly prices" — but it is less
attractive to users than an open service, so under user choice it loses
customers to open rivals.

:class:`InvestmentModel` encodes these payoffs as a symmetric game among
identical ISPs; :func:`qos_deployment_game` finds the symmetric pure
equilibrium in each cell of the 2x2 factorial (E07). The paper's predicted
shape: *open* deployment appears only in the (value-flow, user-choice)
cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..errors import MarketError

__all__ = [
    "DeploymentChoice",
    "InvestmentModel",
    "QosFactorial",
    "qos_deployment_game",
    "MulticastModel",
    "MulticastCell",
    "multicast_deployment_game",
]


class DeploymentChoice(Enum):
    """What an ISP does with a new capability (QoS, multicast, ...)."""

    NO_DEPLOY = "no-deploy"
    DEPLOY_OPEN = "deploy-open"      # open end-to-end service
    DEPLOY_CLOSED = "deploy-closed"  # only for the ISP's own applications


#: How attractive each posture is to users exercising choice.
_ATTRACTIVENESS: Dict[DeploymentChoice, float] = {
    DeploymentChoice.NO_DEPLOY: 0.0,
    DeploymentChoice.DEPLOY_CLOSED: 1.0,
    DeploymentChoice.DEPLOY_OPEN: 2.0,
}


@dataclass
class InvestmentModel:
    """Payoffs of the deployment game under fear and greed.

    Parameters
    ----------
    deployment_cost:
        Up-front cost ("spend money to upgrade routers and for management
        and operations. So there is a real cost.").
    open_service_revenue:
        Per-round revenue of an open deployment when a value-flow
        mechanism exists and users can route to the provider.
    captive_fraction:
        Fraction of open revenue reachable *without* user routing choice
        (only the provider's own access customers can use the service).
    closed_service_revenue:
        Per-round revenue of a closed, vertically-integrated deployment
        (monopoly-priced bundled service; needs no open value flow).
    churn_revenue_per_attractiveness:
        Per-round revenue gained/lost per unit of attractiveness advantage
        over rivals, when users can choose — the fear term.
    horizon:
        Rounds over which revenue accrues.
    """

    deployment_cost: float = 100.0
    open_service_revenue: float = 20.0
    captive_fraction: float = 0.3
    closed_service_revenue: float = 35.0
    churn_revenue_per_attractiveness: float = 25.0
    horizon: int = 10

    def __post_init__(self) -> None:
        if not 0.0 <= self.captive_fraction <= 1.0:
            raise MarketError("captive_fraction must be in [0, 1]")
        if self.horizon <= 0:
            raise MarketError("horizon must be positive")

    # ------------------------------------------------------------------
    # Payoffs
    # ------------------------------------------------------------------
    def direct_revenue(
        self,
        choice: DeploymentChoice,
        value_flow_exists: bool,
        users_can_choose: bool,
    ) -> float:
        """Service revenue per round, before churn effects."""
        if choice is DeploymentChoice.DEPLOY_OPEN:
            if not value_flow_exists:
                return 0.0
            reach = 1.0 if users_can_choose else self.captive_fraction
            return self.open_service_revenue * reach
        if choice is DeploymentChoice.DEPLOY_CLOSED:
            return self.closed_service_revenue
        return 0.0

    def payoff(
        self,
        my_choice: DeploymentChoice,
        rivals_choice: DeploymentChoice,
        value_flow_exists: bool,
        users_can_choose: bool,
    ) -> float:
        """My total profit when rivals all play ``rivals_choice``."""
        revenue = self.direct_revenue(my_choice, value_flow_exists, users_can_choose)
        churn = 0.0
        if users_can_choose:
            advantage = _ATTRACTIVENESS[my_choice] - _ATTRACTIVENESS[rivals_choice]
            churn = self.churn_revenue_per_attractiveness * advantage
        total = (revenue + churn) * self.horizon
        if my_choice is not DeploymentChoice.NO_DEPLOY:
            total -= self.deployment_cost
        return total

    # ------------------------------------------------------------------
    # Equilibrium
    # ------------------------------------------------------------------
    def symmetric_equilibria(
        self,
        value_flow_exists: bool,
        users_can_choose: bool,
        allow_closed: bool = True,
    ) -> List[DeploymentChoice]:
        """Symmetric pure-strategy equilibria of the deployment game.

        A profile where everyone plays ``c`` is an equilibrium when no ISP
        gains by unilaterally deviating.
        """
        choices = [DeploymentChoice.NO_DEPLOY, DeploymentChoice.DEPLOY_OPEN]
        if allow_closed:
            choices.append(DeploymentChoice.DEPLOY_CLOSED)
        stable: List[DeploymentChoice] = []
        for candidate in choices:
            incumbent = self.payoff(candidate, candidate, value_flow_exists, users_can_choose)
            if all(
                self.payoff(dev, candidate, value_flow_exists, users_can_choose)
                <= incumbent + 1e-9
                for dev in choices
                if dev is not candidate
            ):
                stable.append(candidate)
        return stable

    def equilibrium_outcome(
        self,
        value_flow_exists: bool,
        users_can_choose: bool,
        allow_closed: bool = True,
    ) -> DeploymentChoice:
        """The predicted industry outcome for one factorial cell.

        When several symmetric equilibria exist, the profit-dominant one is
        selected (standard equilibrium refinement); if none exists, the
        best response to universal NO_DEPLOY is reported.
        """
        stable = self.symmetric_equilibria(value_flow_exists, users_can_choose, allow_closed)
        if stable:
            return max(
                stable,
                key=lambda c: (
                    self.payoff(c, c, value_flow_exists, users_can_choose),
                    -list(DeploymentChoice).index(c),
                ),
            )
        choices = [DeploymentChoice.NO_DEPLOY, DeploymentChoice.DEPLOY_OPEN]
        if allow_closed:
            choices.append(DeploymentChoice.DEPLOY_CLOSED)
        return max(
            choices,
            key=lambda c: self.payoff(
                c, DeploymentChoice.NO_DEPLOY, value_flow_exists, users_can_choose
            ),
        )


@dataclass
class QosFactorial:
    """One cell of the E07 factorial: conditions and equilibrium outcome."""

    value_flow: bool
    user_choice: bool
    outcome: DeploymentChoice
    open_deployment: bool

    def describe(self) -> str:
        vf = "value-flow" if self.value_flow else "no-value-flow"
        uc = "user-choice" if self.user_choice else "no-user-choice"
        return f"{vf}/{uc} -> {self.outcome.value}"


def qos_deployment_game(
    model: Optional[InvestmentModel] = None,
    allow_closed: bool = True,
) -> List[QosFactorial]:
    """Run the 2x2 QoS deployment factorial (E07).

    Returns one :class:`QosFactorial` per cell, in (value_flow,
    user_choice) order: (F,F), (F,T), (T,F), (T,T).
    """
    model = model or InvestmentModel()
    results: List[QosFactorial] = []
    for value_flow in (False, True):
        for user_choice in (False, True):
            outcome = model.equilibrium_outcome(
                value_flow_exists=value_flow,
                users_can_choose=user_choice,
                allow_closed=allow_closed,
            )
            results.append(
                QosFactorial(
                    value_flow=value_flow,
                    user_choice=user_choice,
                    outcome=outcome,
                    open_deployment=outcome is DeploymentChoice.DEPLOY_OPEN,
                )
            )
    return results


@dataclass
class MulticastModel:
    """The multicast post-mortem — "left as an exercise for the reader".

    §VII footnote 19: "The case study of the failure to deploy multicast
    is left as an exercise for the reader." This model does the exercise.

    Multicast differs from QoS in one structural way: an *open* multicast
    service is only useful when (nearly) everyone deploys it — a single
    ISP's multicast island covers almost no group members. That makes the
    deployment game a **coordination (stag-hunt) game**: universal open
    deployment is an equilibrium, but so is universal non-deployment, and
    a lone deployer loses money. Even fixing both QoS failure factors
    (value flow and user choice) does not make open deployment the
    *unique* outcome — the industry can rationally sit in the no-deploy
    trap forever, which is what happened.

    Parameters mirror :class:`InvestmentModel`, plus:

    solo_coverage:
        Fraction of the open service's value realized when rivals have
        not deployed (a multicast island).
    island_attractiveness:
        Attractiveness-to-users of an open deployment nobody else
        supports (low: you cannot multicast to people whose networks
        lack it).
    """

    deployment_cost: float = 100.0
    open_service_revenue: float = 20.0
    captive_fraction: float = 0.3
    closed_service_revenue: float = 12.0
    churn_revenue_per_attractiveness: float = 25.0
    horizon: int = 10
    solo_coverage: float = 0.1
    island_attractiveness: float = 0.3

    def _attractiveness(self, choice: DeploymentChoice,
                        rivals_open: bool) -> float:
        if choice is DeploymentChoice.DEPLOY_OPEN:
            return 2.0 if rivals_open else self.island_attractiveness
        if choice is DeploymentChoice.DEPLOY_CLOSED:
            return 1.0
        return 0.0

    def payoff(
        self,
        my_choice: DeploymentChoice,
        rivals_choice: DeploymentChoice,
        value_flow_exists: bool,
        users_can_choose: bool,
    ) -> float:
        """My total profit when every rival plays ``rivals_choice``."""
        rivals_open = rivals_choice is DeploymentChoice.DEPLOY_OPEN
        revenue = 0.0
        if my_choice is DeploymentChoice.DEPLOY_OPEN and value_flow_exists:
            reach = 1.0 if users_can_choose else self.captive_fraction
            coverage = 1.0 if rivals_open else self.solo_coverage
            revenue = self.open_service_revenue * reach * coverage
        elif my_choice is DeploymentChoice.DEPLOY_CLOSED:
            revenue = self.closed_service_revenue
        churn = 0.0
        if users_can_choose:
            advantage = (self._attractiveness(my_choice, rivals_open)
                         - self._attractiveness(rivals_choice, rivals_open))
            churn = self.churn_revenue_per_attractiveness * advantage
        total = (revenue + churn) * self.horizon
        if my_choice is not DeploymentChoice.NO_DEPLOY:
            total -= self.deployment_cost
        return total

    def symmetric_equilibria(
        self,
        value_flow_exists: bool,
        users_can_choose: bool,
        allow_closed: bool = True,
    ) -> List[DeploymentChoice]:
        """Symmetric pure equilibria — typically more than one."""
        choices = [DeploymentChoice.NO_DEPLOY, DeploymentChoice.DEPLOY_OPEN]
        if allow_closed:
            choices.append(DeploymentChoice.DEPLOY_CLOSED)
        stable: List[DeploymentChoice] = []
        for candidate in choices:
            incumbent = self.payoff(candidate, candidate,
                                    value_flow_exists, users_can_choose)
            if all(
                self.payoff(deviation, candidate,
                            value_flow_exists, users_can_choose)
                <= incumbent + 1e-9
                for deviation in choices if deviation is not candidate
            ):
                stable.append(candidate)
        return stable


@dataclass
class MulticastCell:
    """One factorial cell of the multicast exercise."""

    value_flow: bool
    user_choice: bool
    equilibria: List[DeploymentChoice]
    coordination_trap: bool

    def describe(self) -> str:
        vf = "value-flow" if self.value_flow else "no-value-flow"
        uc = "user-choice" if self.user_choice else "no-user-choice"
        names = ",".join(e.value for e in self.equilibria)
        return f"{vf}/{uc}: equilibria={{{names}}} trap={self.coordination_trap}"


def multicast_deployment_game(
    model: Optional[MulticastModel] = None,
    allow_closed: bool = True,
) -> List[MulticastCell]:
    """Run the multicast 2x2 factorial.

    A cell is a **coordination trap** when universal open deployment is
    an equilibrium *and* universal non- (or closed) deployment is also an
    equilibrium: the industry can rationally never get there. The
    paper-matching shape: unlike QoS, even the (value-flow, user-choice)
    cell is a trap — coordination, not incentives alone, killed open
    multicast.
    """
    model = model or MulticastModel()
    cells: List[MulticastCell] = []
    for value_flow in (False, True):
        for user_choice in (False, True):
            equilibria = model.symmetric_equilibria(
                value_flow, user_choice, allow_closed=allow_closed)
            open_stable = DeploymentChoice.DEPLOY_OPEN in equilibria
            other_stable = any(e is not DeploymentChoice.DEPLOY_OPEN
                               for e in equilibria)
            cells.append(MulticastCell(
                value_flow=value_flow,
                user_choice=user_choice,
                equilibria=equilibria,
                coordination_trap=open_stable and other_stable,
            ))
    return cells
