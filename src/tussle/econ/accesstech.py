"""Residential broadband access: facilities, ISPs, and open-access regimes.

Section V-A-3: "A pessimistic outcome five years in the future is that the
average residential customer will have two choices — his telephone company
and his cable company — because they control the wires." The section
proposes municipal fiber as a neutral platform and argues open access
works only when imposed "at the natural modularity boundary" between
facilities provision and ISP services.

This module models a two-layer market:

* **facility layer** — owners of physical wires (telco copper, cable,
  municipal fiber); each facility can host one or many service providers
  depending on the open-access regime;
* **service layer** — ISPs that retail Internet service over a facility,
  paying the facility a wholesale fee.

:func:`build_access_market` assembles a :class:`~tussle.econ.market.Market`
from a facility configuration, so E03 can sweep facility count x regime
and read prices/welfare from the standard market machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

from ..errors import MarketError
from .agents import Consumer, Provider
from .demand import Segment, UniformWtp
from .market import Market
from .pricing import MonopolyPricing, PricingStrategy, UndercutPricing

__all__ = [
    "AccessRegime",
    "Facility",
    "build_service_providers",
    "access_market_spec",
    "build_access_market",
]


class AccessRegime(Enum):
    """How a facility admits service providers.

    CLOSED:
        Vertical integration — the facility owner is the only ISP on its
        wires (the paper's pessimistic duopoly outcome).
    OPEN_NATURAL_BOUNDARY:
        Open access at the facilities/service boundary — any ISP may
        retail over the wires for a wholesale fee (the paper's preferred
        design; municipal fiber "can be a platform for competitors").
    OPEN_WRONG_BOUNDARY:
        Open access mandated at a boundary that does not match the tussle
        space — ISPs must also take the owner's bundled mail/web services,
        so entrants inherit the owner's cost structure and only a token
        number enter. (The paper: "Most of today's 'open access' proposals
        fail... because they are not modularized along tussle space
        boundaries.")
    """

    CLOSED = "closed"
    OPEN_NATURAL_BOUNDARY = "open-natural"
    OPEN_WRONG_BOUNDARY = "open-wrong-boundary"


@dataclass
class Facility:
    """A physical access facility (the wires).

    Attributes
    ----------
    wholesale_fee:
        Per-subscriber fee charged to ISPs riding the facility under an
        open regime (for CLOSED it is an internal transfer).
    capital_cost:
        Sunk construction cost (reported, not charged per round).
    neutral:
        True for municipally-owned facilities that do not retail service
        themselves.
    """

    name: str
    wholesale_fee: float = 8.0
    capital_cost: float = 1000.0
    neutral: bool = False


def build_service_providers(
    facilities: Sequence[Facility],
    regime: AccessRegime,
    isps_per_open_facility: int = 4,
    retail_unit_cost: float = 3.0,
    initial_price: float = 40.0,
) -> Tuple[List[Provider], Dict[str, PricingStrategy]]:
    """Instantiate the service-layer providers implied by a regime.

    Returns the providers plus per-provider pricing strategies: sole
    retailers on closed facilities price like monopolists (with each other
    as the only competition), while crowded open facilities produce
    undercutters.
    """
    if not facilities:
        raise MarketError("need at least one facility")
    providers: List[Provider] = []
    strategies: Dict[str, PricingStrategy] = {}

    for facility in facilities:
        if regime is AccessRegime.CLOSED:
            # Vertical integration: the owner is the only retailer on its
            # wires (a neutral facility still needs one anchor tenant).
            count = 1
        elif regime is AccessRegime.OPEN_NATURAL_BOUNDARY:
            count = isps_per_open_facility
        else:  # OPEN_WRONG_BOUNDARY: bundling deters entry; one token entrant.
            count = 2
        for i in range(count):
            name = f"{facility.name}-isp{i}"
            unit_cost = retail_unit_cost + facility.wholesale_fee
            if regime is AccessRegime.OPEN_WRONG_BOUNDARY and i > 0:
                # Entrants must carry the owner's bundled services too,
                # inheriting a fatter cost structure.
                unit_cost += facility.wholesale_fee * 0.75
            provider = Provider(name=name, price=initial_price, unit_cost=unit_cost)
            providers.append(provider)
            if regime is AccessRegime.CLOSED:
                # Facility owners facing no retail rivals on their wires
                # price like monopolists.
                strategies[name] = MonopolyPricing(price_cap=90.0)
            elif regime is AccessRegime.OPEN_WRONG_BOUNDARY and i == 0:
                # The owner knows the bundled entrant cannot undercut far;
                # it keeps monopoly-style pricing, disciplined only when
                # customers actually defect to the entrant.
                strategies[name] = MonopolyPricing(price_cap=90.0)
            else:
                strategies[name] = UndercutPricing()
    return providers, strategies


def access_market_spec(
    facilities: Sequence[Facility],
    regime: AccessRegime,
    n_consumers: int = 200,
    isps_per_open_facility: int = 4,
    switching_cost: float = 2.0,
    seed: int = 0,
) -> dict:
    """Constructor kwargs for one E03 cell (fresh objects per call).

    Both the scalar :class:`~tussle.econ.market.Market` and the
    ``tussle.scale`` vector backend accept these kwargs; the parity
    harness builds one of each from two calls to this function.
    """
    providers, strategies = build_service_providers(
        facilities, regime, isps_per_open_facility=isps_per_open_facility
    )
    rng = random.Random(seed)
    wtp = UniformWtp(25.0, 95.0)
    consumers = [
        Consumer(
            name=f"home{i}",
            wtp=wtp.sample(rng),
            segment=Segment.BASIC,
            switching_cost=switching_cost,
        )
        for i in range(n_consumers)
    ]
    return dict(providers=providers, consumers=consumers,
                strategies=strategies, preference_noise=2.0, seed=seed)


def build_access_market(
    facilities: Sequence[Facility],
    regime: AccessRegime,
    n_consumers: int = 200,
    isps_per_open_facility: int = 4,
    switching_cost: float = 2.0,
    seed: int = 0,
) -> Market:
    """Assemble the full two-layer access market for one E03 cell."""
    return Market(**access_market_spec(
        facilities, regime, n_consumers=n_consumers,
        isps_per_open_facility=isps_per_open_facility,
        switching_cost=switching_cost, seed=seed,
    ))
