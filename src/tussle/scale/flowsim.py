"""Flow-level approximation backend: the top of the fidelity ladder.

Packet backends (scalar and vector) simulate every packet's journey;
this backend simulates *flows* — (src, dst, demand) aggregates — against
a path table computed once per topology.  The approximation is declared,
not hidden (the SimBricks discipline): what it keeps and what it drops
is written down in ``DESIGN.md`` ("Scale backends") and re-stated here.

Kept, exactly:

* **Routing outcomes.**  The path table is computed by running the very
  same :mod:`tussle.scale.nkernels` forwarding rounds over one probe
  packet per (src, dst) pair, so a flow is delivered/no-route/link-down/
  TTL-exceeded exactly when a packet between the same endpoints would
  be, and its path latency is bitwise equal to that packet's accumulated
  latency.
* **Link traversal.**  Per-link load is accumulated by replaying each
  delivered flow's hop sequence from the same FIB.

Dropped, deliberately:

* **Queueing and per-packet interleaving.**  Demand maps to link load in
  one shot; there is no round-by-round contention, so utilization above
  1.0 reports *oversubscription* rather than simulated drops.
* **Transport dynamics.**  No AIMD, no retries — those live in
  :mod:`tussle.netsim.transport` at packet fidelity.

The payoff is scale: routing a million flows is one ``(n_flows,)``
gather against the ``(n, n)`` path table plus a bounded hop walk, which
finishes in seconds where per-packet simulation would take hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ScaleError
from ..netsim.decision import MAX_TTL
from ..netsim.topology import Network
from . import nkernels
from .narrays import FibArrays, LinkArrays, NetIndex

__all__ = ["FlowArrays", "FlowReport", "FlowSim", "random_flows"]


class FlowArrays:
    """Column-oriented flow population: endpoints and offered demand."""

    def __init__(self, src: np.ndarray, dst: np.ndarray,
                 demand: np.ndarray):
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.demand = np.asarray(demand, dtype=np.float64)
        n = self.src.shape[0]
        if self.dst.shape != (n,) or self.demand.shape != (n,):
            raise ScaleError(
                f"flow columns must share shape ({n},), got "
                f"dst={self.dst.shape} demand={self.demand.shape}")

    def __len__(self) -> int:
        return int(self.src.shape[0])


def random_flows(n_flows: int, n_nodes: int, seed: int,
                 mean_demand: float = 1.0) -> FlowArrays:
    """A reproducible synthetic flow population.

    Sources are uniform over nodes, destinations uniform over the other
    nodes, demands exponential with the given mean.  Uses NumPy's
    generator (not the shared scalar stream): flow populations are
    approximation-backend inputs, never parity subjects.
    """
    if n_nodes < 2:
        raise ScaleError("flows need at least two nodes")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_nodes, size=n_flows, dtype=np.int64)
    dst_raw = rng.integers(0, n_nodes - 1, size=n_flows, dtype=np.int64)
    dst = dst_raw + (dst_raw >= src)
    demand = rng.exponential(mean_demand, size=n_flows)
    return FlowArrays(src, dst, demand)


@dataclass
class FlowReport:
    """Aggregate outcome of routing one flow population.

    ``utilization`` maps ``"a<->b"`` link keys to load/capacity ratios
    (``inf`` for loaded zero-capacity links); values above 1.0 flag
    oversubscription — this backend does not simulate the resulting
    drops, it reports where they would start.
    """

    n_flows: int
    delivered: int
    no_route: int
    link_down: int
    ttl_exceeded: int
    demand_offered: float
    demand_delivered: float
    mean_latency: float
    utilization: Dict[str, float]

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.n_flows if self.n_flows else 0.0

    def oversubscribed(self, threshold: float = 1.0) -> List[str]:
        """Link keys whose utilization exceeds ``threshold``."""
        return sorted(key for key, value in self.utilization.items()
                      if value > threshold)


class FlowSim:
    """Route flow populations against a once-computed path table.

    The path table is produced by the *packet* kernels: one probe per
    (src, dst) pair forwarded through the same round loop as
    :class:`~tussle.scale.vforwarding.VectorForwardingEngine`, so the
    fidelity drop is confined to load aggregation — routing outcomes and
    path latencies agree with the packet backends bit for bit.
    """

    def __init__(self, network: Network,
                 tables: Optional[Dict[str, Dict[str, str]]] = None):
        self.network = network
        self.index = NetIndex.from_network(network)
        if tables is None:
            tables = self._shortest_path_tables()
        self._fib = FibArrays.from_tables(tables, self.index)
        self._links = LinkArrays.from_network(network, self.index)
        (self._path_status, self._path_latency,
         self._path_hops) = self._probe_all_pairs()

    def _shortest_path_tables(self) -> Dict[str, Dict[str, str]]:
        names = self.network.node_names()
        tables: Dict[str, Dict[str, str]] = {}
        for src in names:
            table: Dict[str, str] = {}
            for dst in names:
                if dst == src:
                    continue
                path = self.network.shortest_path(src, dst)
                if path and len(path) > 1:
                    table[dst] = path[1]
            tables[src] = table
        return tables

    def _probe_all_pairs(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Forward one probe per (src, dst) pair through the kernels."""
        n = len(self.index)
        src = np.repeat(np.arange(n, dtype=np.int64), n)
        dst = np.tile(np.arange(n, dtype=np.int64), n)
        status = np.full(n * n, nkernels.IN_FLIGHT, dtype=np.int64)
        current = src.copy()
        latency = np.zeros(n * n, dtype=np.float64)
        hops = np.ones(n * n, dtype=np.int64)
        active = np.ones(n * n, dtype=bool)

        arrived = nkernels.delivered_mask(active, current, dst)
        status = nkernels.resolve_status(status, arrived, nkernels.DELIVERED)
        active = active & ~arrived
        r = 0
        while nkernels.mask_count(active) > 0 and r < MAX_TTL:
            r += 1
            hop = nkernels.lookup_next_hop(self._fib.next_hop, current, dst)
            no_route = nkernels.no_route_mask(active, hop)
            link_down = nkernels.link_down_mask(active, self._links.usable,
                                                current, hop)
            moving = active & ~no_route & ~link_down
            latency = latency + nkernels.hop_latency_deltas(
                self._links.latency, current, hop, moving)
            current = nkernels.advance(current, hop, moving)
            hops = hops + moving
            status = nkernels.resolve_status(status, no_route,
                                             nkernels.NO_ROUTE)
            status = nkernels.resolve_status(status, link_down,
                                             nkernels.LINK_DOWN)
            active = moving
            if r < MAX_TTL:
                arrived = nkernels.delivered_mask(active, current, dst)
                status = nkernels.resolve_status(status, arrived,
                                                 nkernels.DELIVERED)
                active = active & ~arrived
            else:
                status = nkernels.resolve_status(status, active,
                                                 nkernels.TTL_EXCEEDED)
                active = np.zeros(n * n, dtype=bool)

        shape = (n, n)
        return (status.reshape(shape), latency.reshape(shape),
                hops.reshape(shape))

    def path_status(self, src: int, dst: int) -> int:
        """Packet-kernel status code for the (src, dst) pair."""
        return int(self._path_status[src, dst])

    def path_latency(self, src: int, dst: int) -> float:
        """Accumulated path latency — bitwise equal to a probe packet's."""
        return float(self._path_latency[src, dst])

    def route(self, flows: FlowArrays) -> FlowReport:
        """Route a whole flow population in aggregate."""
        status = self._fast_gather(self._path_status, flows)
        delivered_mask = status == nkernels.DELIVERED
        latency = self._fast_gather(self._path_latency, flows)

        # Per-link demand: walk delivered flows hop by hop (bounded by
        # MAX_TTL rounds), scattering demand onto an (n, n) load matrix.
        n = len(self.index)
        load = np.zeros((n, n), dtype=np.float64)
        current = flows.src.copy()
        walking = delivered_mask & (current != flows.dst)
        steps = 0
        while np.count_nonzero(walking) and steps < MAX_TTL:
            steps += 1
            hop = self._fib.next_hop[current, flows.dst]
            safe_hop = np.where(hop >= 0, hop, 0)
            np.add.at(load, (current[walking], safe_hop[walking]),
                      flows.demand[walking])
            current = np.where(walking, safe_hop, current)
            walking = walking & (current != flows.dst)

        utilization: Dict[str, float] = {}
        for link in self.network.links:
            i = self.index.of(link.a)
            j = self.index.of(link.b)
            total = float(load[i, j] + load[j, i])
            if total == 0.0:
                continue
            key = f"{link.a}<->{link.b}"
            utilization[key] = (total / link.capacity if link.capacity > 0
                                else float("inf"))

        delivered = int(np.count_nonzero(delivered_mask))
        demand_delivered = float(np.sum(flows.demand[delivered_mask]))
        return FlowReport(
            n_flows=len(flows),
            delivered=delivered,
            no_route=int(np.count_nonzero(status == nkernels.NO_ROUTE)),
            link_down=int(np.count_nonzero(status == nkernels.LINK_DOWN)),
            ttl_exceeded=int(
                np.count_nonzero(status == nkernels.TTL_EXCEEDED)),
            demand_offered=float(np.sum(flows.demand)),
            demand_delivered=demand_delivered,
            mean_latency=(float(np.mean(latency[delivered_mask]))
                          if delivered else 0.0),
            utilization=utilization,
        )

    @staticmethod
    def _fast_gather(table: np.ndarray, flows: FlowArrays) -> np.ndarray:
        return table[flows.src, flows.dst]
