"""Large-N scenarios and the at-scale experiments L01/L02.

The ROADMAP north star asks for markets with "millions of users"; the
E01/E02 claim shapes were established at a few hundred consumers.  This
module re-runs those claims on 10^4–10^6-consumer populations through
:class:`~tussle.scale.vmarket.VectorMarket`:

* **L01 (lock-in at scale)** — the E01 addressing-mode sweep (static /
  DHCP / DHCP+DDNS / provider-independent switching costs) with the
  same provider line-up, asserting the same qualitative shape at every
  population tier: switching rises as renumbering gets cheaper, prices
  are highest under static lock-in, surplus improves when switching is
  freed.
* **L02 (value pricing at scale)** — the E02 monopoly/competition x
  tunnelling cells, asserting tunnelling raises consumer surplus and
  cuts monopoly extraction, competition disciplines the tier, and
  detection restores extraction — at every tier.

Scenario builders produce :class:`~tussle.scale.arrays.ConsumerBatch`
columns from the *same* Python ``random.Random(seed)`` draw sequence
the scalar builders use, so a small-N batch market is bit-comparable
against its scalar twin (tests do exactly that) while a 10^6 batch is
just bigger arrays.

Both experiments take a ``tiers`` tuple; defaults stay modest because
the registry's seedcheck double-runs every experiment, and the 10^5 /
10^6 tiers run in the slow/large pytest lanes and via
``tussle sweep --grid``.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..econ.agents import Provider
from ..econ.demand import UniformWtp
from ..econ.pricing import (
    MonopolyPricing,
    UndercutPricing,
    ValuePricingStrategy,
)
from ..experiments.common import ExperimentResult, Table
from ..netsim.addressing import AddressingMode, RenumberingModel
from .arrays import ConsumerBatch
from .vmarket import VectorMarket

__all__ = [
    "lockin_batch",
    "lockin_market_at_scale",
    "value_pricing_batch",
    "value_pricing_market_at_scale",
    "run_l01",
    "run_l02",
    "DEFAULT_TIERS",
]

#: Population tiers run by default (kept modest: every registered
#: experiment is double-run by the lint seedcheck).  Pass
#: ``tiers=(100_000,)`` or ``(1_000_000,)`` explicitly for the big runs.
DEFAULT_TIERS: Tuple[int, ...] = (10_000,)


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
def lockin_batch(switching_cost: float, n_consumers: int,
                 seed: int) -> ConsumerBatch:
    """E01's consumer population as columns (same draw stream).

    Mirrors ``lockin_market_spec``: wtp ~ UniformWtp(35, 110) drawn from
    ``random.Random(seed)`` in consumer order, everyone basic-segment
    and locked to the incumbent.
    """
    rng = random.Random(seed)
    wtp_model = UniformWtp(35.0, 110.0)
    wtp = np.array([wtp_model.sample(rng) for _ in range(n_consumers)],
                   dtype=np.float64)
    zeros = np.zeros(n_consumers, dtype=np.float64)
    return ConsumerBatch(
        wtp=wtp,
        server_value=zeros,
        values_server=np.zeros(n_consumers, dtype=bool),
        switching_cost=np.full(n_consumers, switching_cost, dtype=np.float64),
        can_tunnel=np.zeros(n_consumers, dtype=bool),
        tunnel_cost=np.full(n_consumers, 2.0, dtype=np.float64),
        initial_provider="incumbent",
        name_prefix="site",
    )


def lockin_market_at_scale(switching_cost: float, n_consumers: int,
                           seed: int) -> VectorMarket:
    """The E01 market (incumbent + two undercutting rivals) at any N."""
    providers = [
        Provider(name="incumbent", price=45.0, unit_cost=5.0),
        Provider(name="rival-a", price=40.0, unit_cost=5.0),
        Provider(name="rival-b", price=42.0, unit_cost=5.0),
    ]
    strategies = {
        "incumbent": MonopolyPricing(price_cap=90.0),
        "rival-a": UndercutPricing(),
        "rival-b": UndercutPricing(),
    }
    return VectorMarket(
        providers=providers,
        batch=lockin_batch(switching_cost, n_consumers, seed),
        strategies=strategies,
        seed=seed,
    )


def value_pricing_batch(n_consumers: int, can_tunnel: bool,
                        seed: int) -> ConsumerBatch:
    """E02's mixed basic/business population as columns.

    Mirrors ``value_pricing_market_spec``: every third consumer is a
    server-runner (wtp ~ U(35, 70), server value 30, tunnel cost 3),
    the rest basic (wtp ~ U(25, 60)); everyone has switching cost 2.
    One shared ``random.Random(seed)`` stream, sampled in consumer
    order, keeps the draws identical to the scalar builder's.
    """
    rng = random.Random(seed)
    basic_wtp = UniformWtp(25.0, 60.0)
    business_wtp = UniformWtp(35.0, 70.0)
    wtp = np.empty(n_consumers, dtype=np.float64)
    server_value = np.zeros(n_consumers, dtype=np.float64)
    values_server = np.zeros(n_consumers, dtype=bool)
    tunnel_cost = np.full(n_consumers, 2.0, dtype=np.float64)
    for i in range(n_consumers):
        if i % 3 == 0:
            wtp[i] = business_wtp.sample(rng)
            server_value[i] = 30.0
            values_server[i] = True
            tunnel_cost[i] = 3.0
        else:
            wtp[i] = basic_wtp.sample(rng)
    return ConsumerBatch(
        wtp=wtp,
        server_value=server_value,
        values_server=values_server,
        switching_cost=np.full(n_consumers, 2.0, dtype=np.float64),
        can_tunnel=values_server & can_tunnel,
        tunnel_cost=tunnel_cost,
        initial_provider=None,
        name_prefix="home",
    )


def value_pricing_market_at_scale(
    n_providers: int, can_tunnel: bool, detects_tunnels: bool,
    n_consumers: int, seed: int,
) -> VectorMarket:
    """The E02 all-providers-tier market at any N."""
    providers = []
    strategies: Dict[str, ValuePricingStrategy] = {}
    for i in range(n_providers):
        name = f"isp{i}"
        providers.append(Provider(
            name=name,
            price=30.0,
            business_price=42.0,
            unit_cost=5.0,
            detects_tunnels=detects_tunnels,
        ))
        base = (MonopolyPricing(price_cap=45.0) if n_providers == 1
                else UndercutPricing())
        strategies[name] = ValuePricingStrategy(
            tier_multiple=1.4, base_strategy=base)
    return VectorMarket(
        providers=providers,
        batch=value_pricing_batch(n_consumers, can_tunnel, seed),
        strategies=strategies,
        seed=seed,
    )


def _tunnel_uptake(market: VectorMarket) -> float:
    """Fraction of server-running consumers currently tunnelling."""
    business = market.arrays.values_server
    n_business = int(np.count_nonzero(business))
    if n_business == 0:
        return 0.0
    return int(np.count_nonzero(market.arrays.tunnelling & business)) / n_business


# ----------------------------------------------------------------------
# L01 — lock-in at scale
# ----------------------------------------------------------------------
#: (label, addressing mode or None for provider-independent space) —
#: the same sweep E01 runs.
_L01_SCENARIOS = [
    ("static", AddressingMode.STATIC),
    ("dhcp", AddressingMode.DHCP),
    ("dhcp+ddns", AddressingMode.DHCP_DDNS),
    ("provider-independent", None),
]


def run_l01(
    tiers: Optional[Sequence[int]] = None,
    n_hosts_per_site: int = 20,
    rounds: int = 30,
    seed: int = 7,
) -> ExperimentResult:
    """E01's lock-in claim shape at 10^4+-consumer populations."""
    tiers = tuple(DEFAULT_TIERS if tiers is None else tiers)
    model = RenumberingModel()
    table = Table(
        "L01: addressing mode vs lock-in at population scale",
        ["n", "mode", "switch_cost", "switch_rate",
         "final_price", "consumer_surplus"],
    )
    result = ExperimentResult(
        experiment_id="L01",
        title="Provider lock-in from IP addressing, at scale",
        paper_claim=("The E01 lock-in shape — cheap renumbering frees "
                     "switching, which disciplines prices and restores "
                     "surplus — holds for populations of 10^4-10^6, not "
                     "just hundreds."),
        tables=[table],
    )

    for n_consumers in tiers:
        rates = []
        prices = []
        surpluses = []
        for label, mode in _L01_SCENARIOS:
            provider_independent = mode is None
            cost = model.switching_cost(
                n_hosts_per_site,
                mode or AddressingMode.STATIC,
                provider_independent=provider_independent,
            )
            market = lockin_market_at_scale(cost, n_consumers, seed)
            market.run(rounds)
            rate = market.total_switches() / (n_consumers * rounds)
            rates.append(rate)
            prices.append(market.mean_price())
            surpluses.append(market.total_consumer_surplus())
            table.add_row(
                n=n_consumers, mode=label, switch_cost=cost,
                switch_rate=rate, final_price=prices[-1],
                consumer_surplus=surpluses[-1],
            )
        result.add_check(
            f"n={n_consumers}: switching rises as renumbering gets cheaper",
            rates[0] <= rates[1] <= rates[2] and rates[0] < rates[2],
            detail=f"switch rates {['%.4f' % r for r in rates]}",
        )
        result.add_check(
            f"n={n_consumers}: prices are highest under static lock-in",
            prices[0] >= max(prices[1:]) - 1e-9,
            detail=f"final prices {['%.2f' % p for p in prices]}",
        )
        result.add_check(
            f"n={n_consumers}: surplus improves when switching is freed",
            surpluses[2] > surpluses[0] and surpluses[3] > surpluses[0],
            detail=f"surplus {['%.0f' % s for s in surpluses]}",
        )
    return result


# ----------------------------------------------------------------------
# L02 — value pricing at scale
# ----------------------------------------------------------------------
#: (label, n_providers, consumers can tunnel, providers detect tunnels)
_L02_CELLS = [
    ("monopoly", 1, False, False),
    ("monopoly", 1, True, False),
    ("competitive", 4, False, False),
    ("competitive", 4, True, False),
    ("monopoly+dpi", 1, True, True),
]


def run_l02(
    tiers: Optional[Sequence[int]] = None,
    rounds: int = 25,
    seed: int = 11,
) -> ExperimentResult:
    """E02's value-pricing/tunnelling claim shape at 10^4+ consumers."""
    tiers = tuple(DEFAULT_TIERS if tiers is None else tiers)
    table = Table(
        "L02: value pricing x tunnelling at population scale",
        ["n", "market", "tunnels", "detects", "tunnel_uptake",
         "provider_profit", "consumer_surplus"],
    )
    result = ExperimentResult(
        experiment_id="L02",
        title="Value pricing vs tunnelling, at scale",
        paper_claim=("The E02 shape — tunnels shift power to consumers, "
                     "competition disciplines the tier, detection restores "
                     "extraction — holds for populations of 10^4-10^6."),
        tables=[table],
    )

    for n_consumers in tiers:
        cells: Dict[Tuple[str, bool, bool], Dict[str, float]] = {}
        for label, n_providers, can_tunnel, detects in _L02_CELLS:
            market = value_pricing_market_at_scale(
                n_providers, can_tunnel, detects, n_consumers, seed)
            market.run(rounds)
            row = {
                "tunnel_uptake": _tunnel_uptake(market),
                "provider_profit": market.total_provider_profit(),
                "consumer_surplus": market.total_consumer_surplus(),
            }
            cells[(label, can_tunnel, detects)] = row
            table.add_row(n=n_consumers, market=label, tunnels=can_tunnel,
                          detects=detects, **row)

        mono_plain = cells[("monopoly", False, False)]
        mono_tunnel = cells[("monopoly", True, False)]
        comp_plain = cells[("competitive", False, False)]
        mono_dpi = cells[("monopoly+dpi", True, True)]
        result.add_check(
            f"n={n_consumers}: tunnelling raises consumer surplus under "
            f"monopoly tiering",
            mono_tunnel["consumer_surplus"] > mono_plain["consumer_surplus"],
            detail=(f"surplus {mono_plain['consumer_surplus']:.0f} -> "
                    f"{mono_tunnel['consumer_surplus']:.0f}"),
        )
        result.add_check(
            f"n={n_consumers}: tunnelling cuts the monopolist's extraction",
            mono_tunnel["provider_profit"] < mono_plain["provider_profit"],
            detail=(f"profit {mono_plain['provider_profit']:.0f} -> "
                    f"{mono_tunnel['provider_profit']:.0f}"),
        )
        result.add_check(
            f"n={n_consumers}: competition alone disciplines extraction",
            comp_plain["provider_profit"] < mono_plain["provider_profit"]
            and comp_plain["consumer_surplus"] > mono_plain["consumer_surplus"],
            detail=(f"monopoly profit {mono_plain['provider_profit']:.0f} vs "
                    f"competitive {comp_plain['provider_profit']:.0f}"),
        )
        result.add_check(
            f"n={n_consumers}: tunnel detection restores extraction",
            mono_dpi["provider_profit"] > mono_tunnel["provider_profit"]
            and mono_dpi["tunnel_uptake"] < mono_tunnel["tunnel_uptake"] + 1e-9,
            detail=(f"profit {mono_tunnel['provider_profit']:.0f} -> "
                    f"{mono_dpi['provider_profit']:.0f} with DPI"),
        )
        result.add_check(
            f"n={n_consumers}: tunnels are actually used under monopoly "
            f"tiering",
            mono_tunnel["tunnel_uptake"] > 0.3,
            detail=f"uptake {mono_tunnel['tunnel_uptake']:.2f}",
        )
    return result
