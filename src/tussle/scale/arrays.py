"""Structure-of-arrays snapshots of market populations.

The scalar :class:`~tussle.econ.market.Market` walks Python objects; the
vectorized backend walks NumPy columns.  :class:`MarketArrays` is the
bridge: one float64/bool/int64 column per consumer attribute, a
``(consumers, providers)`` preference-noise matrix, and the mutable
per-consumer state (current provider, accumulated surplus, switch count,
tunnelling posture) that evolves round by round.

Shared randomness, not re-drawn randomness
------------------------------------------
The scalar market draws per-(consumer, provider) taste from
``random.Random(seed + 1)`` — consumer-major, providers in sorted-name
order.  :meth:`MarketArrays.taste_matrix` replays *that exact stream*
into the matrix, so the vector backend consumes the same uniform draws
the scalar backend would, in the same order.  Parity therefore holds bit
for bit instead of merely in distribution.

:class:`ConsumerBatch` is the large-N construction path: scenario
builders fill columns directly (a million-consumer population is a few
8 MB arrays) and never materialize a million ``Consumer`` dataclasses;
:meth:`ConsumerBatch.to_consumers` converts to objects when a scalar
cross-check at small N needs them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..econ.agents import Consumer
from ..econ.demand import Segment
from ..errors import ScaleError

__all__ = ["ConsumerBatch", "MarketArrays"]


@dataclass
class ConsumerBatch:
    """Column-oriented consumer population (no per-consumer objects).

    ``initial_provider`` is a single provider name shared by the whole
    batch (the E01 "everyone starts locked to the incumbent" shape) or
    ``None`` for a round-0 free choice; heterogeneous starting
    assignments go through :meth:`MarketArrays.from_consumers` instead.
    """

    wtp: np.ndarray
    server_value: np.ndarray
    values_server: np.ndarray
    switching_cost: np.ndarray
    can_tunnel: np.ndarray
    tunnel_cost: np.ndarray
    initial_provider: Optional[str] = None
    name_prefix: str = "site"

    def __post_init__(self) -> None:
        self.wtp = np.asarray(self.wtp, dtype=np.float64)
        n = self.wtp.shape[0]
        self.server_value = np.asarray(self.server_value, dtype=np.float64)
        self.values_server = np.asarray(self.values_server, dtype=bool)
        self.switching_cost = np.asarray(self.switching_cost, dtype=np.float64)
        self.can_tunnel = np.asarray(self.can_tunnel, dtype=bool)
        self.tunnel_cost = np.asarray(self.tunnel_cost, dtype=np.float64)
        for column in (self.server_value, self.values_server,
                       self.switching_cost, self.can_tunnel,
                       self.tunnel_cost):
            if column.shape != (n,):
                raise ScaleError(
                    f"batch columns must share shape ({n},), got {column.shape}")

    def __len__(self) -> int:
        return int(self.wtp.shape[0])

    def to_consumers(self) -> List[Consumer]:
        """Materialize scalar ``Consumer`` objects (small-N cross-checks)."""
        consumers: List[Consumer] = []
        for i in range(len(self)):
            consumers.append(Consumer(
                name=f"{self.name_prefix}{i}",
                wtp=float(self.wtp[i]),
                segment=(Segment.BUSINESS if self.values_server[i]
                         else Segment.BASIC),
                switching_cost=float(self.switching_cost[i]),
                server_value=float(self.server_value[i]),
                can_tunnel=bool(self.can_tunnel[i]),
                tunnel_cost=float(self.tunnel_cost[i]),
                provider=self.initial_provider,
            ))
        return consumers


class MarketArrays:
    """Mutable SoA state of one market's consumer side.

    Provider columns are ordered by *sorted provider name* — the order
    the scalar decision scan visits them — so column ``j`` of every
    ``(N, P)`` matrix refers to ``provider_names[j]``.
    """

    def __init__(
        self,
        wtp: np.ndarray,
        server_value: np.ndarray,
        values_server: np.ndarray,
        switching_cost: np.ndarray,
        can_tunnel: np.ndarray,
        tunnel_cost: np.ndarray,
        assignment: np.ndarray,
        taste: Optional[np.ndarray],
        provider_names: Sequence[str],
    ):
        self.wtp = wtp
        self.server_value = server_value
        self.values_server = values_server
        self.switching_cost = switching_cost
        self.can_tunnel = can_tunnel
        self.tunnel_cost = tunnel_cost
        self.assignment = assignment
        self.taste = taste
        self.provider_names = list(provider_names)
        n = wtp.shape[0]
        self.surplus = np.zeros(n, dtype=np.float64)
        self.switches = np.zeros(n, dtype=np.int64)
        self.tunnelling = np.zeros(n, dtype=bool)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def taste_matrix(n_consumers: int, n_providers: int,
                     preference_noise: float, seed: int
                     ) -> Optional[np.ndarray]:
        """Replay the scalar market's taste stream into an (N, P) matrix.

        Draw order is consumer-major with providers in sorted-name order
        — exactly the nested loop ``Market.__init__`` runs — from
        ``random.Random(seed + 1)``, so element ``[i, j]`` is the very
        float the scalar market stores for consumer ``i`` at the ``j``-th
        sorted provider.
        """
        if preference_noise <= 0:
            return None
        noise_rng = random.Random(seed + 1)
        flat = [
            noise_rng.uniform(-preference_noise, preference_noise)
            for _ in range(n_consumers * n_providers)
        ]
        return np.array(flat, dtype=np.float64).reshape(
            n_consumers, n_providers)

    @classmethod
    def from_consumers(
        cls,
        consumers: Sequence[Consumer],
        provider_names: Sequence[str],
        preference_noise: float = 0.0,
        seed: int = 0,
    ) -> "MarketArrays":
        """Snapshot scalar ``Consumer`` objects into columns."""
        order = {name: j for j, name in enumerate(provider_names)}
        n = len(consumers)
        assignment = np.full(n, -1, dtype=np.int64)
        for i, consumer in enumerate(consumers):
            if consumer.provider is not None:
                try:
                    assignment[i] = order[consumer.provider]
                except KeyError:
                    raise ScaleError(
                        f"consumer {consumer.name!r} starts at unknown "
                        f"provider {consumer.provider!r}") from None
        return cls(
            wtp=np.array([c.wtp for c in consumers], dtype=np.float64),
            server_value=np.array([c.server_value for c in consumers],
                                  dtype=np.float64),
            values_server=np.array([c.values_server() for c in consumers],
                                   dtype=bool),
            switching_cost=np.array([c.switching_cost for c in consumers],
                                    dtype=np.float64),
            can_tunnel=np.array([c.can_tunnel for c in consumers], dtype=bool),
            tunnel_cost=np.array([c.tunnel_cost for c in consumers],
                                 dtype=np.float64),
            assignment=assignment,
            taste=cls.taste_matrix(n, len(provider_names), preference_noise,
                                   seed),
            provider_names=provider_names,
        )

    @classmethod
    def from_batch(
        cls,
        batch: ConsumerBatch,
        provider_names: Sequence[str],
        preference_noise: float = 0.0,
        seed: int = 0,
    ) -> "MarketArrays":
        """Adopt a :class:`ConsumerBatch`'s columns (no copies of statics)."""
        n = len(batch)
        assignment = np.full(n, -1, dtype=np.int64)
        if batch.initial_provider is not None:
            try:
                start = list(provider_names).index(batch.initial_provider)
            except ValueError:
                raise ScaleError(
                    f"batch starts at unknown provider "
                    f"{batch.initial_provider!r}") from None
            assignment[:] = start
        return cls(
            wtp=batch.wtp,
            server_value=batch.server_value,
            values_server=batch.values_server,
            switching_cost=batch.switching_cost,
            can_tunnel=batch.can_tunnel,
            tunnel_cost=batch.tunnel_cost,
            assignment=assignment,
            taste=cls.taste_matrix(n, len(provider_names), preference_noise,
                                   seed),
            provider_names=provider_names,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.wtp.shape[0])

    @property
    def n_providers(self) -> int:
        return len(self.provider_names)

    def nbytes(self) -> int:
        """Total bytes held by the population columns (and taste matrix)."""
        total = sum(
            column.nbytes
            for column in (self.wtp, self.server_value, self.values_server,
                           self.switching_cost, self.can_tunnel,
                           self.tunnel_cost, self.assignment, self.surplus,
                           self.switches, self.tunnelling)
        )
        if self.taste is not None:
            total += self.taste.nbytes
        return total

    def provider_of(self, index: int) -> Optional[str]:
        """Current provider name of one consumer (parity introspection)."""
        j = int(self.assignment[index])
        return None if j < 0 else self.provider_names[j]
