"""CLI for the scale subsystem: parity gates as shell commands.

``python -m tussle.scale parity`` runs the scalar-vs-vector *market*
harness over the E01/E02/E03 configurations;
``python -m tussle.scale netsim-parity`` runs the *forwarding* harness
over the topology configurations in :mod:`tussle.scale.nparity`.  Both
exit non-zero on any mismatch, so CI uses them as gates, and both take
``--json`` for machine-readable reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .nparity import run_netsim_parity
from .parity import PARITY_SEEDS, run_parity

__all__ = ["main"]


def _print_reports(reports, args, count_field: str) -> int:
    failures = [r for r in reports if not r.ok]
    if args.json:
        payload = [
            {
                "label": r.label,
                "seed": r.seed,
                "rounds": r.rounds,
                count_field: getattr(r, count_field),
                "ok": r.ok,
                "mismatches": r.mismatches,
                "divergence": (r.divergence.to_dict()
                               if r.divergence is not None else None),
            }
            for r in reports
        ]
        print(json.dumps(
            {"seeds": args.seeds, "reports": payload, "ok": not failures},
            indent=2))
    else:
        for report in reports:
            status = "ok" if report.ok else "FAIL"
            print(f"[{status}] {report.label} seed={report.seed} "
                  f"rounds={report.rounds} n={getattr(report, count_field)}")
            for line in report.mismatches:
                print(f"       {line}")
            if report.divergence is not None:
                from ..obs.diff import format_divergence
                for line in format_divergence(report.divergence, "scalar",
                                              "vector").splitlines():
                    print(f"       {line}")
        print(f"parity: {len(reports) - len(failures)}/{len(reports)} "
              f"report(s) clean")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tussle.scale",
        description="Vectorized backend tools (markets and forwarding).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_gate(name: str, help_text: str) -> None:
        gate = sub.add_parser(name, help=help_text)
        gate.add_argument(
            "--seeds", type=int, nargs="+", default=list(PARITY_SEEDS),
            help=f"seeds to check each configuration under "
                 f"(default: {' '.join(map(str, PARITY_SEEDS))})",
        )
        gate.add_argument("--json", action="store_true",
                          help="emit one JSON object per report")

    add_gate("parity",
             "verify VectorMarket reproduces scalar MarketRound records")
    add_gate("netsim-parity",
             "verify VectorForwardingEngine reproduces scalar forwarding")
    args = parser.parse_args(argv)

    if args.command == "parity":
        return _print_reports(run_parity(seeds=args.seeds), args,
                              "n_consumers")
    return _print_reports(run_netsim_parity(seeds=args.seeds), args,
                          "n_packets")


if __name__ == "__main__":
    sys.exit(main())
