"""CLI for the scale subsystem: ``python -m tussle.scale parity``.

Runs the scalar-vs-vector parity harness over the E01/E02/E03
configurations and exits non-zero on any mismatch, so CI can use it as
a gate.  ``--json`` emits machine-readable reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .parity import PARITY_SEEDS, run_parity

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tussle.scale",
        description="Vectorized market backend tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    parity = sub.add_parser(
        "parity",
        help="verify VectorMarket reproduces scalar MarketRound records",
    )
    parity.add_argument(
        "--seeds", type=int, nargs="+", default=list(PARITY_SEEDS),
        help=f"seeds to check each configuration under "
             f"(default: {' '.join(map(str, PARITY_SEEDS))})",
    )
    parity.add_argument("--json", action="store_true",
                        help="emit one JSON object per report")
    args = parser.parse_args(argv)

    reports = run_parity(seeds=args.seeds)
    failures = [r for r in reports if not r.ok]
    if args.json:
        payload = [
            {
                "label": r.label,
                "seed": r.seed,
                "rounds": r.rounds,
                "n_consumers": r.n_consumers,
                "ok": r.ok,
                "mismatches": r.mismatches,
                "divergence": (r.divergence.to_dict()
                               if r.divergence is not None else None),
            }
            for r in reports
        ]
        print(json.dumps(
            {"seeds": args.seeds, "reports": payload, "ok": not failures},
            indent=2))
    else:
        for report in reports:
            status = "ok" if report.ok else "FAIL"
            print(f"[{status}] {report.label} seed={report.seed} "
                  f"rounds={report.rounds} n={report.n_consumers}")
            for line in report.mismatches:
                print(f"       {line}")
            if report.divergence is not None:
                from ..obs.diff import format_divergence
                for line in format_divergence(report.divergence, "scalar",
                                              "vector").splitlines():
                    print(f"       {line}")
        print(f"parity: {len(reports) - len(failures)}/{len(reports)} "
              f"report(s) clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
