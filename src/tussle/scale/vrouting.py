"""Batch valley-free route propagation over arrays.

The scalar :class:`~tussle.routing.pathvector.PathVectorRouting` walks
Python dicts route by route and round by round; on a 10^3-AS graph one
convergence is minutes of object churn.  This module is the
convergence-only fast path: it exploits the *structure* of Gao-Rexford
policies — customer > peer > provider, shorter path, lowest next-hop
ASN — to compute the unique stable route selection directly, batched
over NumPy arrays, in three phases per destination column:

1. **customer routes** climb the provider DAG level by level (a BFS
   where each level's new holders pick the lowest-ASN announcing
   customer);
2. **peer routes** take exactly one lateral hop from any
   customer-routed peer (composite ``(length, asn)`` min-key);
3. **provider routes** descend the customer DAG in length order, each
   AS re-announcing its *selected* route downward.

All destinations propagate simultaneously: each phase is a handful of
``np.minimum.at`` scatter-reductions over the relationship edge arrays,
the same pattern the packet-vector backend uses
(:mod:`tussle.scale.vforwarding`).  The result is bit-identical to the
scalar protocol's fixed point (``tests/topogen/test_fastpath.py`` gates
路 parity over seeds), because Gao-Rexford guarantees a unique stable
selection and both backends break ties the same documented way.

Scope: customer/provider and peer relationships only.  Sibling edges
(which the scalar protocol treats as UNKNOWN neighbours) and pairs
carrying two relationship kinds at once are rejected — the generator
and the CAIDA loader never produce either.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScaleError
from ..netsim.topology import Network

__all__ = ["ASIndex", "RibArrays", "converge_valley_free"]

#: Route-class codes, ordered by preference; match
#: :class:`tussle.routing.policies.NeighborClass` numerically.
CLASS_CUSTOMER = 0
CLASS_PEER = 1
CLASS_PROVIDER = 2
CLASS_NONE = 3

_BIG = np.iinfo(np.int64).max


class ASIndex:
    """Bidirectional ASN <-> row mapping, rows sorted by ASN."""

    def __init__(self, asns: Sequence[int]):
        self.asns = np.array(sorted(asns), dtype=np.int64)
        if len(np.unique(self.asns)) != len(self.asns):
            raise ScaleError("AS numbers must be unique")
        self._row: Dict[int, int] = {int(a): i
                                     for i, a in enumerate(self.asns)}

    @classmethod
    def from_network(cls, network: Network) -> "ASIndex":
        return cls([a.asn for a in network.ases])

    def __len__(self) -> int:
        return int(self.asns.shape[0])

    def of(self, asn: int) -> int:
        try:
            return self._row[asn]
        except KeyError:
            raise ScaleError(f"unknown AS {asn}") from None

    def rows_of(self, asn_values: np.ndarray) -> np.ndarray:
        """Vectorized ASN -> row (values must all be indexed)."""
        return np.searchsorted(self.asns, asn_values)


def _edge_arrays(network: Network, index: ASIndex) -> Tuple[np.ndarray, ...]:
    """Relationship edges as row arrays; rejects siblings and overlaps."""
    cust_rows: List[int] = []
    prov_rows: List[int] = []
    peer_src: List[int] = []
    peer_dst: List[int] = []
    seen: Dict[Tuple[int, int], str] = {}
    for autonomous in network.ases:
        asn = autonomous.asn
        if network.siblings_of(asn):
            raise ScaleError(
                f"AS {asn} has sibling relationships; the valley-free "
                f"fast path supports customer/provider and peer edges only "
                f"(use the scalar converge())")
        row = index.of(asn)
        for provider in sorted(network.providers_of(asn)):
            pair = (min(asn, provider), max(asn, provider))
            if seen.setdefault(pair, "p2c") != "p2c":
                raise ScaleError(f"ASes {pair} carry two relationship kinds")
            cust_rows.append(row)
            prov_rows.append(index.of(provider))
        for peer in sorted(network.peers_of(asn)):
            pair = (min(asn, peer), max(asn, peer))
            if seen.setdefault(pair, "p2p") != "p2p":
                raise ScaleError(f"ASes {pair} carry two relationship kinds")
            # Directed: peer announces to asn.
            peer_src.append(index.of(peer))
            peer_dst.append(row)
    return (np.array(cust_rows, dtype=np.int64),
            np.array(prov_rows, dtype=np.int64),
            np.array(peer_src, dtype=np.int64),
            np.array(peer_dst, dtype=np.int64))


class RibArrays:
    """Selected-route arrays over ``(as_row, dest_column)``.

    ``cls``/``plen``/``nhop`` hold the selected route's class code, AS
    hops, and next-hop *row* (-1 = unreachable).  ``levels`` is the
    number of propagation levels run — the fast-path analogue of the
    scalar protocol's iteration count.
    """

    def __init__(self, index: ASIndex, dest_asns: Sequence[int],
                 cls: np.ndarray, plen: np.ndarray, nhop: np.ndarray,
                 levels: int):
        self.index = index
        self.dest_asns = [int(d) for d in dest_asns]
        self._col: Dict[int, int] = {d: j for j, d in enumerate(self.dest_asns)}
        self.cls = cls
        self.plen = plen
        self.nhop = nhop
        self.levels = levels
        self._transit: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def column_of(self, dst: int) -> int:
        try:
            return self._col[dst]
        except KeyError:
            raise ScaleError(
                f"destination AS {dst} was not in the converged set") from None

    def reachable(self, src: int, dst: int) -> bool:
        column = self.column_of(dst)
        return bool(self.cls[self.index.of(src), column] != CLASS_NONE)

    def route_class(self, src: int, dst: int) -> int:
        """Selected route's class code (``CLASS_NONE`` if unreachable)."""
        return int(self.cls[self.index.of(src), self.column_of(dst)])

    def path_length(self, src: int, dst: int) -> Optional[int]:
        column = self.column_of(dst)
        row = self.index.of(src)
        if self.cls[row, column] == CLASS_NONE:
            return None
        return int(self.plen[row, column])

    def as_path(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        """Reconstruct the selected AS path by chasing next-hop pointers."""
        column = self.column_of(dst)
        row = self.index.of(src)
        target = self.index.of(dst)
        if self.cls[row, column] == CLASS_NONE:
            return None
        path = [int(self.index.asns[row])]
        for _ in range(len(self.index)):
            if row == target:
                return tuple(path)
            row = int(self.nhop[row, column])
            path.append(int(self.index.asns[row]))
        raise ScaleError(
            f"next-hop chain from AS {src} to AS {dst} did not terminate")

    # ------------------------------------------------------------------
    # Batch analyses
    # ------------------------------------------------------------------
    def reachability_counts(self) -> np.ndarray:
        """Per-destination-column count of ASes holding a route."""
        return (self.cls != CLASS_NONE).sum(axis=0)

    def transit_load(self) -> np.ndarray:
        """Per-AS count of selected (src, dst) routes transiting it.

        Endpoints excluded, matching the scalar protocol's
        ``transit_load``.  Computed once by walking every column's
        next-hop pointers simultaneously with scatter-adds, then cached.
        """
        if self._transit is not None:
            return self._transit
        n = len(self.index)
        load = np.zeros(n, dtype=np.int64)
        for column, dst in enumerate(self.dest_asns):
            target = self.index.of(dst)
            current = np.nonzero(
                (self.cls[:, column] != CLASS_NONE)
                & (np.arange(n) != target))[0]
            current = self.nhop[current, column]
            for _ in range(n):
                current = current[current != target]
                if current.size == 0:
                    break
                np.add.at(load, current, 1)
                current = self.nhop[current, column]
        self._transit = load
        return load


def converge_valley_free(network: Network,
                         destinations: Optional[Sequence[int]] = None) -> RibArrays:
    """Compute the Gao-Rexford stable selection for every (AS, dest).

    ``destinations`` restricts the RIB to a subset of destination ASes
    (the 10^4-AS mode: full columns would be 10^8 cells); default is
    every AS.  Returns :class:`RibArrays`.
    """
    index = ASIndex.from_network(network)
    n = len(index)
    if n == 0:
        raise ScaleError("network has no ASes to route between")
    if destinations is None:
        dest_asns: List[int] = [int(a) for a in index.asns]
    else:
        dest_asns = [int(d) for d in destinations]
        if len(set(dest_asns)) != len(dest_asns):
            raise ScaleError("destination ASes must be distinct")
    dest_rows = np.array([index.of(d) for d in dest_asns], dtype=np.int64)
    d = len(dest_asns)
    cust_u, prov_p, peer_src, peer_dst = _edge_arrays(network, index)
    columns = np.arange(d)

    asn_of = index.asns
    levels = 0

    # ------------------------------------------------------------------
    # Phase 1: customer routes climb the provider DAG.
    # ------------------------------------------------------------------
    cust_len = np.full((n, d), -1, dtype=np.int64)
    cust_nh = np.full((n, d), -1, dtype=np.int64)
    cust_len[dest_rows, columns] = 0
    cust_nh[dest_rows, columns] = dest_rows
    frontier = np.zeros((n, d), dtype=bool)
    frontier[dest_rows, columns] = True
    level = 0
    while frontier.any() and cust_u.size:
        level += 1
        edge_active, col_active = np.nonzero(frontier[cust_u])
        if edge_active.size == 0:
            break
        candidate = np.full((n, d), _BIG, dtype=np.int64)
        np.minimum.at(candidate, (prov_p[edge_active], col_active),
                      asn_of[cust_u[edge_active]])
        newly = (candidate != _BIG) & (cust_len < 0)
        cust_len[newly] = level
        cust_nh[newly] = index.rows_of(candidate[newly])
        frontier = newly
    levels += level

    # ------------------------------------------------------------------
    # Phase 2: one lateral peer hop from customer-routed peers.
    # ------------------------------------------------------------------
    has_peer = np.zeros((n, d), dtype=bool)
    peer_len = np.full((n, d), -1, dtype=np.int64)
    peer_nh = np.full((n, d), -1, dtype=np.int64)
    if peer_src.size:
        edge_active, col_active = np.nonzero(cust_len[peer_src] >= 0)
        if edge_active.size:
            announcer = peer_src[edge_active]
            key = ((cust_len[announcer, col_active] + 1) << 32) \
                | asn_of[announcer]
            best = np.full((n, d), _BIG, dtype=np.int64)
            np.minimum.at(best, (peer_dst[edge_active], col_active), key)
            has_peer = (best != _BIG) & (cust_len < 0)
            peer_len[has_peer] = best[has_peer] >> 32
            peer_nh[has_peer] = index.rows_of(best[has_peer] & 0xFFFFFFFF)
        levels += 1

    # ------------------------------------------------------------------
    # Phase 3: provider routes descend the customer DAG in length order.
    # Each AS announces its *selected* route downward; selection class
    # priority means customer/peer holders are seeds and never adopt a
    # provider route themselves.
    # ------------------------------------------------------------------
    announce = np.where(cust_len >= 0, cust_len,
                        np.where(has_peer, peer_len, -1))
    settled = announce >= 0
    prov_len = np.full((n, d), -1, dtype=np.int64)
    prov_nh = np.full((n, d), -1, dtype=np.int64)
    k = 1
    # announce is zero-size when the destination set is empty (a
    # stub-less internet still converges — to an empty RIB).
    while prov_p.size and announce.size \
            and k <= int(announce.max()) + 1 and k <= n:
        edge_active, col_active = np.nonzero(
            (announce[prov_p] == k - 1) & ~settled[cust_u]
            & (prov_len[cust_u] < 0))
        if edge_active.size:
            candidate = np.full((n, d), _BIG, dtype=np.int64)
            np.minimum.at(candidate, (cust_u[edge_active], col_active),
                          asn_of[prov_p[edge_active]])
            newly = candidate != _BIG
            prov_len[newly] = k
            prov_nh[newly] = index.rows_of(candidate[newly])
            announce[newly] = k
            levels += 1
        k += 1

    # ------------------------------------------------------------------
    # Merge phases by class preference.
    # ------------------------------------------------------------------
    cls = np.full((n, d), CLASS_NONE, dtype=np.int64)
    plen = np.full((n, d), -1, dtype=np.int64)
    nhop = np.full((n, d), -1, dtype=np.int64)
    has_prov = prov_len >= 0
    cls[has_prov] = CLASS_PROVIDER
    plen[has_prov] = prov_len[has_prov]
    nhop[has_prov] = prov_nh[has_prov]
    cls[has_peer] = CLASS_PEER
    plen[has_peer] = peer_len[has_peer]
    nhop[has_peer] = peer_nh[has_peer]
    has_cust = cust_len >= 0
    cls[has_cust] = CLASS_CUSTOMER
    plen[has_cust] = cust_len[has_cust]
    nhop[has_cust] = cust_nh[has_cust]
    return RibArrays(index, dest_asns, cls, plen, nhop, max(levels, 1))
