"""Vectorized traffic-demand kernels: gravity model over stub populations.

The peering-economics layer (:mod:`tussle.peering`) needs a demand
matrix over the stub ASes of a generated internet — who sends how much
to whom — at 10^3 x 10^3 scale and beyond.  These kernels build it the
way every other at-scale workload in :mod:`tussle.scale` is built:
whole-array NumPy, no per-entry Python loops, and every random draw
seeded through an explicit substream (``digest63`` over labelled
identity components), so the matrix is a pure function of
``(stub count, seed, knobs)`` and byte-identical across runs.

Model
-----
Each stub AS gets two heavy-tailed attributes drawn from *independent*
substreams:

* ``population`` — how many eyeballs sit behind the stub (Zipf-like,
  exponent ``population_tail``); and
* ``content`` — how much content it originates (Zipf-like with a
  heavier tail, so a few stubs are hosting giants).

Demand is a directional gravity model: traffic from stub *i* to stub
*j* is proportional to ``content[i] * population[j]`` (content flows
toward eyeballs), plus a symmetric ``baseline`` gravity term
``population[i] * population[j]`` for person-to-person traffic.  The
diagonal is zero and the matrix is normalised so total demand equals
``total_demand`` exactly — experiments reason about shares, not
absolute bytes.

The directional term is what makes peering economics interesting: a
content-heavy stub's transit AS *sends* far more than it receives, and
sent volume is what transit billing meters (see
:mod:`tussle.peering.value`), so traffic imbalance surfaces as
bargaining asymmetry — the paid-peering tussle.
"""

from __future__ import annotations

import numpy as np

from ..errors import ScaleError
from ..resil.workerchaos import digest63

__all__ = ["zipf_attribute", "stub_populations", "stub_content",
           "gravity_demand"]


def zipf_attribute(n: int, seed: int, exponent: float,
                   *labels: str) -> np.ndarray:
    """A length-``n`` heavy-tailed attribute vector, deterministically.

    Values are the Zipf weights ``rank^-exponent`` (normalised to mean
    1.0) assigned to positions by a seeded permutation, so the *set* of
    values is a pure function of ``(n, exponent)`` and only the
    assignment varies with the seed.  The RNG substream is derived with
    ``digest63(seed, *labels)`` — callers give each attribute its own
    label so adding a draw to one attribute can never shift another's.
    """
    if n < 1:
        raise ScaleError("attribute vector needs at least one stub")
    if exponent < 0:
        raise ScaleError("zipf exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -exponent
    weights *= n / weights.sum()  # mean 1.0
    rng = np.random.default_rng(digest63(seed, *labels))
    return weights[rng.permutation(n)]


def stub_populations(n: int, seed: int,
                     population_tail: float = 0.8) -> np.ndarray:
    """Eyeball populations per stub (Zipf tail, mean 1.0)."""
    return zipf_attribute(n, seed, population_tail,
                          "tmatrix", "population")


def stub_content(n: int, seed: int, content_tail: float = 1.2) -> np.ndarray:
    """Content intensity per stub (heavier Zipf tail, mean 1.0)."""
    return zipf_attribute(n, seed, content_tail, "tmatrix", "content")


def gravity_demand(population: np.ndarray, content: np.ndarray,
                   total_demand: float = 1e6,
                   baseline: float = 0.25) -> np.ndarray:
    """The directional gravity demand matrix over stubs.

    ``demand[i, j]`` is traffic sent from stub ``i`` to stub ``j``:
    ``content[i] * population[j] + baseline * population[i] *
    population[j]``, zero diagonal, normalised so the matrix sums to
    ``total_demand`` exactly.  Pure whole-array kernel: no RNG, no
    loops, no mutation of its arguments.
    """
    population = np.asarray(population, dtype=np.float64)
    content = np.asarray(content, dtype=np.float64)
    if population.shape != content.shape or population.ndim != 1:
        raise ScaleError("population and content must be equal-length vectors")
    if population.size < 2:
        raise ScaleError("gravity demand needs at least two stubs")
    if total_demand <= 0:
        raise ScaleError("total_demand must be positive")
    if baseline < 0:
        raise ScaleError("baseline weight must be non-negative")
    raw = np.outer(content, population) \
        + baseline * np.outer(population, population)
    np.fill_diagonal(raw, 0.0)
    total = raw.sum()
    if total <= 0:
        raise ScaleError("gravity demand degenerated to an all-zero matrix")
    return raw * (total_demand / total)
