"""``tussle.scale`` — vectorized population kernels for large markets.

The scalar :class:`~tussle.econ.market.Market` is the readable
reference; this package is the fast backend.  Consumer populations live
in NumPy structure-of-arrays (:mod:`~tussle.scale.arrays`), each market
round runs as whole-population kernels (:mod:`~tussle.scale.kernels`),
and :class:`~tussle.scale.vmarket.VectorMarket` wraps them behind the
scalar market's interface.  The two backends are held bit-for-bit equal
by the parity harness (:mod:`~tussle.scale.parity`, also
``python -m tussle.scale parity``).  :mod:`~tussle.scale.large` builds
10^4–10^6-consumer scenarios and the L01/L02 at-scale experiments on
top.
"""

from .arrays import ConsumerBatch, MarketArrays
from .parity import ParityCase, ParityReport, parity_cases, run_parity, verify_case
from .vmarket import VectorMarket

__all__ = [
    "ConsumerBatch",
    "MarketArrays",
    "VectorMarket",
    "ParityCase",
    "ParityReport",
    "parity_cases",
    "run_parity",
    "verify_case",
]
