"""``tussle.scale`` — vectorized population kernels for markets and nets.

The scalar :class:`~tussle.econ.market.Market` and
:class:`~tussle.netsim.forwarding.ForwardingEngine` are the readable
references; this package is the fast backend for both.

Market side: consumer populations live in NumPy structure-of-arrays
(:mod:`~tussle.scale.arrays`), each market round runs as
whole-population kernels (:mod:`~tussle.scale.kernels`), and
:class:`~tussle.scale.vmarket.VectorMarket` wraps them behind the scalar
market's interface.  The backends are held bit-for-bit equal by the
parity harness (:mod:`~tussle.scale.parity`, also
``python -m tussle.scale parity``).  :mod:`~tussle.scale.large` builds
10^4–10^6-consumer scenarios and the L01/L02 at-scale experiments on
top.

Netsim side, the same recipe one rung up the fidelity ladder (see
``DESIGN.md`` "Scale backends"): packet batches and dense link/FIB
planes in :mod:`~tussle.scale.narrays`, per-round forwarding kernels in
:mod:`~tussle.scale.nkernels`,
:class:`~tussle.scale.vforwarding.VectorForwardingEngine` as the
drop-in packet-vector backend, the byte-identity gate in
:mod:`~tussle.scale.nparity` (``python -m tussle.scale netsim-parity``),
and :mod:`~tussle.scale.flowsim` as the declared flow-level
approximation for 10^6-flow populations.

Routing side: :mod:`~tussle.scale.vrouting` batches Gao-Rexford
valley-free route propagation over arrays so
``PathVectorRouting.converge_fast()`` reaches the scalar protocol's
fixed point on 10^3-10^4-AS graphs in seconds
(``tests/topogen/test_fastpath.py`` holds the backends path-identical).
"""

from .arrays import ConsumerBatch, MarketArrays
from .flowsim import FlowArrays, FlowReport, FlowSim, random_flows
from .narrays import (
    FibArrays,
    LinkArrays,
    NetIndex,
    PacketArrays,
    packets_from_traffic,
    traffic_stream,
)
from .nparity import (
    NetParityCase,
    NetParityReport,
    netsim_parity_cases,
    run_netsim_parity,
    verify_netsim_case,
)
from .parity import ParityCase, ParityReport, parity_cases, run_parity, verify_case
from .tmatrix import (
    gravity_demand,
    stub_content,
    stub_populations,
    zipf_attribute,
)
from .vforwarding import NetRound, VectorForwardingEngine
from .vmarket import VectorMarket
from .vrouting import ASIndex, RibArrays, converge_valley_free

__all__ = [
    "ConsumerBatch",
    "MarketArrays",
    "VectorMarket",
    "ParityCase",
    "ParityReport",
    "parity_cases",
    "run_parity",
    "verify_case",
    # netsim backend
    "NetIndex",
    "LinkArrays",
    "FibArrays",
    "PacketArrays",
    "traffic_stream",
    "packets_from_traffic",
    "NetRound",
    "VectorForwardingEngine",
    "NetParityCase",
    "NetParityReport",
    "netsim_parity_cases",
    "run_netsim_parity",
    "verify_netsim_case",
    # flow-level approximation
    "FlowArrays",
    "FlowReport",
    "FlowSim",
    "random_flows",
    # valley-free convergence fast path
    "ASIndex",
    "RibArrays",
    "converge_valley_free",
    # gravity traffic-demand kernels
    "zipf_attribute",
    "stub_populations",
    "stub_content",
    "gravity_demand",
]
