"""Structure-of-arrays snapshots of networks, FIBs and packet batches.

The scalar :class:`~tussle.netsim.forwarding.ForwardingEngine` walks
Python objects hop by hop; the vectorized backend walks dense NumPy
matrices.  This module is the bridge, mirroring :mod:`tussle.scale.arrays`
for the network substrate:

* :class:`NetIndex` — the node-name <-> column-index mapping.  Indices
  follow :meth:`~tussle.netsim.topology.Network.node_names` insertion
  order, so array row ``i`` always means the ``i``-th added node.
* :class:`LinkArrays` — dense ``(n, n)`` latency/capacity planes plus a
  usability mask with exactly the semantics of
  :func:`tussle.netsim.decision.link_usable` (missing, down and
  zero-capacity links are all unusable).
* :class:`FibArrays` — dense ``(n, n)`` next-hop indices built from the
  scalar engine's exact-destination tables (``-1`` = no route).
* :class:`PacketArrays` — per-packet src/dst/ToS columns and the mutable
  journey state (current node, accumulated latency, status, path length)
  the vector engine updates round by round.

Shared randomness, not re-drawn randomness
------------------------------------------
:func:`traffic_stream` is the *single* source of traffic for both
backends: one ``random.Random(seed)`` draw sequence produces plain
``(src, dst, tos)`` triples.  The scalar oracle wraps them into
:class:`~tussle.netsim.packets.Packet` objects
(:func:`packets_from_traffic`), the vector backend folds them into
columns (:meth:`PacketArrays.from_traffic`) — so both consume the very
same draws in the very same order and parity holds byte for byte, not
merely in distribution.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ScaleError
from ..netsim.decision import link_usable
from ..netsim.packets import Header, Packet
from ..netsim.qos import PRIORITY_TOS
from ..netsim.topology import Network

__all__ = [
    "NetIndex",
    "LinkArrays",
    "FibArrays",
    "PacketArrays",
    "traffic_stream",
    "packets_from_traffic",
]


class NetIndex:
    """Bidirectional node-name <-> array-index mapping."""

    def __init__(self, names: Sequence[str]):
        self.names: List[str] = list(names)
        self.index: Dict[str, int] = {name: i
                                      for i, name in enumerate(self.names)}
        if len(self.index) != len(self.names):
            raise ScaleError("node names must be unique")

    @classmethod
    def from_network(cls, network: Network) -> "NetIndex":
        """Index nodes in insertion order (``Network.node_names``)."""
        return cls(network.node_names())

    def __len__(self) -> int:
        return len(self.names)

    def of(self, name: str) -> int:
        try:
            return self.index[name]
        except KeyError:
            raise ScaleError(f"unknown node {name!r}") from None


class LinkArrays:
    """Dense per-link planes: latency, capacity, and usability.

    ``usable[i, j]`` is True iff a link exists between nodes ``i`` and
    ``j``, is up, and has positive capacity — element-wise
    :func:`tussle.netsim.decision.link_usable`.  Latency/capacity hold
    0.0 where no link exists (never read behind the mask).
    """

    def __init__(self, latency: np.ndarray, capacity: np.ndarray,
                 usable: np.ndarray):
        self.latency = latency
        self.capacity = capacity
        self.usable = usable

    @classmethod
    def from_network(cls, network: Network, index: NetIndex) -> "LinkArrays":
        n = len(index)
        latency = np.zeros((n, n), dtype=np.float64)
        capacity = np.zeros((n, n), dtype=np.float64)
        usable = np.zeros((n, n), dtype=bool)
        for link in network.links:
            i = index.of(link.a)
            j = index.of(link.b)
            latency[i, j] = latency[j, i] = link.latency
            capacity[i, j] = capacity[j, i] = link.capacity
            usable[i, j] = usable[j, i] = link_usable(
                True, link.up, link.capacity)
        return cls(latency, capacity, usable)

    def nbytes(self) -> int:
        return (self.latency.nbytes + self.capacity.nbytes
                + self.usable.nbytes)


class FibArrays:
    """Dense next-hop matrix: ``next_hop[node, dst]`` (-1 = no route)."""

    def __init__(self, next_hop: np.ndarray):
        self.next_hop = next_hop

    @classmethod
    def from_tables(cls, tables: Dict[str, Dict[str, str]],
                    index: NetIndex) -> "FibArrays":
        n = len(index)
        next_hop = np.full((n, n), -1, dtype=np.int64)
        for node, table in tables.items():
            i = index.of(node)
            for dst, nxt in table.items():
                next_hop[i, index.of(dst)] = index.of(nxt)
        return cls(next_hop)

    def nbytes(self) -> int:
        return self.next_hop.nbytes


class PacketArrays:
    """Column-oriented packet batch plus mutable journey state.

    Static columns (``src``, ``dst``, ``tos``) describe the traffic;
    the journey columns (``current``, ``latency``, ``status``, ``hops``,
    ``prioritized``) are written by
    :meth:`~tussle.scale.vforwarding.VectorForwardingEngine.send_batch`
    and read back by the parity harness.  ``hops`` counts path *nodes*
    (the scalar receipt's ``len(path)``), so it starts at 1.
    """

    def __init__(self, src: np.ndarray, dst: np.ndarray, tos: np.ndarray):
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.tos = np.asarray(tos, dtype=np.int64)
        n = self.src.shape[0]
        for column in (self.dst, self.tos):
            if column.shape != (n,):
                raise ScaleError(
                    f"packet columns must share shape ({n},), "
                    f"got {column.shape}")
        self.current = self.src.copy()
        self.latency = np.zeros(n, dtype=np.float64)
        self.status = np.zeros(n, dtype=np.int64)
        self.hops = np.ones(n, dtype=np.int64)
        self.prioritized = np.zeros(n, dtype=bool)

    @classmethod
    def from_traffic(cls, traffic: Sequence[Tuple[str, str, int]],
                     index: NetIndex) -> "PacketArrays":
        """Fold ``(src, dst, tos)`` triples into columns."""
        src = np.array([index.of(s) for s, _, _ in traffic], dtype=np.int64)
        dst = np.array([index.of(d) for _, d, _ in traffic], dtype=np.int64)
        tos = np.array([t for _, _, t in traffic], dtype=np.int64)
        return cls(src, dst, tos)

    def __len__(self) -> int:
        return int(self.src.shape[0])

    def nbytes(self) -> int:
        return sum(column.nbytes for column in (
            self.src, self.dst, self.tos, self.current, self.latency,
            self.status, self.hops, self.prioritized))


def traffic_stream(
    node_names: Sequence[str],
    n_packets: int,
    seed: int,
    priority_fraction: float = 0.25,
    priority_tos: int = PRIORITY_TOS,
) -> List[Tuple[str, str, int]]:
    """The shared traffic sample both backends replay.

    One ``random.Random(seed)`` stream, three draws per packet in a fixed
    order (source, destination, priority coin), destinations never equal
    sources.  Any backend consuming this list sees identical traffic —
    the netsim analogue of ``MarketArrays.taste_matrix``.
    """
    names = list(node_names)
    if len(names) < 2:
        raise ScaleError("traffic needs at least two nodes")
    rng = random.Random(seed)
    out: List[Tuple[str, str, int]] = []
    for _ in range(n_packets):
        src = rng.randrange(len(names))
        dst = rng.randrange(len(names) - 1)
        if dst >= src:
            dst += 1
        tos = priority_tos if rng.random() < priority_fraction else 0
        out.append((names[src], names[dst], tos))
    return out


def packets_from_traffic(
    traffic: Sequence[Tuple[str, str, int]],
    application: str = "generic",
) -> List[Packet]:
    """Materialize scalar ``Packet`` objects for the oracle backend.

    Headers are built directly (not via ``make_packet``) so the batch
    depends only on the traffic triples, not on the global packet-id
    counter's position.
    """
    return [
        Packet(header=Header(src=src, dst=dst, tos=tos),
               application=application)
        for src, dst, tos in traffic
    ]
