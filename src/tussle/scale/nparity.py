"""Scalar-vs-vector netsim parity harness.

The ``tussle.scale`` netsim contract is: swapping
:class:`~tussle.netsim.forwarding.ForwardingEngine` for
:class:`~tussle.scale.vforwarding.VectorForwardingEngine` changes
*nothing* but wall time.  This module enforces it: every parity case
builds one engine of each backend from two calls to the same spec
function (identical seeds, fresh networks), replays the *same*
:func:`~tussle.scale.narrays.traffic_stream` through both, and compares

* every :class:`~tussle.scale.vforwarding.NetRound` field of every
  round — delivery/failure counts, in-flight population, per-round
  latency totals, QoS priority counts and billing revenue — against the
  same records derived from the scalar engine's receipts,
* the final per-packet state (status, path length, accumulated latency,
  delivery node, priority classification).

Cases span the topology shapes the experiments actually forward over —
lines, stars, dumbbells, rings, grids, trees, multihomed graphs — plus
the adversarial shapes the edge-case tests pin: partitioned graphs
(no-route), seeded link failures and a zero-capacity bottleneck
(link-down), and deliberately looping tables (TTL-exceeded).  Exposed as
``python -m tussle.scale netsim-parity`` and as a blocking test in
``tests/scale/test_netsim_parity.py``.

Float fields are compared with ``==`` (no tolerance): the backends are
built to agree byte for byte, and any drift is a kernel bug, not noise
to paper over.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..canon import canonical_json
from ..errors import ScaleError
from ..netsim.decision import MAX_TTL
from ..netsim.forwarding import DeliveryStatus, ForwardingEngine
from ..netsim.qos import PRIORITY_TOS, TosQosClassifier
from ..netsim.topology import (
    Network,
    dumbbell_topology,
    line_topology,
    multihomed_topology,
    star_topology,
)
from .narrays import NetIndex, PacketArrays, packets_from_traffic, traffic_stream
from .parity import PARITY_SEEDS, _MAX_MISMATCHES
from .vforwarding import NetRound, VectorForwardingEngine

__all__ = [
    "NetParityCase",
    "NetParityReport",
    "netsim_parity_cases",
    "scalar_round_records",
    "verify_netsim_case",
    "run_netsim_parity",
]

#: Per-packet billing rate used by the QoS-enabled parity cases.
_BILL = 0.75

_ROUND_FIELDS = ("index", "delivered", "no_route", "link_down",
                 "ttl_exceeded", "in_flight", "latency", "prioritized",
                 "revenue")


@dataclass
class NetParityCase:
    """One forwarding configuration to parity-check.

    ``spec`` maps a seed to a fresh ``(network, tables, traffic)``
    triple: ``tables`` is ``None`` for shortest-path forwarding, else an
    explicit table dict; ``traffic`` is the shared ``(src, dst, tos)``
    sample both backends replay.
    """

    label: str
    spec: Callable[[int], Tuple[Network, Optional[Dict[str, Dict[str, str]]],
                                List[Tuple[str, str, int]]]]
    bill_per_packet: float = _BILL


@dataclass
class NetParityReport:
    """Outcome of one (case, seed) comparison.

    ``divergence`` localizes a round-record failure as a
    :class:`~tussle.obs.diff.Divergence` over the canonical-JSON round
    streams of both backends — the first divergent round, with aligned
    context and the changed fields named.
    """

    label: str
    seed: int
    rounds: int
    n_packets: int
    mismatches: List[str] = field(default_factory=list)
    divergence: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches


# ----------------------------------------------------------------------
# Topology builders for shapes the stock builders do not cover
# ----------------------------------------------------------------------
def _ring_topology(n: int) -> Network:
    net = line_topology(n, prefix="r")
    net.add_link(f"r{n-1}", "r0", latency=0.01)
    return net


def _grid_topology(rows: int, cols: int) -> Network:
    net = Network()
    for r in range(rows):
        for c in range(cols):
            net.add_node(f"g{r}-{c}")
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.add_link(f"g{r}-{c}", f"g{r}-{c+1}", latency=0.01)
            if r + 1 < rows:
                net.add_link(f"g{r}-{c}", f"g{r+1}-{c}", latency=0.02)
    return net


def _tree_topology(depth: int) -> Network:
    net = Network()
    net.add_node("t1")
    for i in range(2, 2 ** depth):
        net.add_node(f"t{i}")
        net.add_link(f"t{i}", f"t{i // 2}", latency=0.005)
    return net


def _partitioned_topology() -> Network:
    net = Network()
    for i in range(4):
        net.add_node(f"a{i}")
        net.add_node(f"b{i}")
    for i in range(3):
        net.add_link(f"a{i}", f"a{i+1}", latency=0.01)
        net.add_link(f"b{i}", f"b{i+1}", latency=0.01)
    return net


def _loop_tables_network() -> Tuple[Network, Dict[str, Dict[str, str]]]:
    """Tables with a deliberate a<->b loop toward ``c`` (TTL exercise)."""
    net = Network()
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b", latency=0.01)
    net.add_link("b", "c", latency=0.01)
    tables = {
        "a": {"c": "b", "b": "b"},
        "b": {"c": "a", "a": "a"},  # the loop: b sends c-bound traffic back
        "c": {"a": "b", "b": "b"},
    }
    return net, tables


def _self_loop_tables_network() -> Tuple[Network, Dict[str, Dict[str, str]]]:
    """A table whose next hop is the current node (self-loops never link)."""
    net = Network()
    for name in ("a", "b", "c"):
        net.add_node(name)
    net.add_link("a", "b", latency=0.01)
    net.add_link("b", "c", latency=0.01)
    tables = {
        "a": {"c": "a", "b": "b"},  # a's route to c points at a itself
        "b": {"c": "c", "a": "a"},
        "c": {"a": "b", "b": "b"},
    }
    return net, tables


def netsim_parity_cases() -> List[NetParityCase]:
    """The >= 10 forwarding configurations the gate checks per seed."""
    cases: List[NetParityCase] = []

    def shortest(label: str, build: Callable[[], Network],
                 n_packets: int) -> None:
        def spec(seed: int):
            net = build()
            return net, None, traffic_stream(net.node_names(), n_packets,
                                             seed)
        cases.append(NetParityCase(label=label, spec=spec))

    shortest("line-8", lambda: line_topology(8), 120)
    shortest("star-12", lambda: star_topology(12), 150)
    shortest("dumbbell-6x6", lambda: dumbbell_topology(6, 6), 150)
    shortest("ring-10", lambda: _ring_topology(10), 120)
    shortest("grid-5x5", lambda: _grid_topology(5, 5), 200)
    shortest("tree-d4", lambda: _tree_topology(4), 150)
    shortest("multihomed-3", lambda: multihomed_topology(3), 80)
    shortest("partitioned", _partitioned_topology, 120)

    def failed_links_spec(seed: int):
        net = star_topology(14)
        fail_rng = random.Random(seed + 7)
        for leaf in range(14):
            if fail_rng.random() < 0.25:
                net.fail_link("hub", f"leaf{leaf}")
        return net, None, traffic_stream(net.node_names(), 150, seed)
    cases.append(NetParityCase(label="star-14-failed-links",
                               spec=failed_links_spec))

    def zero_capacity_spec(seed: int):
        net = dumbbell_topology(5, 5, bottleneck_capacity=0.0)
        return net, None, traffic_stream(net.node_names(), 150, seed)
    cases.append(NetParityCase(label="dumbbell-zero-capacity",
                               spec=zero_capacity_spec))

    def loop_spec(seed: int):
        net, tables = _loop_tables_network()
        return net, tables, traffic_stream(net.node_names(), 60, seed)
    cases.append(NetParityCase(label="loop-tables", spec=loop_spec))

    def self_loop_spec(seed: int):
        net, tables = _self_loop_tables_network()
        return net, tables, traffic_stream(net.node_names(), 60, seed)
    cases.append(NetParityCase(label="self-loop-tables",
                               spec=self_loop_spec))

    return cases


# ----------------------------------------------------------------------
# The scalar oracle: round records derived from receipts
# ----------------------------------------------------------------------
_RESOLVABLE = (DeliveryStatus.DELIVERED, DeliveryStatus.NO_ROUTE,
               DeliveryStatus.LINK_DOWN, DeliveryStatus.TTL_EXCEEDED)


def _resolution_round(receipt) -> int:
    """Which vector round a receipt's outcome lands in.

    DELIVERED after ``k`` moves (``len(path) == k + 1``) resolves in
    round ``k``; NO_ROUTE/LINK_DOWN fail *attempting* move ``len(path)``
    without making it; TTL_EXCEEDED always resolves at ``MAX_TTL``.
    """
    if receipt.status is DeliveryStatus.DELIVERED:
        return len(receipt.path) - 1
    if receipt.status is DeliveryStatus.TTL_EXCEEDED:
        return MAX_TTL
    return len(receipt.path)


def scalar_round_records(
    engine: ForwardingEngine,
    packets,
    classifier: Optional[TosQosClassifier] = None,
) -> Tuple[List[NetRound], List[dict]]:
    """Run the scalar engine and derive vector-shaped round records.

    Returns ``(rounds, final_states)``: the same :class:`NetRound`
    stream the vector backend emits, plus one per-packet state dict in
    packet order.  Raises :class:`~tussle.errors.ScaleError` on receipt
    statuses outside the vectorized fragment (middlebox interference,
    refused source routes) — the oracle refuses to compare apples to
    oranges.
    """
    prioritized_flags = []
    if classifier is not None:
        for packet in packets:
            prioritized_flags.append(classifier.prioritize(packet))
        revenue = classifier.revenue
    else:
        prioritized_flags = [False] * len(packets)
        revenue = 0.0

    receipts = [engine.send(packet) for packet in packets]
    for receipt in receipts:
        if receipt.status not in _RESOLVABLE:
            raise ScaleError(
                f"scalar oracle saw {receipt.status.value!r}; the "
                f"vectorized fragment has no middleboxes or source routes")

    network = engine.network
    last_round = 0
    for receipt in receipts:
        last_round = max(last_round, _resolution_round(receipt))

    rounds: List[NetRound] = []
    in_flight = len(receipts)
    for r in range(last_round + 1):
        delivered = no_route = link_down = ttl = 0
        latency_total = 0.0
        for receipt in receipts:
            if r >= 1 and len(receipt.path) >= r + 1:
                # This packet made its r-th move: accrue that link.
                latency_total += network.link(
                    receipt.path[r - 1], receipt.path[r]).latency
            if _resolution_round(receipt) != r:
                continue
            if receipt.status is DeliveryStatus.DELIVERED:
                delivered += 1
            elif receipt.status is DeliveryStatus.NO_ROUTE:
                no_route += 1
            elif receipt.status is DeliveryStatus.LINK_DOWN:
                link_down += 1
            else:
                ttl += 1
        in_flight -= delivered + no_route + link_down + ttl
        rounds.append(NetRound(
            index=r,
            delivered=delivered,
            no_route=no_route,
            link_down=link_down,
            ttl_exceeded=ttl,
            in_flight=in_flight,
            latency=latency_total,
            prioritized=sum(1 for flag in prioritized_flags if flag)
            if r == 0 else 0,
            revenue=revenue if r == 0 else 0.0,
        ))

    finals = [
        {
            "status": receipt.status.value,
            "hops": len(receipt.path),
            "latency": receipt.latency,
            "delivered_to": receipt.delivered_to,
            "prioritized": prioritized_flags[i],
        }
        for i, receipt in enumerate(receipts)
    ]
    return rounds, finals


def _vector_final_states(engine: VectorForwardingEngine,
                         packets: PacketArrays) -> List[dict]:
    return [
        {
            "status": engine.status_name(packets.status[i]),
            "hops": int(packets.hops[i]),
            "latency": float(packets.latency[i]),
            "delivered_to": engine.delivered_to(packets, i),
            "prioritized": bool(packets.prioritized[i]),
        }
        for i in range(len(packets))
    ]


def _round_lines(history: Sequence[NetRound]) -> List[str]:
    """Canonical-JSON record stream of a backend's round history."""
    return [canonical_json(record.to_dict()) for record in history]


def _compare_round(scalar: NetRound, vector: NetRound) -> List[str]:
    mismatches = []
    for name in _ROUND_FIELDS:
        scalar_value = getattr(scalar, name)
        vector_value = getattr(vector, name)
        if scalar_value != vector_value:
            mismatches.append(
                f"round {scalar.index}: {name} scalar={scalar_value!r} "
                f"vector={vector_value!r}")
    return mismatches


def verify_netsim_case(case: NetParityCase, seed: int) -> NetParityReport:
    """Run both backends from one spec and compare everything."""
    s_net, s_tables, s_traffic = case.spec(seed)
    v_net, v_tables, v_traffic = case.spec(seed)

    scalar = ForwardingEngine(s_net)
    if s_tables is None:
        scalar.install_shortest_path_tables()
    else:
        scalar.install_tables(s_tables)
    classifier = TosQosClassifier(threshold=PRIORITY_TOS,
                                  bill_per_packet=case.bill_per_packet)
    scalar_rounds, scalar_finals = scalar_round_records(
        scalar, packets_from_traffic(s_traffic), classifier)

    vector = VectorForwardingEngine(v_net)
    if v_tables is None:
        vector.install_shortest_path_tables()
    else:
        vector.install_tables(v_tables)
    batch = PacketArrays.from_traffic(v_traffic,
                                      NetIndex.from_network(v_net))
    vector_rounds = vector.send_batch(
        batch, tos_threshold=PRIORITY_TOS,
        bill_per_packet=case.bill_per_packet)
    vector_finals = _vector_final_states(vector, batch)

    report = NetParityReport(label=case.label, seed=seed,
                             rounds=len(scalar_rounds),
                             n_packets=len(s_traffic))
    mismatches = report.mismatches

    def localize() -> None:
        # Pinpoint the first divergent round record with aligned context
        # (the same machinery as ``python -m tussle.obs diff``).
        from ..obs.diff import first_divergence
        report.divergence = first_divergence(
            _round_lines(scalar_rounds), _round_lines(vector_rounds))

    if len(scalar_rounds) != len(vector_rounds):
        mismatches.append(
            f"history length scalar={len(scalar_rounds)} "
            f"vector={len(vector_rounds)}")
        localize()
        return report
    for scalar_round, vector_round in zip(scalar_rounds, vector_rounds):
        mismatches.extend(_compare_round(scalar_round, vector_round))
        if len(mismatches) >= _MAX_MISMATCHES:
            localize()
            return report
    if mismatches:
        localize()

    for i, (s_state, v_state) in enumerate(zip(scalar_finals,
                                               vector_finals)):
        for name in ("status", "hops", "latency", "delivered_to",
                     "prioritized"):
            if s_state[name] != v_state[name]:
                mismatches.append(
                    f"packet {i}: {name} scalar={s_state[name]!r} "
                    f"vector={v_state[name]!r}")
        if len(mismatches) >= _MAX_MISMATCHES:
            return report
    return report


def run_netsim_parity(
    cases: Optional[Sequence[NetParityCase]] = None,
    seeds: Sequence[int] = PARITY_SEEDS,
) -> List[NetParityReport]:
    """Verify every case under every seed; returns one report per pair."""
    reports = []
    for case in (netsim_parity_cases() if cases is None else cases):
        for seed in seeds:
            reports.append(verify_netsim_case(case, seed))
    return reports
