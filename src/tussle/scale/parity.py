"""Scalar-vs-vector parity harness.

The whole ``tussle.scale`` contract is: swapping
:class:`~tussle.econ.market.Market` for
:class:`~tussle.scale.vmarket.VectorMarket` changes *nothing* but wall
time.  This module enforces it: every parity case builds one market of
each backend from two calls to the same experiment spec function
(identical seeds, fresh objects), runs both for the experiment's round
count, and compares

* every :class:`~tussle.econ.market.MarketRound` field of every round
  (prices, switches, surplus, profit, tunnelling, per-provider shares),
* the final per-consumer state (provider, accumulated surplus, switch
  count, tunnelling posture).

Cases are the *actual* E01/E02/E03 cell configurations — the lock-in
sweep's addressing-derived switching costs, all five value-pricing
cells, all six broadband structure x regime cells — each across several
seeds.  Exposed as ``python -m tussle.scale parity`` and as a blocking
test in ``tests/scale/test_parity.py``.

Float fields are compared with ``==`` (no tolerance): the backends are
built to agree bit for bit, and any drift is a bug in a kernel, not
noise to paper over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence

from ..econ.accesstech import AccessRegime, access_market_spec
from ..econ.market import Market, MarketRound
from ..experiments.e01_lockin import LOCKIN_SCENARIOS, lockin_market_spec
from ..experiments.e02_value_pricing import value_pricing_market_spec
from ..experiments.e03_broadband import scenario_facilities
from ..netsim.addressing import AddressingMode, RenumberingModel
from .vmarket import VectorMarket

__all__ = [
    "ParityCase",
    "ParityReport",
    "PARITY_SEEDS",
    "parity_cases",
    "verify_case",
    "run_parity",
]

#: Seeds every case is checked under (>= 5 per the acceptance contract).
PARITY_SEEDS = (7, 11, 3, 23, 101)

#: Mismatches reported per case before truncating — one is already fatal.
_MAX_MISMATCHES = 8

_ROUND_FIELDS = ("index", "mean_price", "switches", "consumer_surplus",
                 "provider_profit", "tunnelling_consumers", "shares")


@dataclass
class ParityCase:
    """One experiment configuration to parity-check.

    ``spec`` maps a seed to fresh ``Market``/``VectorMarket`` kwargs.
    """

    label: str
    rounds: int
    spec: Callable[[int], Dict[str, object]]


@dataclass
class ParityReport:
    """Outcome of one (case, seed) comparison.

    ``divergence`` localizes the failure when round histories disagree:
    the first divergent round record as a :class:`~tussle.obs.diff.
    Divergence` (aligned context, changed fields), computed over the
    canonical-JSON round streams of both backends.
    """

    label: str
    seed: int
    rounds: int
    n_consumers: int
    mismatches: List[str] = field(default_factory=list)
    divergence: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.mismatches


def parity_cases() -> List[ParityCase]:
    """The E01/E02/E03 cell configurations at their experiment defaults."""
    cases: List[ParityCase] = []

    model = RenumberingModel()
    for label, mode in LOCKIN_SCENARIOS:
        provider_independent = mode is None
        cost = model.switching_cost(
            20, mode or AddressingMode.STATIC,
            provider_independent=provider_independent,
        )
        cases.append(ParityCase(
            label=f"e01-{label}",
            rounds=30,
            spec=partial(lockin_market_spec, cost, 120),
        ))

    for label, n_providers, can_tunnel, detects in (
        ("monopoly", 1, False, False),
        ("monopoly+tunnels", 1, True, False),
        ("competitive", 4, False, False),
        ("competitive+tunnels", 4, True, False),
        ("monopoly+dpi", 1, True, True),
    ):
        cases.append(ParityCase(
            label=f"e02-{label}",
            rounds=25,
            spec=partial(value_pricing_market_spec, n_providers,
                         can_tunnel, detects, 150),
        ))

    for scenario, regime in (
        ("dialup-era", AccessRegime.OPEN_NATURAL_BOUNDARY),
        ("duopoly", AccessRegime.CLOSED),
        ("duopoly", AccessRegime.OPEN_WRONG_BOUNDARY),
        ("duopoly", AccessRegime.OPEN_NATURAL_BOUNDARY),
        ("duopoly+muni-fiber", AccessRegime.CLOSED),
        ("duopoly+muni-fiber", AccessRegime.OPEN_NATURAL_BOUNDARY),
    ):
        cases.append(ParityCase(
            label=f"e03-{scenario}-{regime.value}",
            rounds=30,
            spec=_access_spec_builder(scenario, regime),
        ))
    return cases


def _access_spec_builder(scenario: str, regime: AccessRegime
                         ) -> Callable[[int], Dict[str, object]]:
    def build(seed: int) -> Dict[str, object]:
        return access_market_spec(
            scenario_facilities(scenario), regime, n_consumers=200, seed=seed)
    return build


def _round_lines(history: Sequence[MarketRound]) -> List[str]:
    """Canonical-JSON record stream of a backend's round history."""
    from ..canon import canonical_json
    return [
        canonical_json({name: getattr(market_round, name)
                        for name in _ROUND_FIELDS})
        for market_round in history
    ]


def _compare_round(scalar: MarketRound, vector: MarketRound) -> List[str]:
    mismatches = []
    for name in _ROUND_FIELDS:
        scalar_value = getattr(scalar, name)
        vector_value = getattr(vector, name)
        if scalar_value != vector_value:
            mismatches.append(
                f"round {scalar.index}: {name} scalar={scalar_value!r} "
                f"vector={vector_value!r}")
    return mismatches


def verify_case(case: ParityCase, seed: int) -> ParityReport:
    """Run both backends from one spec and compare everything."""
    scalar = Market(**case.spec(seed))
    vector = VectorMarket(**case.spec(seed))
    scalar.run(case.rounds)
    vector.run(case.rounds)

    report = ParityReport(label=case.label, seed=seed, rounds=case.rounds,
                          n_consumers=len(scalar.consumers))
    mismatches = report.mismatches

    def localize() -> None:
        # Pinpoint the first divergent round record with aligned context
        # (the same machinery as ``python -m tussle.obs diff``).
        from ..obs.diff import first_divergence
        report.divergence = first_divergence(
            _round_lines(scalar.history), _round_lines(vector.history))

    if len(scalar.history) != len(vector.history):
        mismatches.append(
            f"history length scalar={len(scalar.history)} "
            f"vector={len(vector.history)}")
        localize()
        return report
    for scalar_round, vector_round in zip(scalar.history, vector.history):
        mismatches.extend(_compare_round(scalar_round, vector_round))
        if len(mismatches) >= _MAX_MISMATCHES:
            localize()
            return report
    if mismatches:
        localize()

    arrays = vector.arrays
    for i, consumer in enumerate(scalar.consumers):
        state = {
            "provider": (consumer.provider, arrays.provider_of(i)),
            "surplus": (consumer.surplus, float(arrays.surplus[i])),
            "switches": (consumer.switches, int(arrays.switches[i])),
            "tunnelling": (consumer.tunnelling, bool(arrays.tunnelling[i])),
        }
        for name, (scalar_value, vector_value) in state.items():
            if scalar_value != vector_value:
                mismatches.append(
                    f"consumer {i}: {name} scalar={scalar_value!r} "
                    f"vector={vector_value!r}")
        if len(mismatches) >= _MAX_MISMATCHES:
            return report
    return report


def run_parity(
    cases: Optional[Sequence[ParityCase]] = None,
    seeds: Sequence[int] = PARITY_SEEDS,
) -> List[ParityReport]:
    """Verify every case under every seed; returns one report per pair."""
    reports = []
    for case in (parity_cases() if cases is None else cases):
        for seed in seeds:
            reports.append(verify_case(case, seed))
    return reports
