"""Vectorized market-round kernels.

Each kernel is the NumPy mirror of one piece of the scalar round in
:meth:`tussle.econ.market.Market.step`, with the decision semantics of
:mod:`tussle.econ.decision` applied element-wise.  The contract is *bit
parity*, not statistical agreement, which constrains how these are
written:

* **No reassociation.**  Float expressions keep the scalar's
  left-to-right grouping — ``(wtp + server_value) - price`` — because
  IEEE addition is not associative and any regrouping flips low bits.
* **Order-sensitive reductions use ``cumsum``.**  ``np.sum`` reduces
  pairwise; ``np.cumsum`` accumulates strictly left to right like the
  scalar ``+=`` loop, so ordered totals take ``cumsum(...)[-1]``.
  Zero-padding the skipped terms is safe because ``t + 0.0`` is a
  bitwise no-op for every accumulator value these streams produce
  (the running totals never become ``-0.0``).
* **Provider choice is a sequential scan, not ``argmax``.**  The scalar
  rule updates its best candidate only on a *strict* improvement beyond
  ``TIE_EPSILON`` while visiting providers in sorted-name order — a
  path-dependent fold that plain ``argmax`` cannot reproduce.  The scan
  here loops over the (few) provider columns and stays vectorized
  across the population axis.

Kernels never loop over the population: the only Python ``for`` ranges
over provider columns, of which there are a handful.  Lint rule D111
enforces this.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..econ.decision import TIE_EPSILON
from .arrays import MarketArrays

__all__ = [
    "effective_offer_column",
    "amount_paid_values",
    "best_provider",
    "switching_masks",
    "ordered_total",
    "apply_surplus_updates",
    "per_provider_revenue",
    "subscriber_counts",
    "round_kernel_bytes",
]


def effective_offer_column(
    arrays: MarketArrays,
    *,
    price: float,
    business_price: Optional[float],
    detects_tunnels: bool,
    server_prohibited_without_tier: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """One provider's raw offer to every consumer: (surplus, tunnels).

    Element-wise mirror of :func:`tussle.econ.decision.effective_offer`.
    The scalar rule takes ``max`` over options listed in a fixed order
    and keeps the *first* maximum; here the surplus starts at the first
    option (forgo) and later options replace it only on a strictly
    greater value, which reproduces first-wins tie-breaking exactly.
    """
    forgo = arrays.wtp - price
    surplus = forgo
    tunnels = np.zeros(len(arrays), dtype=bool)
    tiered = business_price is not None
    if tiered and server_prohibited_without_tier:
        with_server = arrays.wtp + arrays.server_value
        open_offer = with_server - business_price
        take_open = arrays.values_server & (open_offer > surplus)
        surplus = np.where(take_open, open_offer, surplus)
        if not detects_tunnels:
            tunnel_offer = (with_server - price) - arrays.tunnel_cost
            take_tunnel = (arrays.values_server & arrays.can_tunnel
                           & (tunnel_offer > surplus))
            surplus = np.where(take_tunnel, tunnel_offer, surplus)
            tunnels = take_tunnel
    else:
        with_server_offer = (arrays.wtp + arrays.server_value) - price
        take = arrays.values_server & (with_server_offer > surplus)
        surplus = np.where(take, with_server_offer, surplus)
    return surplus, tunnels


def amount_paid_values(
    wtp: np.ndarray,
    server_value: np.ndarray,
    values_server: np.ndarray,
    tunnels: np.ndarray,
    *,
    price: float,
    business_price: Optional[float],
    server_prohibited_without_tier: bool,
) -> np.ndarray:
    """What each consumer pays their (already chosen) provider.

    Element-wise mirror of :func:`tussle.econ.decision.amount_paid`:
    basic rate unless the consumer openly runs a server on a tiered
    provider, where "openly" is re-derived from the same surplus
    comparison (``open >= forgo``) the scalar uses.
    """
    paid = np.full(wtp.shape[0], price, dtype=np.float64)
    if business_price is not None and server_prohibited_without_tier:
        open_surplus = (wtp + server_value) - business_price
        forgo_surplus = wtp - price
        pays_tier = values_server & ~tunnels & (open_surplus >= forgo_surplus)
        paid = np.where(pays_tier, business_price, paid)
    return paid


def best_provider(
    offer_columns: Sequence[np.ndarray],
    tunnel_columns: Sequence[np.ndarray],
    taste: Optional[np.ndarray],
    switching_cost: np.ndarray,
    assignment: np.ndarray,
    free_switch: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Choose each consumer's best provider: (column, raw surplus, tunnels).

    Sequential scan over provider columns (sorted-name order), updating
    the running best only where ``surplus > best + TIE_EPSILON`` —
    exactly ``Market._best_offer``.  Taste is added after the raw offer
    and the switching cost subtracted after taste, preserving the
    scalar's ``+=``/``-=`` operation order.  When ``taste`` is None the
    scalar adds a literal ``0.0``; skipping that here is bit-safe
    because raw offers are never ``-0.0`` (they are differences of
    distinct positive quantities) and the sign of zero does not affect
    the comparison.
    """
    n = switching_cost.shape[0]
    best_surplus = np.full(n, -np.inf, dtype=np.float64)
    best_column = np.full(n, -1, dtype=np.int64)
    best_raw = np.zeros(n, dtype=np.float64)
    best_tunnels = np.zeros(n, dtype=bool)
    for j in range(len(offer_columns)):
        raw = offer_columns[j]
        surplus = raw if taste is None else raw + taste[:, j]
        if not free_switch:
            charged = (assignment >= 0) & (assignment != j)
            surplus = np.where(charged, surplus - switching_cost, surplus)
        take = surplus > best_surplus + TIE_EPSILON
        best_surplus = np.where(take, surplus, best_surplus)
        best_column = np.where(take, j, best_column)
        best_raw = np.where(take, raw, best_raw)
        best_tunnels = np.where(take, tunnel_columns[j], best_tunnels)
    return best_column, best_raw, best_tunnels


def switching_masks(assignment: np.ndarray, best_column: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """(moved, switched): who changes provider, who pays for it.

    ``moved`` is any assignment change (including joining from the
    unsubscribed state); ``switched`` is the subset leaving an *actual*
    provider — only they pay the switching cost and count as churn.
    """
    moved = assignment != best_column
    switched = moved & (assignment >= 0)
    return moved, switched


def ordered_total(deltas: np.ndarray) -> float:
    """Left-to-right sum of a delta stream (the scalar ``+=`` loop).

    ``deltas`` is (N, K): K ordered contributions per consumer, rows in
    consumer order.  Flattening row-major then ``cumsum`` reproduces the
    scalar's exact accumulation sequence; the last partial sum is the
    total.
    """
    flat = np.ascontiguousarray(deltas).reshape(-1)
    if flat.size == 0:
        return 0.0
    return float(np.cumsum(flat)[-1])


def apply_surplus_updates(
    surplus_state: np.ndarray,
    raw: np.ndarray,
    switched: np.ndarray,
    stays: np.ndarray,
    switching_cost: np.ndarray,
) -> np.ndarray:
    """Per-consumer surplus ledger update for one round.

    Two ops in the scalar's order: subtract the switching cost where a
    real switch happened, then add the round surplus where the consumer
    stays subscribed (a negative best offer means leaving instead).
    """
    surplus_state = np.where(switched, surplus_state - switching_cost,
                             surplus_state)
    surplus_state = np.where(stays, surplus_state + raw, surplus_state)
    return surplus_state


def per_provider_revenue(
    paid: np.ndarray,
    best_column: np.ndarray,
    stays: np.ndarray,
    n_providers: int,
) -> np.ndarray:
    """Revenue per provider column, accumulated in consumer order.

    Scatter each staying consumer's payment into an (N, P) matrix and
    ``cumsum`` down each column: per provider this is the scalar's
    sequential ``revenue[name] += paid`` walk (zero rows are bitwise
    no-ops on a never-negative accumulator).
    """
    n = paid.shape[0]
    contributions = np.zeros((n, n_providers), dtype=np.float64)
    payers = np.flatnonzero(stays)
    contributions[payers, best_column[payers]] = paid[payers]
    if n == 0:
        return np.zeros(n_providers, dtype=np.float64)
    return np.cumsum(contributions, axis=0)[-1]


def subscriber_counts(assignment: np.ndarray, n_providers: int) -> np.ndarray:
    """Subscribers per provider column (-1 = unsubscribed, not counted)."""
    subscribed = assignment[assignment >= 0]
    return np.bincount(subscribed, minlength=n_providers)


def round_kernel_bytes(n: int, n_providers: int, has_taste: bool) -> int:
    """Approximate bytes the per-round kernels stream over.

    Counts the (N, P) offer/tunnel/taste planes plus the ~10 per-consumer
    working columns at 8 bytes each — the figure fed to the
    ``scale.kernel`` ``kernel_bytes`` histogram so memory footprint shows
    up alongside timing in bench output.
    """
    plane = n * n_providers
    planes = 2 + (1 if has_taste else 0)
    return planes * plane * 8 + 10 * n * 8
