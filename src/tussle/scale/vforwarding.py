"""VectorForwardingEngine: the NumPy backend for packet forwarding.

Drop-in for :class:`tussle.netsim.forwarding.ForwardingEngine` on the
table-routed, middlebox-free fragment — same table-installation API,
same topology object — but packets live in
:class:`~tussle.scale.narrays.PacketArrays` columns and each forwarding
round runs through the kernels in :mod:`tussle.scale.nkernels`.  The
parity harness (:mod:`tussle.scale.nparity`) asserts this backend and
the scalar engine emit byte-identical round records from identical
specs.

Round structure (mirrors the scalar ``_forward`` loop exactly):

* **Round 0** classifies QoS priority in packet order (the scalar
  classifier's accumulation sequence) and delivers packets already at
  their destination — the scalar loop's first delivered check before
  any hop.
* **Rounds 1..MAX_TTL** each attempt one hop for every in-flight
  packet: no-route and link-down lanes resolve without moving (the
  scalar returns its receipt *before* accruing that link's latency),
  movers accrue the link latency and advance, and — below the TTL
  bound — packets arriving at their destination resolve as delivered.
  At round ``MAX_TTL`` every survivor resolves as TTL-exceeded instead,
  matching the scalar loop running out of iterations.

The engine covers what experiments sweep at scale; middleboxes and
source routes keep richer per-packet semantics and stay on the scalar
engine, so attaching one here raises :class:`~tussle.errors.ScaleError`
rather than silently diverging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import ScaleError
from ..netsim.decision import MAX_TTL
from ..netsim.forwarding import DeliveryStatus
from ..netsim.topology import Network
from ..obs.runtime import current as _obs_current
from . import nkernels
from .narrays import FibArrays, LinkArrays, NetIndex, PacketArrays

__all__ = ["NetRound", "STATUS_NAMES", "VectorForwardingEngine"]

#: Status-code -> canonical :class:`DeliveryStatus` value string.
STATUS_NAMES = {
    nkernels.IN_FLIGHT: "in-flight",
    nkernels.DELIVERED: DeliveryStatus.DELIVERED.value,
    nkernels.NO_ROUTE: DeliveryStatus.NO_ROUTE.value,
    nkernels.LINK_DOWN: DeliveryStatus.LINK_DOWN.value,
    nkernels.TTL_EXCEEDED: DeliveryStatus.TTL_EXCEEDED.value,
}


@dataclass
class NetRound:
    """One forwarding round's record — the parity comparison unit.

    ``latency`` is this round's total accrued link latency summed in
    packet order; ``prioritized``/``revenue`` are only non-zero in round
    0 (classification happens once per batch, like the scalar classifier
    seeing each packet once).
    """

    index: int
    delivered: int
    no_route: int
    link_down: int
    ttl_exceeded: int
    in_flight: int
    latency: float
    prioritized: int
    revenue: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "delivered": self.delivered,
            "no_route": self.no_route,
            "link_down": self.link_down,
            "ttl_exceeded": self.ttl_exceeded,
            "in_flight": self.in_flight,
            "latency": self.latency,
            "prioritized": self.prioritized,
            "revenue": self.revenue,
        }


class VectorForwardingEngine:
    """Whole-batch packet forwarding over structure-of-arrays state.

    Parameters mirror the scalar engine where they apply; tables install
    through the same validating API and the dense FIB is rebuilt lazily
    on the next batch after any table change.
    """

    def __init__(self, network: Network, honor_source_routes: bool = True):
        self.network = network
        self.honor_source_routes = honor_source_routes
        self.index = NetIndex.from_network(network)
        self.tables: Dict[str, Dict[str, str]] = {}
        self.history: List[NetRound] = []
        self._fib: Optional[FibArrays] = None
        self._links: Optional[LinkArrays] = None
        ctx = _obs_current()
        if ctx.metrics.enabled:
            scope = ctx.metrics.scope("scale.nkernel")
            self._c_rounds = scope.counter("net_rounds")
            self._h_bytes = scope.histogram("net_kernel_bytes")
        else:
            self._c_rounds = None
            self._h_bytes = None

    # ------------------------------------------------------------------
    # Configuration (mirrors the scalar engine)
    # ------------------------------------------------------------------
    def install_table(self, node: str, table: Dict[str, str]) -> None:
        """Install (replacing) the forwarding table of ``node``."""
        self.network.node(node)
        for dst, nxt in table.items():
            if not self.network.has_node(nxt):
                raise ScaleError(
                    f"table at {node!r} names unknown next hop {nxt!r}")
        self.tables[node] = dict(table)
        self._fib = None

    def install_tables(self, tables: Dict[str, Dict[str, str]]) -> None:
        for node, table in tables.items():
            self.install_table(node, table)

    def install_shortest_path_tables(self) -> None:
        """Populate every node's table with minimum-hop next hops (BFS).

        Same construction as the scalar engine — construction is not the
        hot path, so the readable BFS is shared by both backends.
        """
        names = self.network.node_names()
        for src in names:
            table: Dict[str, str] = {}
            for dst in names:
                if dst == src:
                    continue
                path = self.network.shortest_path(src, dst)
                if path and len(path) > 1:
                    table[dst] = path[1]
            self.tables[src] = table
        self._fib = None

    def attach_middlebox(self, node: str, box: object) -> None:
        """Middleboxes are scalar-only; refuse loudly instead of diverging."""
        raise ScaleError(
            "VectorForwardingEngine forwards the middlebox-free fragment; "
            "attach middleboxes to the scalar ForwardingEngine instead")

    def refresh_topology(self) -> None:
        """Re-snapshot link state (after fail_link/restore_link)."""
        self._links = None

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send_batch(
        self,
        packets: PacketArrays,
        tos_threshold: Optional[int] = None,
        bill_per_packet: float = 0.0,
    ) -> List[NetRound]:
        """Forward a whole batch; returns (and stores) the round records.

        ``tos_threshold`` enables round-0 QoS classification with the
        semantics of :class:`~tussle.netsim.qos.TosQosClassifier`
        (``bill_per_packet`` > 0 accrues revenue per prioritized packet,
        in packet order).  Final per-packet state lands back on
        ``packets`` (status/current/latency/hops/prioritized columns).
        """
        if self._fib is None:
            self._fib = FibArrays.from_tables(self.tables, self.index)
        if self._links is None:
            self._links = LinkArrays.from_network(self.network, self.index)
        fib = self._fib
        links = self._links

        n = len(packets)
        status = np.full(n, nkernels.IN_FLIGHT, dtype=np.int64)
        current = packets.src.copy()
        latency = np.zeros(n, dtype=np.float64)
        hops = np.ones(n, dtype=np.int64)
        active = np.ones(n, dtype=bool)

        if tos_threshold is not None:
            prioritized = nkernels.priority_mask(packets.tos, tos_threshold)
            revenue = nkernels.priority_revenue(prioritized, bill_per_packet)
        else:
            prioritized = np.zeros(n, dtype=bool)
            revenue = 0.0

        arrived = nkernels.delivered_mask(active, current, packets.dst)
        status = nkernels.resolve_status(status, arrived, nkernels.DELIVERED)
        active = active & ~arrived
        rounds = [NetRound(
            index=0,
            delivered=nkernels.mask_count(arrived),
            no_route=0,
            link_down=0,
            ttl_exceeded=0,
            in_flight=nkernels.mask_count(active),
            latency=0.0,
            prioritized=nkernels.mask_count(prioritized),
            revenue=revenue,
        )]

        r = 0
        while nkernels.mask_count(active) > 0 and r < MAX_TTL:
            r += 1
            hop = nkernels.lookup_next_hop(fib.next_hop, current, packets.dst)
            no_route = nkernels.no_route_mask(active, hop)
            link_down = nkernels.link_down_mask(active, links.usable,
                                                current, hop)
            moving = active & ~no_route & ~link_down
            deltas = nkernels.hop_latency_deltas(links.latency, current,
                                                 hop, moving)
            latency = latency + deltas
            current = nkernels.advance(current, hop, moving)
            hops = hops + moving
            status = nkernels.resolve_status(status, no_route,
                                             nkernels.NO_ROUTE)
            status = nkernels.resolve_status(status, link_down,
                                             nkernels.LINK_DOWN)
            active = moving
            if r < MAX_TTL:
                arrived = nkernels.delivered_mask(active, current,
                                                  packets.dst)
                status = nkernels.resolve_status(status, arrived,
                                                 nkernels.DELIVERED)
                active = active & ~arrived
                ttl_count = 0
            else:
                arrived = np.zeros(n, dtype=bool)
                status = nkernels.resolve_status(status, active,
                                                 nkernels.TTL_EXCEEDED)
                ttl_count = nkernels.mask_count(active)
                active = np.zeros(n, dtype=bool)
            rounds.append(NetRound(
                index=r,
                delivered=nkernels.mask_count(arrived),
                no_route=nkernels.mask_count(no_route),
                link_down=nkernels.mask_count(link_down),
                ttl_exceeded=ttl_count,
                in_flight=nkernels.mask_count(active),
                latency=nkernels.round_total(deltas),
                prioritized=0,
                revenue=0.0,
            ))

        packets.status = status
        packets.current = current
        packets.latency = latency
        packets.hops = hops
        packets.prioritized = prioritized
        self.history = rounds
        if self._c_rounds is not None:
            self._c_rounds.inc(len(rounds))
            self._h_bytes.observe(
                nkernels.net_kernel_bytes(n, len(self.index)))
        return rounds

    # ------------------------------------------------------------------
    # Aggregate measurements (parity with the scalar engine's helpers)
    # ------------------------------------------------------------------
    def delivery_rate(self) -> float:
        """Fraction of the last batch that reached a destination."""
        if not self.history:
            return 0.0
        total = self.history[0].in_flight + self.history[0].delivered
        if total == 0:
            return 0.0
        delivered = 0
        for record in self.history:
            delivered += record.delivered
        return delivered / total

    def status_name(self, code: int) -> str:
        """Canonical status string for a packet status code."""
        return STATUS_NAMES[int(code)]

    def delivered_to(self, packets: PacketArrays, i: int) -> Optional[str]:
        """Where packet ``i`` landed, or ``None`` if it never arrived."""
        if int(packets.status[i]) != nkernels.DELIVERED:
            return None
        return self.index.names[int(packets.current[i])]
