"""Vectorized forwarding-round kernels.

Each kernel is the NumPy mirror of one decision in the scalar forwarding
loop (:meth:`tussle.netsim.forwarding.ForwardingEngine._forward`), with
the shared rules of :mod:`tussle.netsim.decision` applied element-wise
across the packet axis.  The contract is *byte parity* with the scalar
engine's round records, not statistical agreement, which constrains how
these are written:

* **No reassociation.**  Per-packet latency accumulates one hop at a
  time (``latency + delta``), exactly the scalar's ``latency +=
  link.latency``; round totals use :func:`~tussle.scale.kernels.
  ordered_total` (strict left-to-right ``cumsum``), never ``np.sum``.
  Zero-padding non-movers is safe because ``t + 0.0`` is a bitwise no-op
  on the non-negative accumulators these streams produce.
* **Masks are resolved in the scalar's order.**  Each round: no-route,
  then link-down, then movement, then (below the TTL) delivery — the
  order the scalar loop checks them, so a packet that would hit two
  conditions resolves to the same status in both backends.
* **Invalid next hops never index.**  A ``-1`` (no route) next hop is
  clamped to 0 before any fancy index; the corresponding lanes are
  already masked out, so the clamped reads are dead values.

Kernels never loop over the packet population: everything is whole-array
NumPy (lint rule D111 enforces this for this module).  Every function is
also under the F205/F206 purity contract — no argument mutation, no
hidden state — so the flow analyser proves the kernels are pure.
"""

from __future__ import annotations

import numpy as np

from .kernels import ordered_total

__all__ = [
    "IN_FLIGHT",
    "DELIVERED",
    "NO_ROUTE",
    "LINK_DOWN",
    "TTL_EXCEEDED",
    "priority_mask",
    "priority_revenue",
    "delivered_mask",
    "lookup_next_hop",
    "no_route_mask",
    "link_down_mask",
    "hop_latency_deltas",
    "advance",
    "resolve_status",
    "mask_count",
    "round_total",
    "net_kernel_bytes",
]

#: Integer status codes for the packet ``status`` column.  0 must stay
#: "in flight" so a zero-initialized column means "journey not resolved".
IN_FLIGHT = 0
DELIVERED = 1
NO_ROUTE = 2
LINK_DOWN = 3
TTL_EXCEEDED = 4


def priority_mask(tos: np.ndarray, threshold: int) -> np.ndarray:
    """Element-wise :func:`tussle.netsim.decision.tos_prioritized`."""
    return tos >= threshold


def priority_revenue(prioritized: np.ndarray, bill_per_packet: float) -> float:
    """Total priority billing, accumulated in packet order.

    Element-wise :func:`tussle.netsim.decision.priority_charge` followed
    by the scalar classifier's sequential ``revenue += bill`` walk
    (zero rows are bitwise no-ops on the never-negative accumulator).
    """
    if bill_per_packet <= 0:
        return 0.0
    deltas = np.where(prioritized, bill_per_packet, 0.0)
    return ordered_total(deltas.reshape(-1, 1))


def delivered_mask(active: np.ndarray, current: np.ndarray,
                   dst: np.ndarray) -> np.ndarray:
    """Who is at their destination — element-wise ``at_destination``."""
    return active & (current == dst)


def lookup_next_hop(fib_next_hop: np.ndarray, current: np.ndarray,
                    dst: np.ndarray) -> np.ndarray:
    """Each packet's next-hop index from the dense FIB (-1 = no route)."""
    return fib_next_hop[current, dst]


def no_route_mask(active: np.ndarray, hop: np.ndarray) -> np.ndarray:
    """Active packets whose FIB has no entry for their destination."""
    return active & (hop < 0)


def link_down_mask(active: np.ndarray, usable: np.ndarray,
                   current: np.ndarray, hop: np.ndarray) -> np.ndarray:
    """Active, routed packets whose chosen link is unusable.

    ``usable`` already folds existence, operational state and capacity
    (element-wise :func:`tussle.netsim.decision.link_usable`).
    """
    safe_hop = np.where(hop >= 0, hop, 0)
    return active & (hop >= 0) & ~usable[current, safe_hop]


def hop_latency_deltas(latency: np.ndarray, current: np.ndarray,
                       hop: np.ndarray, moving: np.ndarray) -> np.ndarray:
    """Per-packet latency contribution of this round (0.0 if not moving)."""
    safe_hop = np.where(hop >= 0, hop, 0)
    return np.where(moving, latency[current, safe_hop], 0.0)


def advance(current: np.ndarray, hop: np.ndarray,
            moving: np.ndarray) -> np.ndarray:
    """Move the moving packets to their next hop."""
    return np.where(moving, hop, current)


def resolve_status(status: np.ndarray, mask: np.ndarray,
                   code: int) -> np.ndarray:
    """Stamp ``code`` onto the masked lanes of the status column."""
    return np.where(mask, code, status)


def mask_count(mask: np.ndarray) -> int:
    """How many lanes a boolean mask selects."""
    return int(np.count_nonzero(mask))


def round_total(deltas: np.ndarray) -> float:
    """Round latency total: strict left-to-right sum in packet order."""
    return ordered_total(deltas.reshape(-1, 1))


def net_kernel_bytes(n_packets: int, n_nodes: int) -> int:
    """Approximate bytes one vector round streams over.

    The dense FIB/latency/usable planes plus the ~8 per-packet working
    columns at 8 bytes — fed to the ``scale.kernel`` ``kernel_bytes``
    histogram so memory footprint shows up alongside timing.
    """
    plane = n_nodes * n_nodes
    return 3 * plane * 8 + 8 * n_packets * 8
