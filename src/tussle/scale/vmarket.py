"""VectorMarket: the NumPy backend for the access market.

Drop-in for :class:`tussle.econ.market.Market` on the round interface —
same constructor shape, same :class:`~tussle.econ.market.MarketRound`
records, same measurement helpers — but the consumer side lives in
:class:`~tussle.scale.arrays.MarketArrays` columns and each round runs
through the kernels in :mod:`tussle.scale.kernels`.  The parity harness
(:mod:`tussle.scale.parity`) asserts the two backends emit identical
round records from identical specs.

Division of labour per round:

* **Providers stay objects.**  Price evolution runs the *same*
  :class:`~tussle.econ.pricing.PricingStrategy` instances over the same
  :class:`~tussle.econ.agents.Provider` objects in the same sorted
  order, so price trajectories are shared with the scalar backend by
  construction, not by re-implementation.  (Provider ``subscribers``
  sets are *not* maintained — membership lives in the assignment
  column; read shares from the round records.)
* **Consumers are columns.**  Choice, switching, tunnelling, surplus
  and revenue all run as whole-population kernels.

Offer columns are cached per provider and recomputed only when that
provider's pricing signature changes, mirroring the scalar market's
offer cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..econ.agents import Consumer, Provider
from ..econ.market import MarketRound
from ..econ.pricing import PricingStrategy
from ..errors import MarketError, ScaleError
from ..obs.runtime import current as _obs_current
from . import kernels
from .arrays import ConsumerBatch, MarketArrays

__all__ = ["VectorMarket"]


class VectorMarket:
    """A round-based access market over structure-of-arrays consumers.

    Parameters mirror :class:`~tussle.econ.market.Market`; the consumer
    population arrives either as scalar ``Consumer`` objects
    (``consumers=...``, snapshotted into columns) or as a
    :class:`~tussle.scale.arrays.ConsumerBatch` (``batch=...``, the
    large-N path that never materializes per-consumer objects).
    """

    def __init__(
        self,
        providers: Sequence[Provider],
        consumers: Optional[Sequence[Consumer]] = None,
        strategies: Optional[Dict[str, PricingStrategy]] = None,
        server_prohibited_without_tier: bool = True,
        preference_noise: float = 0.0,
        seed: int = 0,
        batch: Optional[ConsumerBatch] = None,
    ):
        if not providers:
            raise MarketError("market needs at least one provider")
        names = [p.name for p in providers]
        if len(set(names)) != len(names):
            raise MarketError("provider names must be unique")
        if (consumers is None) == (batch is None):
            raise ScaleError(
                "VectorMarket takes exactly one of consumers= or batch=")
        self.providers: Dict[str, Provider] = {p.name: p for p in providers}
        self.strategies = dict(strategies or {})
        self.server_prohibited_without_tier = server_prohibited_without_tier
        self._sorted_names: List[str] = sorted(self.providers)
        if batch is not None:
            self.arrays = MarketArrays.from_batch(
                batch, self._sorted_names,
                preference_noise=preference_noise, seed=seed)
        else:
            self.arrays = MarketArrays.from_consumers(
                consumers, self._sorted_names,
                preference_noise=preference_noise, seed=seed)
        self.history: List[MarketRound] = []
        self._offer_cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        self._offer_signatures: Dict[str, Tuple] = {}
        ctx = _obs_current()
        if ctx.metrics.enabled:
            scope = ctx.metrics.scope("scale.kernel")
            self._c_rounds = scope.counter("rounds")
            self._c_switches = scope.counter("switches")
            self._h_bytes = scope.histogram("kernel_bytes")
        else:
            self._c_rounds = None
            self._c_switches = None
            self._h_bytes = None
        self._initial_assignment()

    # ------------------------------------------------------------------
    # Offers
    # ------------------------------------------------------------------
    def _provider_offers(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """Cached (surplus, tunnels) columns for one provider."""
        provider = self.providers[name]
        signature = (provider.price, provider.business_price,
                     provider.detects_tunnels)
        if self._offer_signatures.get(name) != signature:
            self._offer_cache[name] = kernels.effective_offer_column(
                self.arrays,
                price=provider.price,
                business_price=provider.business_price,
                detects_tunnels=provider.detects_tunnels,
                server_prohibited_without_tier=(
                    self.server_prohibited_without_tier),
            )
            self._offer_signatures[name] = signature
        return self._offer_cache[name]

    def _offer_columns(self) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        offers: List[np.ndarray] = []
        tunnels: List[np.ndarray] = []
        for name in self._sorted_names:
            surplus_column, tunnel_column = self._provider_offers(name)
            offers.append(surplus_column)
            tunnels.append(tunnel_column)
        return offers, tunnels

    def _choose(self, free_switch: bool = False
                ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        offers, tunnels = self._offer_columns()
        return kernels.best_provider(
            offers, tunnels, self.arrays.taste,
            self.arrays.switching_cost, self.arrays.assignment,
            free_switch=free_switch,
        )

    def _initial_assignment(self) -> None:
        """Round-0 free choice for every unassigned consumer."""
        best_column, _, _ = self._choose(free_switch=True)
        unassigned = self.arrays.assignment < 0
        self.arrays.assignment = np.where(
            unassigned, best_column, self.arrays.assignment)

    # ------------------------------------------------------------------
    # Rounds
    # ------------------------------------------------------------------
    def _shares(self, counts: np.ndarray) -> Dict[str, float]:
        n = len(self.arrays)
        column_of = {name: j for j, name in enumerate(self._sorted_names)}
        return {
            name: (int(counts[column_of[name]]) / n if n > 0 else 0.0)
            for name in self.providers
        }

    def step(self) -> MarketRound:
        """Run one market round and return its record."""
        arrays = self.arrays
        index = len(self.history)
        n = len(arrays)

        # 1. Providers adjust prices (identical to the scalar phase).
        prices = {name: p.price for name, p in self.providers.items()}
        counts_before = kernels.subscriber_counts(
            arrays.assignment, arrays.n_providers)
        shares = self._shares(counts_before)
        for name, provider in sorted(self.providers.items()):
            strategy = self.strategies.get(name)
            if strategy is not None:
                strategy.adjust(provider, prices, shares[name])

        # 2. Whole-population choice, switching and settlement.
        best_column, best_raw, best_tunnels = self._choose()
        _, switched = kernels.switching_masks(arrays.assignment, best_column)
        stays = best_raw >= 0.0

        arrays.surplus = kernels.apply_surplus_updates(
            arrays.surplus, best_raw, switched, stays, arrays.switching_cost)
        arrays.switches = arrays.switches + switched
        arrays.tunnelling = best_tunnels.copy()
        arrays.assignment = np.where(stays, best_column, -1)

        switches = int(np.count_nonzero(switched))
        tunnelling = int(np.count_nonzero(best_tunnels))

        # The scalar loop interleaves, per consumer, the switching-cost
        # debit and the surplus credit; two columns flattened row-major
        # replay that exact accumulation order.
        deltas = np.empty((n, 2), dtype=np.float64)
        deltas[:, 0] = np.where(switched, -arrays.switching_cost, 0.0)
        deltas[:, 1] = np.where(stays, best_raw, 0.0)
        total_surplus = kernels.ordered_total(deltas)

        paid = np.zeros(n, dtype=np.float64)
        for j, name in enumerate(self._sorted_names):
            provider = self.providers[name]
            chose = stays & (best_column == j)
            if not chose.any():
                continue
            paid[chose] = kernels.amount_paid_values(
                arrays.wtp[chose], arrays.server_value[chose],
                arrays.values_server[chose], best_tunnels[chose],
                price=provider.price,
                business_price=provider.business_price,
                server_prohibited_without_tier=(
                    self.server_prohibited_without_tier),
            )
        revenue_columns = kernels.per_provider_revenue(
            paid, best_column, stays, arrays.n_providers)
        revenue = {
            name: float(revenue_columns[j])
            for j, name in enumerate(self._sorted_names)
        }

        # 3. Accounting — same iteration shapes as the scalar backend so
        # the Python-level float folds (mean, profit sum) match bitwise.
        counts_after = kernels.subscriber_counts(
            arrays.assignment, arrays.n_providers)
        column_of = {name: j for j, name in enumerate(self._sorted_names)}
        for name, provider in self.providers.items():
            provider.record_round(
                revenue[name], int(counts_after[column_of[name]]))
        record = MarketRound(
            index=index,
            mean_price=sum(p.price for p in self.providers.values())
            / len(self.providers),
            switches=switches,
            consumer_surplus=total_surplus,
            provider_profit=sum(
                revenue[name] - p.unit_cost * int(counts_after[column_of[name]])
                for name, p in self.providers.items()
            ),
            tunnelling_consumers=tunnelling,
            shares=self._shares(counts_after),
        )
        self.history.append(record)
        if self._c_rounds is not None:
            self._c_rounds.inc()
            self._c_switches.inc(switches)
            self._h_bytes.observe(float(kernels.round_kernel_bytes(
                n, arrays.n_providers, arrays.taste is not None)))
        return record

    def run(self, rounds: int) -> List[MarketRound]:
        for _ in range(rounds):
            self.step()
        return self.history

    # ------------------------------------------------------------------
    # Measurements (same surface as the scalar Market)
    # ------------------------------------------------------------------
    def total_switches(self) -> int:
        return sum(r.switches for r in self.history)

    def mean_price(self) -> float:
        if not self.history:
            return 0.0
        return self.history[-1].mean_price

    def total_consumer_surplus(self) -> float:
        return sum(r.consumer_surplus for r in self.history)

    def total_provider_profit(self) -> float:
        return sum(r.provider_profit for r in self.history)

    def subscribed_fraction(self) -> float:
        n = len(self.arrays)
        if n == 0:
            return 0.0
        return int(np.count_nonzero(self.arrays.assignment >= 0)) / n
