"""Parsed-source context shared by all lint rules.

The engine parses every file exactly once into a :class:`ModuleInfo`
(AST, import table, inline suppressions) and bundles them into a
:class:`ProjectContext` so project-level rules (experiment conformance,
exception taxonomy) can see the whole tree without re-reading files.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from ..errors import LintError

__all__ = [
    "ModuleInfo",
    "ProjectContext",
    "parse_module",
    "dotted_name",
    "resolve_call_name",
]

#: Inline suppression: ``# lint: disable=D103`` or ``# lint: disable=D103,X301``
#: (``# noqa: D103`` is honoured as a familiar alias).  A bare
#: ``# lint: disable`` suppresses every rule on that line.
_SUPPRESS_RE = re.compile(
    r"#\s*(?:lint:\s*disable|noqa:?)\s*(?:=\s*)?([A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)?"
)

#: The canonical ``# lint: disable`` form only — the stale-suppression
#: rule (X303) covers this form and never ``# noqa``, which other tools
#: (flake8) own and which routinely carries their rule codes.  Anchored
#: at the start of a COMMENT token so prose that merely *mentions* the
#: syntax (docstrings, doc comments, string literals) is never audited.
_DISABLE_RE = re.compile(
    r"#\s*lint:\s*disable\s*(?:=\s*)?([A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)?"
)


def _parse_suppressions(source_lines: List[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> suppressed rule ids (None = all rules)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        if "#" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        ids = match.group(1)
        table[lineno] = (
            {part.strip() for part in ids.split(",")} if ids else None
        )
    return table


def _parse_disable_comments(
        source_lines: List[str]) -> Dict[int, Optional[Set[str]]]:
    """Like :func:`_parse_suppressions`, restricted to ``lint: disable``.

    Parses actual COMMENT tokens (via :mod:`tokenize`) with the pattern
    anchored at the comment start, so ``#: docs about # lint: disable``
    and string literals containing the syntax never enter the table.
    Sources that fail to tokenize yield an empty table — X303 simply has
    nothing to audit there.
    """
    table: Dict[int, Optional[Set[str]]] = {}
    reader = io.StringIO("\n".join(source_lines) + "\n").readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return table
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.match(token.string)
        if not match:
            continue
        ids = match.group(1)
        table[token.start[0]] = (
            {part.strip() for part in ids.split(",")} if ids else None
        )
    return table


@dataclass
class ModuleInfo:
    """One parsed source file plus derived lookup tables."""

    path: Path
    module_name: str
    tree: ast.Module
    source_lines: List[str]
    #: local name -> canonical dotted module/object path, built from the
    #: module's import statements (``np`` -> ``numpy``,
    #: ``default_rng`` -> ``numpy.random.default_rng``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: 1-based line -> rule ids suppressed on that line (None = all).
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    #: Subset of ``suppressions`` written in the ``# lint: disable`` form
    #: (the only form X303 audits for staleness).
    disable_comments: Dict[int, Optional[Set[str]]] = field(
        default_factory=dict)
    #: (line, rule_id) pairs whose inline suppression actually fired this
    #: run — the complement over ``disable_comments`` is what X303 flags.
    used_suppressions: Set[Tuple[int, str]] = field(default_factory=set)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if line not in self.suppressions:
            return False
        ids = self.suppressions[line]
        return ids is None or rule_id in ids

    def top_level_defined_names(self) -> Set[str]:
        """Names bound at module scope (defs, classes, assigns, imports)."""
        names: Set[str] = set()
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(_target_names(target))
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                                ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.AugAssign) and isinstance(node.target,
                                                                ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                # Conditionally-bound names (TYPE_CHECKING guards etc.).
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                        names.add(sub.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            names.update(_target_names(target))
        return names

    def dunder_all(self) -> Optional[Tuple[List[str], int]]:
        """The literal entries of ``__all__`` and the first definition line.

        Collects ``__all__ = [...]`` plus ``__all__ += [...]`` extensions;
        returns None when the module never defines ``__all__`` or builds it
        dynamically (non-literal entries are skipped, not reported).
        """
        entries: List[str] = []
        first_line: Optional[int] = None
        for node in self.tree.body:
            value: Optional[ast.expr] = None
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "__all__"
                            for t in node.targets)):
                value = node.value
            elif (isinstance(node, ast.AugAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id == "__all__"):
                value = node.value
            if value is None:
                continue
            if first_line is None:
                first_line = node.lineno
            if isinstance(value, (ast.List, ast.Tuple)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                            element.value, str):
                        entries.append(element.value)
        if first_line is None:
            return None
        return entries, first_line


def _target_names(target: ast.expr) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names.update(_target_names(element))
        return names
    return set()


def _build_import_table(tree: ast.Module) -> Dict[str, str]:
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: not an external module
                continue
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def parse_module(path: Path, root: Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo`.

    Raises :class:`LintError` on anything that prevents analysis —
    unreadable file, undecodable bytes, syntax error — so the engine can
    turn the failure into a structured X304 finding instead of crashing.
    """
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise LintError(f"cannot decode {path} as UTF-8: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"syntax error in {path}: {exc}") from exc
    except ValueError as exc:  # e.g. NUL bytes on some Python versions
        raise LintError(f"cannot parse {path}: {exc}") from exc
    relative = path.relative_to(root) if root in path.parents or path == root else path
    module_name = ".".join(relative.with_suffix("").parts)
    source_lines = source.splitlines()
    return ModuleInfo(
        path=path,
        module_name=module_name,
        tree=tree,
        source_lines=source_lines,
        imports=_build_import_table(tree),
        suppressions=_parse_suppressions(source_lines),
        disable_comments=_parse_disable_comments(source_lines),
    )


@dataclass
class ProjectContext:
    """Everything project-level rules need: all modules plus repo layout."""

    package_root: Path
    modules: List[ModuleInfo]
    #: Repository root (directory holding pyproject.toml) when detectable;
    #: benchmark/test conformance rules are skipped without it.
    repo_root: Optional[Path] = None

    def module_by_relpath(self, suffix: str) -> Optional[ModuleInfo]:
        for info in self.modules:
            if str(info.path).endswith(suffix):
                return info
        return None

    @property
    def benchmarks_dir(self) -> Optional[Path]:
        if self.repo_root is None:
            return None
        candidate = self.repo_root / "benchmarks"
        return candidate if candidate.is_dir() else None

    @property
    def tests_dir(self) -> Optional[Path]:
        if self.repo_root is None:
            return None
        candidate = self.repo_root / "tests"
        return candidate if candidate.is_dir() else None


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def resolve_call_name(node: ast.expr, imports: Dict[str, str]) -> Optional[str]:
    """Canonical dotted path of a Name/Attribute, resolving import aliases.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; a bare ``default_rng`` imported via
    ``from numpy.random import default_rng`` resolves the same way.
    Unresolvable heads (local variables, attributes of self) return None.
    """
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head not in imports:
        return None
    canonical = imports[head]
    return f"{canonical}.{rest}" if rest else canonical
