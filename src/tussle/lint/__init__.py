"""Static determinism & simulation-invariant analyzer (``python -m tussle.lint``).

The paper's argument is that outcomes depend on who moves and in what
order — so a tussle simulation whose results drift with RNG state, dict
ordering, or wall-clock time reproduces noise, not the paper.  This
package enforces that discipline with three rule families:

``D1xx`` — determinism
    No global RNG state, no unseeded generators, no wall-clock or
    environment reads, no iteration over unordered sets into
    ordering-sensitive sinks, no hidden-default RNG fallbacks.
``E2xx`` — experiment conformance
    Every experiment module exposes ``run_*(seed=...) ->
    ExperimentResult``, is registered in ``ALL_EXPERIMENTS``, and has a
    benchmark and test counterpart.
``X3xx`` — API surface
    Raised exceptions derive from the :mod:`tussle.errors` taxonomy and
    ``__all__`` matches what modules actually define; X303/X304 keep the
    analyzer itself honest (stale suppressions, unparseable files).
``F2xx`` — whole-program flow (:mod:`tussle.lint.flow`)
    Interprocedural seed provenance, purity inference for the
    bit-parity kernel contract, and worker safety for code reachable
    from the sweep executors.  Run with ``python -m tussle.lint flow``.

The static pass never imports the code under analysis; its dynamic
sibling :mod:`tussle.lint.seedcheck` double-runs each experiment at a
fixed seed and asserts bit-identical result tables.

See DESIGN.md ("Determinism contract & lint rule catalog") for the full
rule list and the blessed idioms each rule steers toward.
"""

from .baseline import (Baseline, apply_baseline, load_baseline,
                       update_baseline, write_baseline)
from .engine import LintReport, collect_files, find_repo_root, run_lint
from .findings import RULE_REGISTRY, Finding, Rule, get_rule, rule_ids
from .flow import FlowReport, run_flow

# Importing the rule modules registers their rules.  The dynamic
# seedcheck harness is intentionally NOT imported here: it pulls in the
# whole experiments package, and `python -m tussle.lint.seedcheck` must
# be able to execute the module fresh.  Import tussle.lint.seedcheck
# directly when you need it.
from . import api, conformance, determinism  # noqa: F401  isort: skip

__all__ = [
    "Baseline",
    "Finding",
    "FlowReport",
    "LintReport",
    "Rule",
    "RULE_REGISTRY",
    "apply_baseline",
    "collect_files",
    "find_repo_root",
    "get_rule",
    "load_baseline",
    "rule_ids",
    "run_flow",
    "run_lint",
    "update_baseline",
    "write_baseline",
]
