"""X-series rules: public-API surface invariants.

Two invariants keep the package's error handling and import surface
honest: every exception raised by the framework derives from the
:mod:`tussle.errors` taxonomy (so callers can catch ``TussleError``
without masking programming errors), and every name exported via
``__all__`` actually exists in its module.
"""

from __future__ import annotations

import ast
import builtins
from typing import Dict, List, Optional, Set

from .context import ModuleInfo, ProjectContext, dotted_name
from .findings import Finding, Rule, register_rule

__all__ = ["check_api_invariants", "API_RULES"]

X301 = register_rule(Rule(
    "X301", "exception-taxonomy",
    "raised exceptions must derive from the tussle.errors taxonomy",
    "Callers catch TussleError to distinguish framework failures from "
    "programming errors; a bare ValueError escaping the simulation breaks "
    "that contract.",
))
X302 = register_rule(Rule(
    "X302", "dunder-all-accurate",
    "__all__ entries must name objects defined in the module",
    "A stale __all__ breaks `from module import *` and misleads readers "
    "about the public surface.",
))

API_RULES = (X301, X302)

#: Builtin exceptions that are legitimate control flow rather than
#: framework failures.
_ALLOWED_BUILTIN_RAISES = {
    "NotImplementedError",   # abstract-method stubs
    "StopIteration", "StopAsyncIteration", "GeneratorExit",
    "SystemExit",            # CLI exit paths
    "KeyboardInterrupt",
}

_TAXONOMY_ROOT = "TussleError"


def _class_bases(context: ProjectContext) -> Dict[str, Set[str]]:
    """Simple-name class hierarchy across the scanned package.

    Keyed by class name; values are base-class simple names.  Simple names
    are enough here because the taxonomy lives in one module and the
    package does not reuse exception class names.
    """
    hierarchy: Dict[str, Set[str]] = {}
    for info in context.modules:
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases: Set[str] = set()
            for base in node.bases:
                name = dotted_name(base)
                if name is not None:
                    bases.add(name.split(".")[-1])
            hierarchy.setdefault(node.name, set()).update(bases)
    return hierarchy


def _derives_from_taxonomy(name: str, hierarchy: Dict[str, Set[str]],
                           _seen: Optional[Set[str]] = None) -> bool:
    if name == _TAXONOMY_ROOT:
        return True
    seen = _seen or set()
    if name in seen or name not in hierarchy:
        return False
    seen.add(name)
    return any(_derives_from_taxonomy(base, hierarchy, seen)
               for base in hierarchy[name])


def _raised_class_name(node: ast.Raise) -> Optional[str]:
    """Simple name of the raised exception class, when statically known."""
    exc = node.exc
    if exc is None:  # bare re-raise
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    name = dotted_name(exc)
    if name is None:
        return None
    return name.split(".")[-1]


def _is_builtin_exception(name: str) -> bool:
    obj = getattr(builtins, name, None)
    return isinstance(obj, type) and issubclass(obj, BaseException)


def check_api_invariants(context: ProjectContext) -> List[Finding]:
    findings: List[Finding] = []
    hierarchy = _class_bases(context)

    for info in context.modules:
        path = str(info.path)

        # X301 — exception taxonomy.
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_class_name(node)
            if name is None or name in _ALLOWED_BUILTIN_RAISES:
                continue
            if _is_builtin_exception(name):
                findings.append(Finding(
                    X301.rule_id, path, node.lineno, node.col_offset + 1,
                    f"raises builtin `{name}`; raise a tussle.errors "
                    "subclass so callers can catch TussleError",
                ))
            elif name in hierarchy and not _derives_from_taxonomy(name, hierarchy):
                findings.append(Finding(
                    X301.rule_id, path, node.lineno, node.col_offset + 1,
                    f"`{name}` does not derive from TussleError",
                ))
            # Names that resolve to neither (exception instances bound to
            # variables, imported third-party classes) are skipped: the
            # analyzer only reports what it can prove.

        # X302 — __all__ accuracy.
        exported = info.dunder_all()
        if exported is not None:
            entries, line = exported
            defined = info.top_level_defined_names()
            for entry in entries:
                if entry not in defined:
                    findings.append(Finding(
                        X302.rule_id, path, line, 1,
                        f"__all__ exports `{entry}` but the module never "
                        "defines it",
                    ))
    return findings
