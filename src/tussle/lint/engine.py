"""Analysis driver: collect files, parse once, run every rule family.

The engine is deliberately import-free with respect to the code under
analysis — everything is AST-level, so linting a module never executes
it (the dynamic counterpart lives in :mod:`tussle.lint.seedcheck`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from ..errors import LintError
from .api import check_api_invariants
from .baseline import Baseline, apply_baseline
from .conformance import check_experiment_conformance
from .context import ModuleInfo, ProjectContext, parse_module
from .determinism import check_module_determinism
from .findings import Finding, Rule, register_rule

__all__ = ["LintReport", "collect_files", "find_repo_root", "run_lint",
           "check_stale_suppressions"]

#: Directories never scanned (generated or foreign code).
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist",
              "tussle.egg-info"}

X303 = register_rule(Rule(
    "X303", "stale-suppression",
    "`# lint: disable` comment suppresses nothing",
    "A suppression that no longer matches any finding is a hole waiting "
    "to hide the next real one, and it misrepresents the file as having "
    "a known exception. Remove the comment once the finding is fixed. "
    "Only the `lint: disable` form is audited; `# noqa` belongs to other "
    "tools.",
))
X304 = register_rule(Rule(
    "X304", "broken-source",
    "source file cannot be parsed for analysis",
    "A file the analyzer cannot read (syntax error, non-UTF-8 bytes, "
    "vanished between discovery and parse) is a blind spot: every rule "
    "silently skips it. The engine reports the failure as a finding so "
    "the gate stays honest instead of crashing or ignoring the file.",
))


@dataclass
class LintReport:
    """Everything one analyzer run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Baseline entries whose budget exceeded the findings present:
    #: [{"rule", "path", "count"}, ...].  Non-empty means the baseline
    #: is stale and the gate fails until --update-baseline rewrites it.
    stale_baseline: List[dict] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def clean(self) -> bool:
        return not self.active and not self.stale_baseline

    def to_dict(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.active],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
            "clean": self.clean,
        }


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of .py files."""
    files: List[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.append(candidate)
        else:
            raise LintError(f"no such file or directory: {path}")
    # De-duplicate while preserving order.
    unique: List[Path] = []
    seen = set()
    for item in files:
        resolved = item.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(item)
    return unique


def find_repo_root(start: Path) -> Optional[Path]:
    """Nearest ancestor holding pyproject.toml/setup.py (for E203/E204)."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file() or \
                (candidate / "setup.py").is_file():
            return candidate
    return None


def _apply_inline_suppressions(info: ModuleInfo,
                               findings: Iterable[Finding]) -> None:
    for finding in findings:
        if info.is_suppressed(finding.rule_id, finding.line):
            finding.suppressed = True
            finding.suppression_source = "inline"
            info.used_suppressions.add((finding.line, finding.rule_id))


def check_stale_suppressions(info: ModuleInfo,
                             families: Sequence[str] = ("D", "E", "X"),
                             ) -> List[Finding]:
    """X303: ``# lint: disable`` comments that suppressed nothing this run.

    ``families`` limits the audit to rule families this run actually
    evaluated, so a file-scoped run of the D/E/X engine never flags a
    comment that exists for the flow analyzer (F rules) and vice versa.
    Bare ``# lint: disable`` comments are audited by the engine run only
    — suppress F findings by explicit id.

    X303 findings are deliberately *not* subject to inline suppression:
    the comment under audit must not be able to veto its own audit.
    """
    findings: List[Finding] = []
    path = str(info.path)
    for line in sorted(info.disable_comments):
        ids = info.disable_comments[line]
        if ids is None:
            if "X" in families and not any(
                    used_line == line
                    for used_line, _ in info.used_suppressions):
                findings.append(Finding(
                    X303.rule_id, path, line, 1,
                    "bare `# lint: disable` suppresses nothing on this "
                    "line; remove the stale comment",
                ))
            continue
        for rule_id in sorted(ids):
            if rule_id[:1] not in families:
                continue
            if (line, rule_id) not in info.used_suppressions:
                findings.append(Finding(
                    X303.rule_id, path, line, 1,
                    f"`# lint: disable={rule_id}` suppresses nothing on "
                    "this line; remove the stale comment",
                ))
    return findings


def run_lint(
    paths: Sequence[Path],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Analyze ``paths`` and return every finding.

    Parameters
    ----------
    paths:
        Files or directories to scan.
    select:
        Rule-id prefixes to keep (e.g. ``["D"]`` or ``["D106", "X"]``);
        None keeps everything.
    baseline:
        Grandfathered-finding budget; matching findings are marked
        suppressed rather than dropped, so JSON output still shows them.
    """
    files = collect_files([Path(p) for p in paths])
    if not files:
        raise LintError(f"no python files found under {list(map(str, paths))}")
    package_root = files[0].parent
    repo_root = find_repo_root(files[0])

    modules: List[ModuleInfo] = []
    broken: List[Finding] = []
    for path in files:
        try:
            modules.append(parse_module(path, package_root))
        except LintError as exc:
            # Unparseable file: a structured X304 finding, never a crash.
            broken.append(Finding(X304.rule_id, str(path), 1, 1, str(exc)))
    context = ProjectContext(package_root=package_root, modules=modules,
                             repo_root=repo_root)

    report = LintReport(files_scanned=len(files))
    report.findings.extend(broken)
    by_path = {str(info.path): info for info in modules}

    for info in modules:
        module_findings = check_module_determinism(info)
        _apply_inline_suppressions(info, module_findings)
        report.findings.extend(module_findings)

    for project_finding in (check_experiment_conformance(context)
                            + check_api_invariants(context)):
        info = by_path.get(project_finding.path)
        if info is not None:
            _apply_inline_suppressions(info, [project_finding])
        report.findings.append(project_finding)

    # Audit suppression comments only after every rule family has had its
    # chance to consume them.
    for info in modules:
        report.findings.extend(check_stale_suppressions(info))

    if select:
        prefixes = tuple(select)
        report.findings = [
            f for f in report.findings if f.rule_id.startswith(prefixes)
        ]
    if baseline is not None:
        stale = apply_baseline(report.findings, baseline)
        report.stale_baseline = [
            {"rule": rule, "path": path, "count": count}
            for (rule, path), count in sorted(stale.items())
        ]
    report.findings.sort(key=Finding.sort_key)
    return report
