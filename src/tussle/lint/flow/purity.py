"""Purity inference: side-effect summaries, rules F205-F206, and the
kernel-candidates report.

Each function gets an :class:`EffectSummary` — the externally-visible
effects it may have: parameter mutation, module-state mutation,
wall-clock reads, IO, sleeping, RNG-state consumption.  Local effects
come straight from the extraction summaries (attribute/subscript stores,
``global`` writes); call-mediated effects are folded in by a fixpoint
over the call graph, with parameter-mutation mapped through argument
positions so that a callee mutating *its* parameter only taints the
caller when the caller passed one of *its own* parameters (mutating a
locally-constructed object is invisible from outside and stays pure).

Method calls the call graph cannot resolve are classified by name:
known-mutating verbs taint the receiver, known-read methods are free,
and anything else on a non-local receiver lands in ``unknown`` — which
is fatal inside a pure-contract module (F206) and merely reported in
the kernel-candidates listing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from ..findings import Finding
from .project import Program
from .rules import F205, F206

__all__ = [
    "EffectSummary",
    "PURE_CONTRACT_PATHS",
    "KERNEL_CANDIDATE_PATHS",
    "infer_effects",
    "check_purity",
    "kernel_candidates",
]

#: Modules whose every function must be verifiably pure (the scalar /
#: vector bit-parity contract).
PURE_CONTRACT_PATHS = (
    "tussle/econ/decision.py",
    "tussle/scale/kernels.py",
    "tussle/netsim/decision.py",
    "tussle/scale/nkernels.py",
)

#: Modules scanned for already-pure, vectorization-eligible functions
#: (the ROADMAP's netsim/routing kernel extraction).
KERNEL_CANDIDATE_PATHS = ("tussle/netsim/", "tussle/routing/")

#: Method names that mutate their receiver.
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "sort", "reverse", "update", "add", "discard", "setdefault",
    "appendleft", "popleft", "rotate", "fill", "put", "resize",
    "setdefault", "write", "writelines", "setattr", "__setitem__",
    "inc", "observe_value", "install", "register", "push",
}

#: Method names that are reads/transforms anywhere (no receiver effect).
READ_METHODS = {
    "get", "keys", "values", "items", "copy", "count", "index",
    "split", "rsplit", "join", "strip", "lstrip", "rstrip", "format",
    "lower", "upper", "title", "startswith", "endswith", "replace",
    "partition", "rpartition", "encode", "decode", "ljust", "rjust",
    "zfill", "casefold", "splitlines", "find", "rfind", "isdigit",
    "reshape", "astype", "tolist", "sum", "mean", "min", "max", "all",
    "any", "cumsum", "flatten", "ravel", "nonzero", "to_dict", "most_common",
    "total_seconds", "as_integer_ratio", "bit_length", "hex", "union",
    "intersection", "difference", "issubset", "issuperset", "isdisjoint",
    "item", "tobytes", "view", "transpose", "squeeze", "clip", "round",
    "name", "hexdigest", "digest",
}

#: Method names that perform IO on their receiver.
IO_METHODS = {
    "write_text", "write_bytes", "read_text", "read_bytes", "open",
    "mkdir", "unlink", "touch", "rename", "rmdir", "flush", "close",
    "readline", "readlines", "read",
}

#: RNG draw methods: consume state from the receiver.
RNG_DRAW_METHODS = {
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "triangular", "randbytes",
    "normal", "integers", "permutation", "standard_normal", "exponential",
    "binomial", "poisson", "spawn",
}

#: Pure builtins (no effect through arguments or environment).
PURE_BUILTINS = {
    "abs", "all", "any", "ascii", "bin", "bool", "bytes", "bytearray",
    "callable", "chr", "classmethod", "complex", "dict", "divmod",
    "enumerate", "filter", "float", "format", "frozenset", "getattr",
    "hasattr", "hash", "hex", "id", "int", "isinstance", "issubclass",
    "iter", "len", "list", "map", "max", "memoryview", "min", "oct",
    "ord", "pow", "property", "range", "repr", "reversed", "round",
    "set", "slice", "sorted", "staticmethod", "str", "sum", "super",
    "tuple", "type", "vars", "zip", "next", "object", "NotImplemented",
}

#: Builtins with effects.
IO_BUILTINS = {"print", "open", "input", "breakpoint"}
MUTATE_ARG0_BUILTINS = {"setattr", "delattr"}

#: External dotted prefixes that are pure (return new values, touch
#: nothing).  Checked by prefix against the canonical import path.
PURE_EXTERNAL_PREFIXES = (
    "math.", "cmath.", "statistics.", "json.", "re.", "itertools.",
    "functools.", "operator.", "string.", "textwrap.", "fractions.",
    "decimal.", "hashlib.", "struct.", "binascii.", "base64.",
    "copy.", "dataclasses.", "enum.", "typing.", "abc.", "numbers.",
    "collections.", "heapq.merge", "bisect.bisect", "difflib.",
    "unicodedata.", "uuid.UUID", "zlib.crc32",
)

#: External dotted names that are pure exactly (no prefix match needed).
PURE_EXTERNAL_EXACT = {
    "math", "json", "copy.deepcopy", "copy.copy", "itertools.chain",
    "collections.OrderedDict", "collections.defaultdict",
    "collections.Counter", "collections.deque", "collections.namedtuple",
    "pathlib.Path", "pathlib.PurePath", "fractions.Fraction",
    "dataclasses.replace", "dataclasses.field", "dataclasses.asdict",
    "functools.reduce", "functools.lru_cache", "functools.partial",
}

#: numpy: pure by default except the in-place / stateful surface.
NUMPY_IMPURE = {
    "numpy.copyto", "numpy.put", "numpy.place", "numpy.fill_diagonal",
    "numpy.putmask", "numpy.save", "numpy.savez", "numpy.savetxt",
    "numpy.load", "numpy.loadtxt", "numpy.shares_memory",
}

#: Externals that mutate their first argument.
MUTATE_ARG0_EXTERNALS = {
    "heapq.heappush", "heapq.heappop", "heapq.heapify", "heapq.heapreplace",
    "heapq.heappushpop", "bisect.insort", "bisect.insort_left",
    "bisect.insort_right", "random.shuffle", "numpy.random.shuffle",
}


@dataclass
class EffectSummary:
    """Externally-visible effects one function may have."""

    mutates_params: Set[str] = field(default_factory=set)
    mutates_globals: Set[str] = field(default_factory=set)
    wall_clock: bool = False
    io: bool = False
    sleeps: bool = False
    draws_rng: bool = False
    unknown: Set[str] = field(default_factory=set)

    @property
    def has_hard_effects(self) -> bool:
        return bool(self.mutates_params or self.mutates_globals
                    or self.wall_clock or self.io or self.sleeps
                    or self.draws_rng)

    @property
    def is_pure(self) -> bool:
        return not self.has_hard_effects and not self.unknown

    def describe(self) -> str:
        parts: List[str] = []
        if self.mutates_params:
            parts.append("mutates-param:"
                         + ",".join(sorted(self.mutates_params)))
        if self.mutates_globals:
            parts.append("mutates-global:"
                         + ",".join(sorted(self.mutates_globals)))
        if self.wall_clock:
            parts.append("reads-wall-clock")
        if self.io:
            parts.append("performs-io")
        if self.sleeps:
            parts.append("sleeps")
        if self.draws_rng:
            parts.append("draws-rng")
        if self.unknown:
            shown = sorted(self.unknown)[:4]
            parts.append("unverified:" + ",".join(shown))
        return "; ".join(parts) if parts else "pure"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mutates_params": sorted(self.mutates_params),
            "mutates_globals": sorted(self.mutates_globals),
            "wall_clock": self.wall_clock,
            "io": self.io,
            "sleeps": self.sleeps,
            "draws_rng": self.draws_rng,
            "unknown": sorted(self.unknown),
            "pure": self.is_pure,
        }


def _receiver_slot(recv: str) -> Optional[str]:
    """Which caller slot an unresolved method receiver taints.

    'param:<name>' -> that parameter; 'global:<name>' -> module state;
    'selfattr'/'paramattr:<p>' -> self / that parameter; local
    receivers are invisible from outside (None).
    """
    if recv.startswith("param:"):
        return recv.split(":", 1)[1]
    if recv.startswith("paramattr:"):
        return recv.split(":", 1)[1]
    if recv == "selfattr":
        return "self"
    return None


def _classify_external(qual: str, effect: EffectSummary,
                       site: Dict[str, Any]) -> None:
    """Fold one resolved-external call into ``effect``."""
    if qual in MUTATE_ARG0_EXTERNALS:
        _taint_arg(effect, site, 0)
        return
    if qual.startswith("time."):
        if qual == "time.sleep":
            effect.sleeps = True
        else:
            effect.wall_clock = True
        return
    if qual.startswith("datetime.") and qual.endswith(
            ("now", "utcnow", "today")):
        effect.wall_clock = True
        return
    if qual.startswith(("os.", "sys.", "io.", "shutil.", "subprocess.",
                        "socket.", "logging.")):
        effect.io = True
        return
    if qual.startswith("random.") or qual.startswith("numpy.random."):
        effect.draws_rng = True
        return
    if qual in NUMPY_IMPURE:
        _taint_arg(effect, site, 0)
        return
    if qual.startswith("numpy."):
        return  # pure numpy surface
    if qual in PURE_EXTERNAL_EXACT or qual.startswith(
            PURE_EXTERNAL_PREFIXES):
        return
    effect.unknown.add(f"external:{qual}")


def _taint_arg(effect: EffectSummary, site: Dict[str, Any],
               index: int) -> None:
    args = site.get("args", [])
    if index < len(args):
        expr = args[index]
        if expr.get("k") == "param":
            effect.mutates_params.add(expr["name"])
        elif expr.get("k") == "seed" and expr.get("name"):
            effect.mutates_params.add(expr["name"])
        elif expr.get("k") == "globalname":
            effect.mutates_globals.add(expr["name"])
        # locals: contained


def _local_effects(program: Program, qual: str,
                   fn: Dict[str, Any]) -> EffectSummary:
    """Effects visible directly in the function body (no propagation)."""
    effect = EffectSummary(
        mutates_params=set(fn["mutations"]["params"]),
        mutates_globals=set(fn["mutations"]["globals"]),
    )
    for site in fn["calls"]:
        target = site["t"]
        kind = target["t"]
        if kind == "builtin":
            name = target["n"]
            if name in IO_BUILTINS:
                effect.io = True
            elif name in MUTATE_ARG0_BUILTINS:
                _taint_arg(effect, site, 0)
            elif name not in PURE_BUILTINS:
                effect.unknown.add(f"builtin:{name}")
        elif kind == "ext":
            _classify_external(target["q"], effect, site)
        elif kind == "meth":
            resolved = program.resolve_call(fn, site)
            if resolved is not None:
                continue  # handled by propagation
            attr = target["attr"]
            slot = _receiver_slot(target["recv"])
            if attr in RNG_DRAW_METHODS:
                effect.draws_rng = True
            elif attr in MUTATING_METHODS:
                if slot is not None:
                    effect.mutates_params.add(slot)
                elif target["recv"].startswith("global:"):
                    effect.mutates_globals.add(
                        target["recv"].split(":", 1)[1])
            elif attr in IO_METHODS:
                effect.io = True
            elif attr in READ_METHODS or attr.startswith(("is_", "has_",
                                                          "get_", "to_")):
                pass
            elif slot is not None or target["recv"] in ("other",):
                effect.unknown.add(f"method:{attr}")
        elif kind == "dyn":
            effect.unknown.add("dynamic-call")
        # proj/selfm/localfn: propagation or already inlined
    # Drawing from an RNG received as a parameter mutates that parameter.
    for site in fn["calls"]:
        target = site["t"]
        if target["t"] == "meth" and target["attr"] in RNG_DRAW_METHODS:
            slot = _receiver_slot(target["recv"])
            if slot is not None:
                effect.mutates_params.add(slot)
    return effect


def infer_effects(program: Program) -> Dict[str, EffectSummary]:
    """Fixpoint side-effect summary for every project function."""
    effects: Dict[str, EffectSummary] = {}
    for qual, fn, _path in program.iter_functions():
        effects[qual] = _local_effects(program, qual, fn)

    changed = True
    rounds = 0
    while changed and rounds < 50:
        changed = False
        rounds += 1
        for qual, fn, _path in program.iter_functions():
            mine = effects[qual]
            before = (len(mine.mutates_params), len(mine.mutates_globals),
                      mine.wall_clock, mine.io, mine.sleeps, mine.draws_rng,
                      len(mine.unknown))
            for site in fn["calls"]:
                callee_qual = program.resolve_call(fn, site)
                if callee_qual is None:
                    continue
                callee_fn = program.function(callee_qual)
                theirs = effects.get(callee_qual)
                if theirs is None or callee_fn is None:
                    continue
                mine.mutates_globals |= theirs.mutates_globals
                mine.wall_clock |= theirs.wall_clock
                mine.io |= theirs.io
                mine.sleeps |= theirs.sleeps
                mine.draws_rng |= theirs.draws_rng
                mine.unknown |= theirs.unknown
                _map_param_mutations(mine, theirs, callee_fn, site)
            after = (len(mine.mutates_params), len(mine.mutates_globals),
                     mine.wall_clock, mine.io, mine.sleeps, mine.draws_rng,
                     len(mine.unknown))
            if after != before:
                changed = True
    return effects


def _map_param_mutations(mine: EffectSummary, theirs: EffectSummary,
                         callee: Dict[str, Any], site: Dict[str, Any]) -> None:
    """Translate callee parameter mutations into caller-visible effects."""
    if not theirs.mutates_params:
        return
    params = callee["params"]
    is_method = bool(callee.get("cls")) and params[:1] == ["self"]
    target = site["t"]
    for param in theirs.mutates_params:
        if param == "self" and is_method:
            # Receiver mutation: taints the caller only when the receiver
            # is one of the caller's own parameters (or module state).
            if target["t"] == "meth":
                slot = _receiver_slot(target["recv"])
                if slot is not None:
                    mine.mutates_params.add(slot)
                elif target["recv"].startswith("global:"):
                    mine.mutates_globals.add(target["recv"].split(":", 1)[1])
            elif target["t"] == "selfm":
                mine.mutates_params.add("self")
            # Constructor call / local receiver: contained.
            continue
        try:
            index = params.index(param)
        except ValueError:
            continue
        arg = site["kw"].get(param)
        if arg is None:
            offset = index - 1 if is_method and target["t"] in ("meth",
                                                                "selfm") \
                else index
            args = site.get("args", [])
            if 0 <= offset < len(args):
                arg = args[offset]
        if arg is None:
            continue
        kind = arg.get("k")
        if kind in ("param", "seed") and arg.get("name"):
            mine.mutates_params.add(arg["name"])
        elif kind == "param_attr":
            mine.mutates_params.add(arg["name"])
        elif kind == "globalname":
            mine.mutates_globals.add(arg["name"])
        elif kind == "rng" and arg.get("name", "").startswith("self."):
            mine.mutates_params.add("self")
        # locals / fresh values: contained


def _in_pure_contract(path: str) -> bool:
    posix = path.replace("\\", "/")
    return any(posix.endswith(suffix) for suffix in PURE_CONTRACT_PATHS)


def _in_kernel_scan(path: str) -> bool:
    posix = path.replace("\\", "/")
    return any(marker in posix for marker in KERNEL_CANDIDATE_PATHS)


def check_purity(program: Program,
                 effects: Dict[str, EffectSummary]) -> List[Finding]:
    """F205/F206 over the pure-contract modules."""
    findings: List[Finding] = []
    for qual, fn, path in program.iter_functions():
        if not _in_pure_contract(path) or fn["name"] == "<module>":
            continue
        effect = effects[qual]
        if effect.has_hard_effects:
            findings.append(Finding(
                F205.rule_id, path, fn["line"] or 1, 1,
                f"{qual} must stay pure for bit-parity but "
                f"{effect.describe()}",
            ))
        elif effect.unknown:
            shown = ", ".join(sorted(effect.unknown)[:4])
            findings.append(Finding(
                F206.rule_id, path, fn["line"] or 1, 1,
                f"purity of {qual} cannot be verified: calls {shown}",
            ))
    return findings


def kernel_candidates(program: Program,
                      effects: Dict[str, EffectSummary]) -> List[Dict]:
    """Already-pure netsim/routing functions, ready for vectorization.

    Sorted strictly-pure first, then by qualified name; each entry
    carries the inferred side-effect summary so the ROADMAP's netsim
    vectorization can start from machine-checked candidates.
    """
    out: List[Dict[str, Any]] = []
    for qual, fn, path in program.iter_functions():
        if not _in_kernel_scan(path):
            continue
        if fn["name"] == "<module>" or fn["name"].startswith("__"):
            continue
        if fn.get("cls") is not None:
            continue  # top-level decision functions only
        effect = effects[qual]
        if effect.has_hard_effects:
            continue
        out.append({
            "function": qual,
            "path": path,
            "line": fn["line"],
            "params": fn["params"],
            "effects": effect.describe(),
            "pure": effect.is_pure,
            "unverified_calls": sorted(effect.unknown),
        })
    out.sort(key=lambda entry: (not entry["pure"], entry["function"]))
    return out
