"""Per-file summary extraction for the flow analyzer.

One parse of a source file produces a **summary**: a plain-dict,
JSON-serializable digest of everything the whole-program analyses need —
functions, resolved call sites, trace expressions for seed arguments,
local mutation effects, RNG bindings.  Summaries are what the
:mod:`tussle.lint.flow.cache` stores keyed on the source SHA-256, so a
warm run never re-parses an unchanged file; the link phase
(:mod:`tussle.lint.flow.project` and the rule modules) operates on
summaries only and never touches an AST.

Summary schema (all keys/values JSON-safe)::

    ModuleSummary = {
      "version":  int,          # ANALYZER_VERSION at extraction time
      "module":   str,          # canonical dotted name ("tussle.econ.market")
      "path":     str,
      "functions": [FunctionSummary, ...],   # defs, methods, "<module>"
      "classes":  {name: {"bases": [TargetStr], "methods": [name]}},
      "mutable_globals": [name, ...],
      "suppressions":     {line: [ids] | None},  # every suppression comment
      "disable_comments": {line: [ids] | None},  # only `# lint: disable` form
    }

    FunctionSummary = {
      "qual": str,              # "tussle.econ.market.Market.step"
      "name": str, "line": int, "cls": str | None,
      "params": [name, ...],    # posonly + args + kwonly, in order
      "defaults": {param: TraceExpr},
      "annotations": {param: str},    # resolved dotted class of annotation
      "calls": [CallSite, ...],
      "bindings": {local: TraceExpr}, # last simple assignment per local
      "returns": [TraceExpr, ...],
      "rng_ctors": [{"line", "col", "ctor", "seed": TraceExpr | None}],
      "rng_defaults": [{"line", "col", "ctor"}],       # F204 precursors
      "mutations": {"params": [name], "globals": [name]},
    }

    CallSite = {"t": Target, "line": int, "col": int,
                "args": [TraceExpr], "kw": {name: TraceExpr}, "star": bool}

Call targets (``Target``) and trace expressions (``TraceExpr``) are
small tagged dicts; see :func:`encode_target_str` and ``_encode_expr``
for the vocabulary.  Both are deliberately *bounded*: expressions nest
at most ``_MAX_EXPR_DEPTH`` levels, everything deeper collapses to
``{"k": "opaque"}`` — the analyses treat opaque conservatively.
"""

from __future__ import annotations

import ast
import builtins
from pathlib import Path
from typing import Any, Dict, List, Optional, Set

__all__ = [
    "ANALYZER_VERSION",
    "RNG_CTORS",
    "SEED_DERIVATION_FNS",
    "extract_summary",
    "module_dotted_name",
    "is_seedlike",
]

#: Bump to invalidate every cached summary when extraction changes shape.
ANALYZER_VERSION = 1

#: Canonical names of RNG constructors (post import-resolution).
RNG_CTORS = {
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator",
}

#: Project functions sanctioned as substream derivations: their return
#: value counts as a traced seed wherever it flows.
SEED_DERIVATION_FNS = {"derive_seed", "digest63"}

#: RNG methods that yield an independent-substream seed.
_SUBSTREAM_METHODS = {"getrandbits", "randint", "randrange"}

#: Identifier fragments that mark a name/attribute as seed-carrying.
_SEED_FRAGMENT = "seed"

_MAX_EXPR_DEPTH = 5

_BUILTIN_NAMES = frozenset(dir(builtins))


def is_seedlike(identifier: str) -> bool:
    """Does this identifier carry a seed by naming convention?"""
    return _SEED_FRAGMENT in identifier.lower()


def module_dotted_name(path: Path) -> str:
    """Canonical dotted module name, walking up through ``__init__.py``.

    ``src/tussle/econ/market.py`` -> ``tussle.econ.market`` regardless of
    the scan root; a loose file in a package-less directory is just its
    stem.
    """
    parts = [] if path.stem == "__init__" else [path.stem]
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    return ".".join(reversed(parts)) or path.stem


def _resolve_import_table(tree: ast.Module, module: str,
                          is_package: bool) -> Dict[str, str]:
    """Local name -> canonical dotted path, resolving *relative* imports too.

    Unlike the engine-level table this maps ``from ..errors import X`` in
    ``tussle.econ.market`` to ``tussle.errors.X`` so the call graph can
    link project symbols across packages.
    """
    table: Dict[str, str] = {}
    own_parts = module.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative: strip (level - (1 if package else 0)) tails.
                drop = node.level - (1 if is_package else 0)
                base_parts = own_parts[:-drop] if drop else own_parts
                base = ".".join(base_parts + ([node.module]
                                              if node.module else []))
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


def _dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


class _FunctionExtractor:
    """Walk one function body (nested defs inlined) into a FunctionSummary."""

    def __init__(self, owner: "_ModuleExtractor", node: Optional[ast.AST],
                 qual: str, name: str, cls: Optional[str]):
        self.owner = owner
        self.qual = qual
        self.name = name
        self.cls = cls
        self.params: List[str] = []
        self.vararg: Optional[str] = None
        self.kwarg: Optional[str] = None
        self.defaults: Dict[str, Any] = {}
        self.annotations: Dict[str, str] = {}
        self.calls: List[Dict[str, Any]] = []
        self.bindings: Dict[str, Any] = {}
        self.returns: List[Any] = []
        self.rng_ctors: List[Dict[str, Any]] = []
        self.rng_defaults: List[Dict[str, Any]] = []
        self.mut_params: Set[str] = set()
        self.mut_globals: Set[str] = set()
        self.locals: Set[str] = set()
        self.local_funcs: Set[str] = set()
        self.local_types: Dict[str, str] = {}
        self.rng_names: Set[str] = set()
        self.globals_decl: Set[str] = set()
        self.line = getattr(node, "lineno", 0) if node is not None else 0

    # -- signature -----------------------------------------------------
    def read_signature(self, node: ast.FunctionDef) -> None:
        args = node.args
        ordered = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        self.params = [a.arg for a in ordered]
        self.vararg = args.vararg.arg if args.vararg else None
        self.kwarg = args.kwarg.arg if args.kwarg else None
        for arg in ordered:
            if arg.annotation is not None:
                resolved = self._resolve_annotation(arg.annotation)
                if resolved is not None:
                    self.annotations[arg.arg] = resolved
            if "rng" in arg.arg.lower():
                self.rng_names.add(arg.arg)
        # Map defaults back to their parameters (defaults are right-aligned).
        positional = list(args.posonlyargs) + list(args.args)
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            self._read_default(arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._read_default(arg.arg, default)

    def _read_default(self, param: str, default: ast.expr) -> None:
        self.defaults[param] = self.encode_expr(default)
        if isinstance(default, ast.Call):
            target = self.owner.resolve_target_prefix(default.func)
            if target in RNG_CTORS:
                self.rng_defaults.append({
                    "line": default.lineno, "col": default.col_offset + 1,
                    "ctor": target,
                })

    def _resolve_annotation(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):  # Optional[X] / List[X] heads
            return None
        name = _dotted(node)
        if name is None:
            return None
        return self.owner.resolve_symbol(name)

    # -- name classification -------------------------------------------
    def collect_locals(self, body: List[ast.stmt]) -> None:
        """Pre-pass: every name this function binds (nested defs inlined)."""
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.locals.add(node.name)
                self.local_funcs.add(node.name)
                for arg in (list(node.args.posonlyargs) + list(node.args.args)
                            + list(node.args.kwonlyargs)):
                    self.locals.add(arg.arg)
                for va in (node.args.vararg, node.args.kwarg):
                    if va is not None:
                        self.locals.add(va.arg)
            elif isinstance(node, ast.Lambda):
                for arg in (list(node.args.posonlyargs) + list(node.args.args)
                            + list(node.args.kwonlyargs)):
                    self.locals.add(arg.arg)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self.locals.add(node.id)
            elif isinstance(node, ast.comprehension):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        self.locals.add(sub.id)
            elif isinstance(node, ast.Global):
                self.globals_decl.update(node.names)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                self.locals.add(node.name)
        self.locals -= self.globals_decl

    def classify_name(self, name: str) -> str:
        """'param' | 'local' | 'global' | 'import' | 'builtin' | 'other'"""
        if name in self.params or name in (self.vararg, self.kwarg):
            return "param"
        if name in self.locals:
            return "local"
        if name in self.globals_decl or name in self.owner.top_names:
            return "global"
        if name in self.owner.imports:
            return "import"
        if name in _BUILTIN_NAMES:
            return "builtin"
        return "other"

    # -- trace expressions ---------------------------------------------
    def encode_expr(self, node: ast.expr, depth: int = 0) -> Dict[str, Any]:
        if depth > _MAX_EXPR_DEPTH:
            return {"k": "opaque"}
        if isinstance(node, ast.Constant):
            value = node.value
            if not isinstance(value, (int, float, str, bool, type(None))):
                value = repr(value)
            return {"k": "const", "v": value}
        if isinstance(node, ast.Name):
            return self._encode_name(node.id)
        if isinstance(node, ast.Attribute):
            return self._encode_attribute(node)
        if isinstance(node, ast.BinOp):
            return {"k": "binop", "parts": [
                self.encode_expr(node.left, depth + 1),
                self.encode_expr(node.right, depth + 1)]}
        if isinstance(node, ast.UnaryOp):
            return self.encode_expr(node.operand, depth + 1)
        if isinstance(node, ast.IfExp):
            return {"k": "choice", "parts": [
                self.encode_expr(node.body, depth + 1),
                self.encode_expr(node.orelse, depth + 1)]}
        if isinstance(node, ast.BoolOp):
            return {"k": "choice", "parts": [
                self.encode_expr(v, depth + 1) for v in node.values]}
        if isinstance(node, ast.Call):
            return {"k": "call",
                    "t": self.encode_target(node.func),
                    "args": [self.encode_expr(a, depth + 1)
                             for a in node.args
                             if not isinstance(a, ast.Starred)][:6]}
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return {"k": "container", "items": [
                self.encode_expr(e, depth + 1) for e in node.elts[:8]]}
        if isinstance(node, ast.Dict):
            return {"k": "container", "items": [
                self.encode_expr(v, depth + 1)
                for v in node.values[:8] if v is not None]}
        if isinstance(node, ast.Starred):
            return self.encode_expr(node.value, depth + 1)
        if isinstance(node, ast.Lambda):
            return {"k": "lambda"}
        return {"k": "opaque"}

    def _encode_name(self, name: str) -> Dict[str, Any]:
        kind = self.classify_name(name)
        if name in self.rng_names:
            return {"k": "rng", "name": name}
        if kind == "param":
            if is_seedlike(name):
                return {"k": "seed", "name": name}
            return {"k": "param", "name": name}
        if is_seedlike(name):
            return {"k": "seed", "name": name}
        if kind == "local":
            if name in self.local_funcs:
                return {"k": "localfunc", "name": name}
            return {"k": "local", "name": name}
        if kind == "global":
            resolved = self.owner.resolve_symbol(name)
            if resolved is not None and self.owner.is_function_name(name):
                return {"k": "funcref", "q": resolved}
            return {"k": "globalname", "name": name}
        if kind == "import":
            resolved = self.owner.resolve_symbol(name)
            if resolved is not None:
                if resolved.startswith("tussle."):
                    return {"k": "funcref", "q": resolved}
                return {"k": "ext", "q": resolved}
        return {"k": "name", "name": name}

    def _encode_attribute(self, node: ast.Attribute) -> Dict[str, Any]:
        dotted = _dotted(node)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            attrs = rest.split(".") if rest else []
            if "rng" in node.attr.lower():
                return {"k": "rng", "name": dotted}
            if is_seedlike(node.attr):
                return {"k": "seed", "name": dotted}
            kind = self.classify_name(head)
            if kind == "param" and len(attrs) == 1:
                return {"k": "param_attr", "name": head, "attr": node.attr}
            if kind == "import":
                resolved = self.owner.resolve_symbol(dotted)
                if resolved is not None:
                    return {"k": "ext", "q": resolved}
        return {"k": "opaque"}

    # -- call targets --------------------------------------------------
    def encode_target(self, func: ast.expr) -> Dict[str, Any]:
        if isinstance(func, ast.Name):
            name = func.id
            kind = self.classify_name(name)
            if kind == "local":
                if name in self.local_funcs:
                    return {"t": "localfn", "n": name}
                local_type = self.local_types.get(name)
                if local_type is not None:
                    return {"t": "proj", "q": local_type}
                return {"t": "dyn"}
            if kind in ("global", "import"):
                resolved = self.owner.resolve_symbol(name)
                if resolved is not None:
                    if resolved.startswith("tussle."):
                        return {"t": "proj", "q": resolved}
                    return {"t": "ext", "q": resolved}
            if kind == "builtin":
                return {"t": "builtin", "n": name}
            if kind == "param":
                return {"t": "meth", "recv": f"param:{name}",
                        "attr": "__call__",
                        "ann": self.annotations.get(name)}
            return {"t": "dyn"}
        if isinstance(func, ast.Attribute):
            return self._encode_attr_target(func)
        return {"t": "dyn"}

    def _encode_attr_target(self, func: ast.Attribute) -> Dict[str, Any]:
        attr = func.attr
        base = func.value
        if isinstance(base, ast.Name):
            head = base.id
            if head == "self" and self.cls is not None:
                return {"t": "selfm", "cls": self.cls, "attr": attr}
            kind = self.classify_name(head)
            if kind in ("import", "global"):
                dotted = _dotted(func)
                if dotted is not None:
                    resolved = self.owner.resolve_symbol(dotted)
                    if resolved is not None:
                        if resolved.startswith("tussle."):
                            return {"t": "proj", "q": resolved}
                        return {"t": "ext", "q": resolved}
                if kind == "global":
                    return {"t": "meth", "recv": f"global:{head}",
                            "attr": attr, "ann": None}
            if kind == "param":
                return {"t": "meth", "recv": f"param:{head}", "attr": attr,
                        "ann": self.annotations.get(head)}
            if kind == "local":
                return {"t": "meth", "recv": f"local:{head}", "attr": attr,
                        "ann": self.local_types.get(head)}
            return {"t": "meth", "recv": "other", "attr": attr, "ann": None}
        # Method on an attribute chain / call result / subscript.
        dotted = _dotted(func)
        if dotted is not None:
            resolved = self.owner.resolve_symbol(dotted)
            if resolved is not None and not resolved.startswith("tussle."):
                return {"t": "ext", "q": resolved}
            head, _, _rest = dotted.partition(".")
            if head == "self" or self.classify_name(head) == "param":
                recv = "selfattr" if head == "self" else f"paramattr:{head}"
                return {"t": "meth", "recv": recv, "attr": attr, "ann": None}
        if isinstance(base, ast.Call):
            return {"t": "meth", "recv": "local:<temp>", "attr": attr,
                    "ann": None}
        return {"t": "meth", "recv": "other", "attr": attr, "ann": None}

    # -- statement walk ------------------------------------------------
    def walk_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _walk_stmt(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: inline its body (params already counted as locals).
            for default in list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None]:
                self._walk_expr(default)
            self.walk_body(node.body)
            return
        if isinstance(node, ast.ClassDef):
            self.walk_body(node.body)
            return
        if isinstance(node, ast.Assign):
            self._record_assignment(node.targets, node.value)
            self._walk_expr(node.value)
            for target in node.targets:
                self._record_store_target(target)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._record_assignment([node.target], node.value)
                self._walk_expr(node.value)
            self._record_store_target(node.target)
            return
        if isinstance(node, ast.AugAssign):
            self._walk_expr(node.value)
            self._record_store_target(node.target)
            return
        if isinstance(node, ast.Return):
            if node.value is not None:
                self.returns.append(self.encode_expr(node.value))
                self._walk_expr(node.value)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._record_store_target(target)
            return
        # Generic statement: walk child statements and expressions.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child)
            elif isinstance(child, ast.expr):
                self._walk_expr(child)
            elif isinstance(child, (ast.withitem, ast.ExceptHandler,
                                    ast.comprehension)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._walk_stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self._walk_expr(sub)

    def _record_assignment(self, targets: List[ast.expr],
                           value: ast.expr) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        if self.classify_name(name) != "local":
            return
        self.bindings[name] = self.encode_expr(value)
        if isinstance(value, ast.Call):
            target = self.owner.resolve_target_prefix(value.func)
            if target in RNG_CTORS:
                self.rng_names.add(name)
            elif target is not None and target.startswith("tussle."):
                self.local_types[name] = target
        if isinstance(value, ast.Name) and value.id in self.rng_names:
            self.rng_names.add(name)

    def _record_store_target(self, target: ast.expr) -> None:
        """Attribute/subscript stores mutate their receiver."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store_target(element)
            return
        if isinstance(target, ast.Name):
            if target.id in self.globals_decl or (
                    target.id in self.owner.top_names
                    and target.id not in self.locals
                    and target.id not in self.params):
                self.mut_globals.add(target.id)
            return
        head = target
        while isinstance(head, (ast.Attribute, ast.Subscript)):
            head = head.value
        if not isinstance(head, ast.Name):
            return
        kind = self.classify_name(head.id)
        if kind == "param":
            self.mut_params.add(head.id)
        elif kind == "global":
            self.mut_globals.add(head.id)

    def _walk_expr(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._record_call(sub)
            elif isinstance(sub, ast.Lambda):
                pass  # bodies walked via ast.walk already

    def _record_call(self, node: ast.Call) -> None:
        target = self.encode_target(node.func)
        site: Dict[str, Any] = {
            "t": target,
            "line": node.lineno,
            "col": node.col_offset + 1,
            "args": [self.encode_expr(a) for a in node.args
                     if not isinstance(a, ast.Starred)][:8],
            "kw": {kw.arg: self.encode_expr(kw.value)
                   for kw in node.keywords if kw.arg is not None},
        }
        if any(isinstance(a, ast.Starred) for a in node.args) or \
                any(kw.arg is None for kw in node.keywords):
            site["star"] = True
        self.calls.append(site)
        # RNG construction site: record the seed trace expression.
        resolved = self.owner.resolve_target_prefix(node.func)
        if resolved in RNG_CTORS:
            seed_expr: Optional[Dict[str, Any]] = None
            if node.args:
                seed_expr = self.encode_expr(node.args[0])
            else:
                for kw in node.keywords:
                    if kw.arg in ("seed", "x"):
                        seed_expr = self.encode_expr(kw.value)
                        break
            self.rng_ctors.append({
                "line": node.lineno, "col": node.col_offset + 1,
                "ctor": resolved, "seed": seed_expr,
            })

    # -- output --------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        return {
            "qual": self.qual,
            "name": self.name,
            "line": self.line,
            "cls": self.cls,
            "params": self.params,
            "defaults": self.defaults,
            "annotations": self.annotations,
            "calls": self.calls,
            "bindings": self.bindings,
            "returns": self.returns[:8],
            "rng_ctors": self.rng_ctors,
            "rng_defaults": self.rng_defaults,
            "mutations": {"params": sorted(self.mut_params),
                          "globals": sorted(self.mut_globals)},
        }


class _ModuleExtractor:
    """Shared per-module resolution state for function extraction."""

    def __init__(self, module: str, tree: ast.Module, is_package: bool):
        self.module = module
        self.imports = _resolve_import_table(tree, module, is_package)
        self.top_names: Set[str] = set()
        self.function_names: Set[str] = set()
        self.class_names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.top_names.add(node.name)
                self.function_names.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.top_names.add(node.name)
                self.class_names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            self.top_names.add(sub.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and \
                    isinstance(node.target, ast.Name):
                self.top_names.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                pass  # covered by the import table

    def resolve_symbol(self, dotted: str) -> Optional[str]:
        """Canonical dotted path for a module-scope name or alias chain."""
        head, _, rest = dotted.partition(".")
        if head in self.class_names or head in self.function_names:
            base = f"{self.module}.{head}"
            return f"{base}.{rest}" if rest else base
        if head in self.imports:
            canonical = self.imports[head]
            return f"{canonical}.{rest}" if rest else canonical
        if head in self.top_names:
            base = f"{self.module}.{head}"
            return f"{base}.{rest}" if rest else base
        return None

    def is_function_name(self, name: str) -> bool:
        return name in self.function_names

    def resolve_target_prefix(self, func: ast.expr) -> Optional[str]:
        dotted = _dotted(func)
        if dotted is None:
            return None
        return self.resolve_symbol(dotted)


def _extract_function(owner: _ModuleExtractor, node: ast.FunctionDef,
                      cls: Optional[str]) -> Dict[str, Any]:
    qual = (f"{owner.module}.{cls}.{node.name}" if cls
            else f"{owner.module}.{node.name}")
    fx = _FunctionExtractor(owner, node, qual, node.name, cls)
    fx.read_signature(node)
    fx.collect_locals(node.body)
    fx.walk_body(node.body)
    return fx.summary()


_MUTABLE_CTOR_NAMES = {"list", "dict", "set", "defaultdict", "OrderedDict",
                       "Counter", "deque"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CTOR_NAMES
    return False


def extract_summary(path: Path, tree: ast.Module,
                    suppressions: Dict[int, Optional[Set[str]]],
                    disable_comments: Dict[int, Optional[Set[str]]],
                    ) -> Dict[str, Any]:
    """Digest one parsed module into its JSON-safe flow summary."""
    module = module_dotted_name(path)
    owner = _ModuleExtractor(module, tree, is_package=path.stem == "__init__")

    functions: List[Dict[str, Any]] = []
    classes: Dict[str, Dict[str, Any]] = {}
    mutable_globals: List[str] = []
    module_level: List[ast.stmt] = []

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(_extract_function(owner, node, None))
        elif isinstance(node, ast.ClassDef):
            bases = []
            for base in node.bases:
                resolved = owner.resolve_target_prefix(base)
                bases.append(resolved if resolved is not None
                             else (_dotted(base) or "?"))
            methods = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.append(_extract_function(owner, item, node.name))
                    methods.append(item.name)
            classes[node.name] = {"bases": bases, "methods": methods,
                                  "line": node.lineno}
        else:
            module_level.append(node)
            if isinstance(node, ast.Assign) and _is_mutable_literal(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        mutable_globals.append(target.id)

    # Module-level statements form a synthetic "<module>" function so
    # module-scope RNG construction and calls participate in analysis.
    mx = _FunctionExtractor(owner, None, f"{module}.<module>", "<module>", None)
    mx.line = 1
    mx.locals = set()  # module scope: names resolve via owner.top_names
    mx.walk_body(module_level)
    functions.append(mx.summary())

    return {
        "version": ANALYZER_VERSION,
        "module": module,
        "path": str(path),
        "functions": functions,
        "classes": classes,
        "mutable_globals": sorted(set(mutable_globals)),
        "suppressions": {line: (sorted(ids) if ids is not None else None)
                         for line, ids in suppressions.items()},
        "disable_comments": {line: (sorted(ids) if ids is not None else None)
                             for line, ids in disable_comments.items()},
    }
