"""Whole-program flow analysis (``python -m tussle.lint flow``).

The single-file D/E/X families check each module in isolation; this
package links the whole tree.  One run:

1. **extract** — each source file is parsed once into a JSON-safe
   summary (:mod:`~tussle.lint.flow.summaries`), or loaded straight from
   the incremental cache keyed on the source SHA-256
   (:mod:`~tussle.lint.flow.cache`);
2. **link** — summaries are joined into a :class:`~tussle.lint.flow.
   project.Program`: project-wide symbol table, call graph, reverse
   call graph, worker reachability;
3. **analyze** — seed provenance (F201-F204), purity inference
   (F205-F206) and worker safety (F207-F208) run over the linked
   program, and the kernel-candidates report lists pure netsim/routing
   functions eligible for vectorization.

A warm run (all cache hits) never touches an AST — only the link phase
executes, which is what makes the CI cache worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ...errors import LintError
from ..baseline import Baseline, apply_baseline
from ..engine import X303, X304, collect_files
from ..findings import Finding
from .cache import SummaryCache, source_digest
from .project import Program
from .purity import infer_effects, check_purity, kernel_candidates
from .rngflow import check_rng_flow
from .rules import FLOW_RULES  # noqa: F401  (import registers F rules)
from .summaries import ANALYZER_VERSION, extract_summary, module_dotted_name
from .workersafety import check_worker_safety

__all__ = ["FlowReport", "run_flow", "FLOW_RULES"]

#: Rule families this run evaluates (for the stale-suppression audit).
_FLOW_FAMILIES = ("F",)


@dataclass
class FlowReport:
    """Everything one flow-analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Pure netsim/routing functions eligible for kernel extraction.
    kernel_candidates: List[Dict[str, Any]] = field(default_factory=list)
    stale_baseline: List[dict] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def clean(self) -> bool:
        return not self.active and not self.stale_baseline

    def to_dict(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.active],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_baseline": list(self.stale_baseline),
            "cache": dict(self.cache_stats),
            "kernel_candidates": list(self.kernel_candidates),
            "clean": self.clean,
        }


def _line_table(raw: Dict[Any, Any]) -> Dict[int, Optional[Set[str]]]:
    """Normalize a summary suppression table (JSON keys are strings)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for line, ids in raw.items():
        table[int(line)] = set(ids) if ids is not None else None
    return table


def _load_or_extract(path: Path, cache: SummaryCache) -> Dict[str, Any]:
    """One file's summary: from cache when possible, else parsed fresh.

    Unparseable files yield a *tombstone* summary carrying the error so
    the link phase can surface an X304 finding without re-reading the
    file every run.
    """
    import ast

    try:
        data = path.read_bytes()
    except OSError as exc:
        return {"version": ANALYZER_VERSION, "path": str(path),
                "broken": f"cannot read {path}: {exc}"}
    digest = source_digest(data, module_dotted_name(path))
    cached = cache.lookup(digest)
    if cached is not None:
        cached["path"] = str(path)  # the tree may have moved since caching
        return cached

    try:
        source = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        summary: Dict[str, Any] = {
            "version": ANALYZER_VERSION, "path": str(path),
            "broken": f"cannot decode {path} as UTF-8: {exc}"}
        cache.store(digest, summary)
        return summary
    try:
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, ValueError) as exc:
        summary = {"version": ANALYZER_VERSION, "path": str(path),
                   "broken": f"cannot parse {path}: {exc}"}
        cache.store(digest, summary)
        return summary

    from ..context import _parse_disable_comments, _parse_suppressions
    lines = source.splitlines()
    summary = extract_summary(path, tree, _parse_suppressions(lines),
                              _parse_disable_comments(lines))
    cache.store(digest, summary)
    return summary


def run_flow(
    paths: Sequence[Path],
    cache_dir: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
) -> FlowReport:
    """Run the whole-program analyses over ``paths``.

    Parameters mirror :func:`tussle.lint.engine.run_lint`; ``cache_dir``
    enables the incremental summary cache (None disables caching).
    """
    files = collect_files([Path(p) for p in paths])
    if not files:
        raise LintError(f"no python files found under {list(map(str, paths))}")

    cache = SummaryCache(directory=cache_dir)
    summaries: List[Dict[str, Any]] = []
    findings: List[Finding] = []
    for path in files:
        summary = _load_or_extract(path, cache)
        if "broken" in summary:
            findings.append(Finding(X304.rule_id, str(path), 1, 1,
                                    summary["broken"]))
        else:
            summaries.append(summary)
    cache.prune()

    program = Program(summaries)
    effects = infer_effects(program)
    findings.extend(check_rng_flow(program))
    findings.extend(check_purity(program, effects))
    findings.extend(check_worker_safety(program, effects))

    # Inline suppressions + the F-family stale-suppression audit.
    by_path: Dict[str, Dict[str, Any]] = {s["path"]: s for s in summaries}
    used: Dict[str, Set[Tuple[int, str]]] = {}
    for finding in findings:
        summary = by_path.get(finding.path)
        if summary is None:
            continue
        table = _line_table(summary.get("suppressions", {}))
        ids = table.get(finding.line, "absent")
        if ids != "absent" and (ids is None or finding.rule_id in ids):
            finding.suppressed = True
            finding.suppression_source = "inline"
            used.setdefault(finding.path, set()).add(
                (finding.line, finding.rule_id))
    for summary in summaries:
        disable = _line_table(summary.get("disable_comments", {}))
        fired = used.get(summary["path"], set())
        for line in sorted(disable):
            ids = disable[line]
            if ids is None:
                continue  # bare disables are audited by the engine run
            for rule_id in sorted(ids):
                if rule_id[:1] not in _FLOW_FAMILIES:
                    continue
                if (line, rule_id) not in fired:
                    findings.append(Finding(
                        X303.rule_id, summary["path"], line, 1,
                        f"`# lint: disable={rule_id}` suppresses nothing "
                        "on this line; remove the stale comment",
                    ))

    report = FlowReport(files_scanned=len(files),
                        cache_stats=cache.stats())
    report.findings = findings
    if select:
        prefixes = tuple(select)
        report.findings = [
            f for f in report.findings if f.rule_id.startswith(prefixes)
        ]
    if baseline is not None:
        stale = apply_baseline(report.findings, baseline)
        report.stale_baseline = [
            {"rule": rule, "path": path, "count": count}
            for (rule, path), count in sorted(stale.items())
        ]
    report.findings.sort(key=Finding.sort_key)
    report.kernel_candidates = kernel_candidates(program, effects)
    return report
