"""Seed-provenance analysis: rules F201-F204.

Every RNG construction site recorded during extraction carries a *trace
expression* for its seed argument.  :func:`check_rng_flow` evaluates
each trace against the whole program:

* terminals — integer/string literals, seed-named parameters and
  attributes (``seed``, ``base_seed``, ``self.seed``), and registered
  substream derivations (``derive_seed``/``digest63``/``getrandbits``)
  — are traced by construction;
* a *non*-seed-named parameter is traced only if **every** call site of
  the enclosing function (via the reverse call graph) passes a traced
  value for it, recursively;
* everything else (unresolvable names, external calls, opaque
  expressions) fails the trace and fires F201.

F202 flags one RNG value passed into two or more distinct tussle
subsystems from the same function (stream aliasing), F203 flags RNG
values crossing an executor/process boundary, and F204 flags RNG
constructors evaluated in parameter defaults.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..findings import Finding
from .project import Program, subsystem_of
from .rules import F201, F202, F203, F204
from .summaries import SEED_DERIVATION_FNS

__all__ = ["check_rng_flow", "trace_seed_expr", "EXECUTOR_BOUNDARY_METHODS"]

#: Method names that hand their callable/iterable arguments to another
#: process or worker (the executor boundary for F203/F208).
EXECUTOR_BOUNDARY_METHODS = {
    "map", "imap", "imap_unordered", "starmap", "starmap_async",
    "apply", "apply_async", "map_async", "submit",
}

#: External constructors that spawn a worker taking target/args payloads.
EXECUTOR_BOUNDARY_CTORS = {
    "multiprocessing.Process", "multiprocessing.pool.Pool",
    "multiprocessing.Pool", "threading.Thread",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
}

#: RNG methods whose result is a sanctioned substream seed.
_SUBSTREAM_METHODS = {"getrandbits", "randint", "randrange"}

_MAX_TRACE_DEPTH = 24


def _is_derivation_call(program: Program, caller: Dict[str, Any],
                        expr: Dict[str, Any]) -> bool:
    """Is this call expression a registered seed derivation?"""
    target = expr.get("t", {})
    kind = target.get("t")
    name: Optional[str] = None
    if kind in ("proj", "ext"):
        name = target["q"].rsplit(".", 1)[-1]
    elif kind in ("builtin", "localfn"):
        name = target.get("n")
    elif kind in ("meth", "selfm"):
        attr = target.get("attr", "")
        if attr in _SUBSTREAM_METHODS:
            recv = target.get("recv", "")
            # drawing bits from an (already-traced) rng object
            return recv.startswith(("param:", "local:", "selfattr",
                                    "paramattr:")) or recv == "other"
        name = attr
    return name in SEED_DERIVATION_FNS


def trace_seed_expr(program: Program, fn: Dict[str, Any],
                    expr: Optional[Dict[str, Any]],
                    _stack: Optional[Set[Tuple[str, str]]] = None,
                    _depth: int = 0) -> Tuple[bool, str]:
    """(traced?, reason).  ``expr`` is a summary TraceExpr or None."""
    if expr is None:
        return False, "constructed with no seed argument"
    if _depth > _MAX_TRACE_DEPTH:
        return False, "trace exceeded depth budget"
    kind = expr.get("k")
    if kind == "const":
        if expr.get("v") is None:
            return False, "explicit None seed (OS-entropy seeded)"
        return True, "literal"
    if kind == "seed":
        return True, f"seed-named value `{expr['name']}`"
    if kind == "rng":
        return False, f"RNG object `{expr['name']}` used as a seed"
    if kind in ("binop", "choice", "container"):
        for part in expr.get("parts", expr.get("items", [])):
            ok, reason = trace_seed_expr(program, fn, part, _stack, _depth + 1)
            if not ok:
                return False, reason
        return True, "derived expression"
    if kind == "call":
        if _is_derivation_call(program, fn, expr):
            return True, "substream derivation"
        target = expr.get("t", {})
        callee_qual = program.resolve_call(fn, {"t": target, "args": [],
                                                "kw": {}, "line": 0, "col": 0})
        if callee_qual is not None:
            callee = program.function(callee_qual)
            if callee is not None and callee["returns"]:
                for ret in callee["returns"]:
                    ok, reason = trace_seed_expr(program, callee, ret,
                                                 _stack, _depth + 1)
                    if not ok:
                        return False, (f"return value of {callee_qual} "
                                       f"is untraced ({reason})")
                return True, f"traced return of {callee_qual}"
        return False, "call result with no traceable seed provenance"
    if kind == "local":
        binding = fn["bindings"].get(expr["name"])
        if binding is not None:
            return trace_seed_expr(program, fn, binding, _stack, _depth + 1)
        return False, f"local `{expr['name']}` has no traceable binding"
    if kind == "param":
        return _trace_parameter(program, fn, expr["name"], _stack, _depth)
    if kind == "param_attr":
        return False, (f"attribute `{expr['name']}.{expr['attr']}` "
                       "is not seed-named")
    if kind == "funcref":
        return False, f"function reference `{expr['q']}` used as seed"
    if kind == "globalname":
        return False, f"module-level `{expr['name']}` is not a traced seed"
    return False, "untraceable expression"


def _trace_parameter(program: Program, fn: Dict[str, Any], param: str,
                     stack: Optional[Set[Tuple[str, str]]],
                     depth: int) -> Tuple[bool, str]:
    stack = stack if stack is not None else set()
    key = (fn["qual"], param)
    if key in stack:
        return True, "recursive pass-through"  # optimistic on cycles
    stack = stack | {key}

    call_sites = program.callers.get(fn["qual"], [])
    if not call_sites:
        return False, (f"parameter `{param}` of {fn['qual']} has no "
                       "traced call site (rename it to *seed* or thread "
                       "a seed parameter)")
    try:
        index = fn["params"].index(param)
    except ValueError:
        index = None
    for caller_qual, site in call_sites:
        caller = program.function(caller_qual)
        arg = site["kw"].get(param)
        if arg is None and index is not None:
            args = site["args"]
            offset = index
            # Method call through an instance: the `self` slot is not
            # present in the argument list.
            if fn.get("cls") and fn["params"][:1] == ["self"]:
                offset = index - 1
            if 0 <= offset < len(args):
                arg = args[offset]
        if arg is None:
            default = fn["defaults"].get(param)
            if default is not None:
                arg, caller = default, fn
            elif site.get("star"):
                return False, (f"parameter `{param}` of {fn['qual']} "
                               f"receives *args/**kwargs from "
                               f"{caller_qual}; provenance is invisible")
            else:
                return False, (f"call from {caller_qual} never supplies "
                               f"`{param}` and it has no default")
        ok, reason = trace_seed_expr(program, caller, arg, stack, depth + 1)
        if not ok:
            return False, (f"call from {caller_qual} passes an untraced "
                           f"value for `{param}`: {reason}")
    return True, "all call sites traced"


def _walk_expr(expr: Dict[str, Any]):
    yield expr
    for child in expr.get("parts", []):
        yield from _walk_expr(child)
    for child in expr.get("items", []):
        yield from _walk_expr(child)
    for child in expr.get("args", []):
        yield from _walk_expr(child)


def _rng_refs(expr: Dict[str, Any]) -> List[str]:
    return [e["name"] for e in _walk_expr(expr) if e.get("k") == "rng"]


def _unpicklable_refs(expr: Dict[str, Any]) -> List[str]:
    out = []
    for e in _walk_expr(expr):
        if e.get("k") == "lambda":
            out.append("a lambda")
        elif e.get("k") == "localfunc":
            out.append(f"nested function `{e['name']}`")
    return out


def _is_boundary_site(site: Dict[str, Any]) -> bool:
    target = site["t"]
    kind = target["t"]
    if kind == "meth" and target["attr"] in EXECUTOR_BOUNDARY_METHODS:
        return True
    if kind == "ext" and target["q"] in EXECUTOR_BOUNDARY_CTORS:
        return True
    if kind == "proj" and target["q"].rsplit(".", 1)[-1] == "Process":
        return True
    return False


def check_rng_flow(program: Program) -> List[Finding]:
    """Evaluate F201-F204 over the linked program."""
    findings: List[Finding] = []

    for qual, fn, path in program.iter_functions():
        # F201 — every construction site's seed must trace.
        for ctor in fn["rng_ctors"]:
            if ctor["ctor"] == "random.SystemRandom":
                continue  # D103 territory: never seedable at all
            ok, reason = trace_seed_expr(program, fn, ctor["seed"])
            if not ok:
                findings.append(Finding(
                    F201.rule_id, path, ctor["line"], ctor["col"],
                    f"`{ctor['ctor']}` in {qual}: {reason}",
                ))

        # F204 — RNG constructors in parameter defaults.
        for default in fn["rng_defaults"]:
            findings.append(Finding(
                F204.rule_id, path, default["line"], default["col"],
                f"`{default['ctor']}` evaluated in a parameter default of "
                f"{qual}: one hidden generator is shared by every call; "
                "default to None and construct from an explicit seed",
            ))

        # F202 — one RNG value fanned into multiple subsystems.
        passes: Dict[str, Dict[str, int]] = {}
        own_subsystem = subsystem_of(qual)
        for site in fn["calls"]:
            callee = program.resolve_call(fn, site)
            if callee is None:
                continue
            callee_subsystem = subsystem_of(callee)
            if callee_subsystem is None or callee_subsystem == "experiments":
                continue
            for expr in list(site["args"]) + list(site["kw"].values()):
                for rng_name in _rng_refs(expr):
                    sinks = passes.setdefault(rng_name, {})
                    sinks.setdefault(callee_subsystem, site["line"])
        for rng_name in sorted(passes):
            sinks = passes[rng_name]
            foreign = {s for s in sinks if s != own_subsystem}
            if len(foreign) >= 2:
                line = min(sinks.values())
                findings.append(Finding(
                    F202.rule_id, path, line, 1,
                    f"RNG `{rng_name}` in {qual} is passed into "
                    f"{len(foreign)} subsystems ({', '.join(sorted(foreign))});"
                    " derive an independent substream per subsystem with "
                    "derive_seed",
                ))

        # F203 — RNG values crossing an executor boundary.
        for site in fn["calls"]:
            if not _is_boundary_site(site):
                continue
            for expr in list(site["args"]) + list(site["kw"].values()):
                for rng_name in _rng_refs(expr):
                    findings.append(Finding(
                        F203.rule_id, path, site["line"], site["col"],
                        f"RNG `{rng_name}` crosses the executor boundary "
                        f"at {qual}; workers must construct their own "
                        "generator from a derived seed in the task payload",
                    ))
    return findings
