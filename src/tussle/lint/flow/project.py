"""Whole-program linkage: symbol table and call graph over summaries.

The :class:`Program` indexes every function/class summary by qualified
name, resolves call targets (project functions, ``self`` methods via the
base-class chain, methods on parameters via their annotations), builds
the reverse call graph for seed-provenance walks, and computes worker
reachability.  Everything here operates on the plain-dict summaries from
:mod:`tussle.lint.flow.summaries` — no ASTs — so a fully warm cache run
executes only this phase.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

__all__ = ["Program", "subsystem_of"]


def subsystem_of(qualname: str) -> Optional[str]:
    """The tussle subsystem a qualified name belongs to (``tussle.X...``)."""
    parts = qualname.split(".")
    if len(parts) >= 2 and parts[0] == "tussle":
        return parts[1]
    return None


class Program:
    """Linked view over all module summaries of one analysis run."""

    def __init__(self, summaries: Iterable[Dict[str, Any]]):
        self.modules: Dict[str, Dict[str, Any]] = {}
        self.functions: Dict[str, Dict[str, Any]] = {}
        #: dotted class name -> (module summary, class summary dict)
        self.classes: Dict[str, Tuple[Dict[str, Any], Dict[str, Any]]] = {}
        self.path_of: Dict[str, str] = {}
        for summary in summaries:
            module = summary["module"]
            self.modules[module] = summary
            for fn in summary["functions"]:
                self.functions[fn["qual"]] = fn
                self.path_of[fn["qual"]] = summary["path"]
            for cls_name, cls in summary["classes"].items():
                self.classes[f"{module}.{cls_name}"] = (summary, cls)
        self._callers: Optional[Dict[str, List[Tuple[str, Dict]]]] = None
        #: id(site) -> (site, resolution).  The site reference keeps the
        #: keyed dict alive so a recycled id can never alias a new dict.
        self._resolution_cache: Dict[int, Tuple[Dict, Optional[str]]] = {}

    # -- symbol lookups ------------------------------------------------
    def function(self, qual: str) -> Optional[Dict[str, Any]]:
        return self.functions.get(qual)

    def iter_functions(self) -> Iterator[Tuple[str, Dict[str, Any], str]]:
        """(qualname, summary, path) for every function, sorted."""
        for qual in sorted(self.functions):
            yield qual, self.functions[qual], self.path_of[qual]

    def method_on_class(self, cls_dotted: str, attr: str,
                        _seen: Optional[Set[str]] = None) -> Optional[str]:
        """Resolve ``cls.attr`` through the project base-class chain."""
        seen = _seen if _seen is not None else set()
        if cls_dotted in seen or cls_dotted not in self.classes:
            return None
        seen.add(cls_dotted)
        summary, cls = self.classes[cls_dotted]
        if attr in cls["methods"]:
            return f"{cls_dotted}.{attr}"
        for base in cls["bases"]:
            resolved = self.method_on_class(base, attr, seen)
            if resolved is not None:
                return resolved
        return None

    # -- call-target resolution ----------------------------------------
    def resolve_call(self, caller: Dict[str, Any],
                     site: Dict[str, Any]) -> Optional[str]:
        """Qualified name of the project function a call site reaches.

        Returns None for externals, builtins, and dynamically-dispatched
        calls the analysis cannot see through.  Constructor calls resolve
        to the class's ``__init__`` when one is defined in the project;
        a class with no ``__init__`` resolves to None (pure construction).
        """
        key = id(site)
        cached = self._resolution_cache.get(key)
        if cached is not None and cached[0] is site:
            return cached[1]
        resolved = self._resolve_uncached(caller, site)
        self._resolution_cache[key] = (site, resolved)
        return resolved

    def _resolve_uncached(self, caller: Dict[str, Any],
                          site: Dict[str, Any]) -> Optional[str]:
        target = site["t"]
        kind = target["t"]
        if kind == "proj":
            return self._resolve_project_name(target["q"])
        if kind == "selfm":
            module = caller["qual"].rsplit(
                f".{caller['cls']}.{caller['name']}", 1)[0]
            return self.method_on_class(f"{module}.{target['cls']}",
                                        target["attr"])
        if kind == "meth":
            annotation = target.get("ann")
            if annotation is not None:
                return self.method_on_class(annotation, target["attr"])
            return None
        if kind == "localfn":
            return None  # inlined into the caller at extraction
        return None

    def _resolve_project_name(self, qual: str) -> Optional[str]:
        if qual in self.functions:
            return qual
        if qual in self.classes:
            return self.method_on_class(qual, "__init__")
        # "module.Class.method" written out explicitly.
        head, _, attr = qual.rpartition(".")
        if head in self.classes:
            return self.method_on_class(head, attr)
        # Re-exported name: "tussle.sweep.derive_seed" defined in
        # tussle.sweep.cells.  Match by trailing function name inside
        # the package the prefix points at.
        if head in self.modules:
            return None
        for candidate_module in self.modules:
            if candidate_module.startswith(head + "."):
                candidate = f"{candidate_module}.{qual.rsplit('.', 1)[1]}"
                if candidate in self.functions:
                    return candidate
        return None

    # -- reverse call graph --------------------------------------------
    @property
    def callers(self) -> Dict[str, List[Tuple[str, Dict[str, Any]]]]:
        """callee qualname -> [(caller qualname, call site), ...]"""
        if self._callers is None:
            table: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
            for qual, fn, _path in self.iter_functions():
                for site in fn["calls"]:
                    callee = self.resolve_call(fn, site)
                    if callee is not None:
                        table.setdefault(callee, []).append((qual, site))
            self._callers = table
        return self._callers

    # -- reachability --------------------------------------------------
    def reachable_from(self, entries: Iterable[str]) -> Set[str]:
        """Every project function reachable from ``entries`` via resolved
        call edges (constructor edges included)."""
        seen: Set[str] = set()
        stack = [e for e in entries if e in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            fn = self.functions[qual]
            for site in fn["calls"]:
                callee = self.resolve_call(fn, site)
                if callee is not None and callee not in seen:
                    stack.append(callee)
            # A function reference passed as a value is a potential call.
            for expr in _iter_funcrefs(fn):
                resolved = self._resolve_project_name(expr)
                if resolved is not None and resolved not in seen:
                    stack.append(resolved)
        return seen


def _iter_funcrefs(fn: Dict[str, Any]) -> Iterator[str]:
    """Project functions referenced (not called) inside ``fn``'s calls."""
    def walk(expr: Dict[str, Any]) -> Iterator[str]:
        kind = expr.get("k")
        if kind == "funcref" and expr["q"].startswith("tussle."):
            yield expr["q"]
        for child in expr.get("parts", []) or expr.get("items", []) \
                or expr.get("args", []):
            yield from walk(child)

    for site in fn["calls"]:
        for expr in list(site["args"]) + list(site["kw"].values()):
            yield from walk(expr)
