"""Incremental per-file summary cache for the flow analyzer.

One JSON file per analyzed source file, named by the SHA-256 of the
source bytes (plus the analyzer version, so bumping
``ANALYZER_VERSION`` invalidates everything at once).  A warm run loads
summaries straight from JSON and never touches an AST — only the link
phase re-runs.  Broken files (syntax errors, undecodable bytes) cache a
small tombstone so they are not re-parsed every run either.

The cache directory is content-addressed and append-only during a run;
stale entries (hashes no longer reachable from any current source file)
are pruned at save time so the directory cannot grow without bound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Set

from .summaries import ANALYZER_VERSION

__all__ = ["SummaryCache", "source_digest"]

_PREFIX = "flow-"
_SUFFIX = ".json"


def source_digest(data: bytes, module: str = "") -> str:
    """Cache key for one source file under the current analyzer.

    ``module`` (the canonical dotted name) is part of the key: two files
    with identical bytes — every empty ``__init__.py`` — are still
    *different* modules, and a summary must never be served under the
    wrong module identity.
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{ANALYZER_VERSION}:{module}:".encode("utf-8"))
    hasher.update(data)
    return hasher.hexdigest()


@dataclass
class SummaryCache:
    """Content-addressed store of per-file summaries.

    ``hits``/``misses`` count lookups this run; ``lookup`` returns the
    cached summary dict (or broken-file tombstone) or None on a miss.
    """

    directory: Optional[Path]
    hits: int = 0
    misses: int = 0
    _used: Set[str] = field(default_factory=set)

    def _entry_path(self, digest: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{_PREFIX}{digest}{_SUFFIX}"

    def lookup(self, digest: str) -> Optional[Dict[str, Any]]:
        path = self._entry_path(digest)
        if path is None:
            self.misses += 1
            return None
        try:
            summary = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(summary, dict) or \
                summary.get("version") != ANALYZER_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        self._used.add(digest)
        return summary

    def store(self, digest: str, summary: Dict[str, Any]) -> None:
        self.misses += 0  # miss already counted by the failed lookup
        path = self._entry_path(digest)
        if path is None:
            return
        self._used.add(digest)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(summary, sort_keys=True),
                           encoding="utf-8")
            tmp.replace(path)
        except OSError:
            pass  # cache is best-effort; analysis correctness never depends on it

    def prune(self) -> int:
        """Drop entries not referenced this run; returns how many."""
        if self.directory is None or not self.directory.is_dir():
            return 0
        dropped = 0
        for entry in self.directory.glob(f"{_PREFIX}*{_SUFFIX}"):
            digest = entry.name[len(_PREFIX):-len(_SUFFIX)]
            if digest not in self._used:
                try:
                    entry.unlink()
                    dropped += 1
                except OSError:
                    pass
        return dropped

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
