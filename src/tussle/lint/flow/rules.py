"""F-series rules: whole-program flow analysis.

Unlike the D/E/X families (single-file, syntactic), every F rule is
*interprocedural*: it is evaluated over the project-wide symbol table
and call graph built by :mod:`tussle.lint.flow` from per-file summaries.
The three analyses are seed provenance (F201-F204), purity inference
(F205-F206) and worker safety (F207-F208).
"""

from __future__ import annotations

from ..findings import Rule, register_rule

__all__ = ["FLOW_RULES",
           "F201", "F202", "F203", "F204",
           "F205", "F206", "F207", "F208"]

F201 = register_rule(Rule(
    "F201", "rng-untraced-seed",
    "RNG constructed from a value that never traces to an explicit seed",
    "Every Random/default_rng instance must trace back through the call "
    "graph to an explicit seed parameter, a literal, or a registered "
    "substream derivation (derive_seed/digest63/rng.getrandbits). A seed "
    "laundered through an untraceable variable reintroduces the hidden "
    "nondeterminism D103 catches only at the construction site.",
))
F202 = register_rule(Rule(
    "F202", "rng-shared-stream",
    "one RNG stream aliased into multiple subsystems",
    "Passing the same generator into two subsystems couples their draw "
    "sequences: adding one draw in subsystem A silently reorders every "
    "draw in subsystem B. Derive an independent substream per subsystem "
    "with derive_seed instead.",
))
F203 = register_rule(Rule(
    "F203", "rng-crosses-executor",
    "RNG object shipped across an executor/process boundary",
    "A generator pickled into a worker forks its state: parent and child "
    "continue the same stream independently and the merged output depends "
    "on worker scheduling. Workers must construct their own RNG from a "
    "derived seed in the task payload.",
))
F204 = register_rule(Rule(
    "F204", "rng-default-argument",
    "RNG constructed in a parameter default",
    "A default like `def f(rng=Random(0))` builds ONE generator at def "
    "time, silently shared by every call that omits the argument — state "
    "bleeds between calls and between tests. Default to None and "
    "construct from an explicit seed inside the body.",
))
F205 = register_rule(Rule(
    "F205", "impure-kernel-contract",
    "function in a pure-contract module has inferred side effects",
    "econ/decision.py and scale/kernels.py are the bit-parity contract "
    "between the scalar and vectorized backends; they must stay pure "
    "functions of their inputs. A mutation, clock read, or IO two calls "
    "down breaks parity in ways the parity gate only detects after the "
    "fact.",
))
F206 = register_rule(Rule(
    "F206", "unverifiable-kernel-contract",
    "pure-contract function calls code whose purity cannot be established",
    "The purity guarantee is only as strong as the analyzer's ability to "
    "see through every call. A call into unresolvable/unknown code inside "
    "a pure-contract module means the contract is asserted, not checked — "
    "route the work through resolvable project code or a known-pure "
    "library call.",
))
F207 = register_rule(Rule(
    "F207", "worker-global-mutation",
    "worker-reachable code writes module-level state",
    "Sweep workers run in forked/spawned processes; a write to module "
    "state inside a worker is lost on exit or, worse, visible only on "
    "some executors — results then depend on worker count. All worker "
    "output must flow through the returned payload into the "
    "deterministic merge.",
))
F208 = register_rule(Rule(
    "F208", "worker-unpicklable-capture",
    "unpicklable callable (lambda/nested function) shipped to a worker",
    "Lambdas and nested functions cannot be pickled under the spawn start "
    "method, so code that passes one across an executor boundary works on "
    "fork-platforms only and dies on others. Ship a module-level function "
    "and put per-call state in the (JSON-safe) task payload.",
))

FLOW_RULES = (F201, F202, F203, F204, F205, F206, F207, F208)
