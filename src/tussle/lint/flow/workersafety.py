"""Worker-safety analysis: rules F207-F208.

Sweep workers execute in forked/spawned processes.  Code reachable from
the worker entry points must not write module-level state (the write is
lost on process exit, or — under fork — visible on some platforms and
not others, making results depend on worker count), and nothing
unpicklable may cross the executor boundary (lambdas and nested
functions pickle under *fork* but die under *spawn*).

Reachability starts from the executor entry points plus every
experiment ``run_*`` function: ``run_cell`` dispatches through the
``ALL_EXPERIMENTS`` registry dynamically, so the call graph cannot see
those edges and we add them synthetically.
"""

from __future__ import annotations

from typing import Dict, List

from ..findings import Finding
from .project import Program
from .purity import EffectSummary
from .rngflow import _is_boundary_site, _unpicklable_refs
from .rules import F207, F208

__all__ = ["WORKER_ENTRY_POINTS", "check_worker_safety", "worker_entries"]

#: Statically-known worker entry points (see sweep/executors.py).
WORKER_ENTRY_POINTS = (
    "tussle.sweep.executors.run_cell",
    "tussle.sweep.executors._resilient_worker",
)


def worker_entries(program: Program) -> List[str]:
    """Entry points plus synthetic edges for registry-dispatched targets."""
    entries = [e for e in WORKER_ENTRY_POINTS if e in program.functions]
    for qual in program.functions:
        # Experiments are invoked via ALL_EXPERIMENTS.get(name)(seed=...),
        # invisible to static call resolution.
        if qual.startswith("tussle.experiments.") and \
                qual.rsplit(".", 1)[-1].startswith("run_"):
            entries.append(qual)
    return entries


def check_worker_safety(program: Program,
                        effects: Dict[str, EffectSummary]) -> List[Finding]:
    """Evaluate F207-F208 over the linked program."""
    findings: List[Finding] = []
    reachable = program.reachable_from(worker_entries(program))

    for qual, fn, path in program.iter_functions():
        # F207 — flag the function that performs the write itself so the
        # finding points at the offending module, not the worker entry.
        if qual in reachable:
            for global_name in fn["mutations"]["globals"]:
                findings.append(Finding(
                    F207.rule_id, path, fn["line"] or 1, 1,
                    f"{qual} is reachable from a sweep worker and writes "
                    f"module-level `{global_name}`; worker state dies with "
                    "the process — return it through the task payload "
                    "instead",
                ))
        # F208 — unpicklable callables handed across an executor boundary.
        # This fires on the *shipping* side, which is typically the parent
        # process, so it applies everywhere, not just worker-reachable code.
        for site in fn["calls"]:
            if not _is_boundary_site(site):
                continue
            for expr in list(site["args"]) + list(site["kw"].values()):
                for what in _unpicklable_refs(expr):
                    findings.append(Finding(
                        F208.rule_id, path, site["line"], site["col"],
                        f"{qual} ships {what} across an executor boundary; "
                        "it cannot be pickled under the spawn start method "
                        "— use a module-level function and a JSON-safe "
                        "payload",
                    ))
    return findings
