"""E-series rules: experiment-harness conformance.

Every experiment module must be drivable by the shared harnesses — the
CLI, the benchmark suite, the determinism seed-check — which is only
possible if each one exposes the same contract: a single ``run_*`` entry
point with an explicit ``seed`` keyword returning an
:class:`~tussle.experiments.common.ExperimentResult`, registered in
``tussle.experiments.ALL_EXPERIMENTS``, with a benchmark and test
counterpart on disk.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Set

from .context import ModuleInfo, ProjectContext, dotted_name
from .findings import Finding, Rule, register_rule

__all__ = ["check_experiment_conformance", "CONFORMANCE_RULES"]

E201 = register_rule(Rule(
    "E201", "experiment-run-contract",
    "experiment module must expose one run_*(seed=...) -> ExperimentResult",
    "The CLI, benchmarks, and the seed-check harness all drive experiments "
    "through a uniform entry point; a missing seed parameter makes the "
    "double-run determinism check impossible to express.",
))
E202 = register_rule(Rule(
    "E202", "experiment-registered",
    "experiment entry point must be registered in ALL_EXPERIMENTS",
    "Unregistered experiments silently drop out of the CLI, the summary "
    "gate, and the seed-check harness.",
))
E203 = register_rule(Rule(
    "E203", "experiment-benchmark",
    "experiment must have a matching benchmarks/bench_<module>.py",
    "Every paper claim is also a perf workload; an experiment without a "
    "benchmark cannot regress visibly.",
))
E204 = register_rule(Rule(
    "E204", "experiment-tested",
    "experiment must be exercised by a test module",
    "Shape checks are the repository's headline assertions; an experiment "
    "no test imports can silently lose the paper's shape.",
))

CONFORMANCE_RULES = (E201, E202, E203, E204)

#: Experiment modules look like ``e04_routing_control.py`` /
#: ``x03_mail_choice.py`` / ``r01_fault_blame.py``.
_EXPERIMENT_MODULE_RE = re.compile(r"^[exlr]\d{2}_\w+$")


def _experiment_modules(context: ProjectContext) -> List[ModuleInfo]:
    return [
        info for info in context.modules
        if info.path.parent.name == "experiments"
        and _EXPERIMENT_MODULE_RE.match(info.path.stem)
    ]


def _run_functions(info: ModuleInfo) -> List[ast.FunctionDef]:
    return [
        node for node in info.tree.body
        if isinstance(node, ast.FunctionDef) and node.name.startswith("run")
    ]


def _has_seed_parameter(fn: ast.FunctionDef) -> bool:
    names = [a.arg for a in fn.args.args + fn.args.kwonlyargs]
    return "seed" in names


def _returns_experiment_result(fn: ast.FunctionDef) -> bool:
    if fn.returns is None:
        return False
    annotation = dotted_name(fn.returns)
    if annotation is None and isinstance(fn.returns, ast.Constant):
        annotation = str(fn.returns.value)
    return annotation is not None and annotation.split(".")[-1] == "ExperimentResult"


def _registered_run_names(context: ProjectContext) -> Optional[Set[str]]:
    """Function names registered in ALL_EXPERIMENTS, from the package __init__."""
    init = context.module_by_relpath("experiments/__init__.py")
    if init is None:
        return None
    for node in ast.walk(init.tree):
        if (isinstance(node, ast.Assign)
                and any(isinstance(t, ast.Name) and t.id == "ALL_EXPERIMENTS"
                        for t in node.targets)
                and isinstance(node.value, ast.Dict)):
            names: Set[str] = set()
            for value in node.value.values:
                name = dotted_name(value)
                if name is not None:
                    names.add(name.split(".")[-1])
            return names
    return None


def _tests_corpus(context: ProjectContext) -> Optional[str]:
    """Concatenated text of every test module, for reference checks."""
    tests_dir = context.tests_dir
    if tests_dir is None:
        return None
    chunks: List[str] = []
    for path in sorted(tests_dir.rglob("test_*.py")):
        try:
            chunks.append(path.read_text(encoding="utf-8"))
        except OSError:
            continue
    return "\n".join(chunks)


def check_experiment_conformance(context: ProjectContext) -> List[Finding]:
    findings: List[Finding] = []
    experiments = _experiment_modules(context)
    if not experiments:
        return findings
    registered = _registered_run_names(context)
    tests_corpus = _tests_corpus(context)
    benchmarks_dir = context.benchmarks_dir

    for info in experiments:
        path = str(info.path)
        run_fns = _run_functions(info)

        # E201 — exactly one run_* with a seed kwarg returning ExperimentResult.
        if len(run_fns) != 1:
            findings.append(Finding(
                E201.rule_id, path, 1, 1,
                f"expected exactly one run_* entry point, found "
                f"{len(run_fns)} ({', '.join(f.name for f in run_fns) or 'none'})",
            ))
            continue
        entry = run_fns[0]
        if not _has_seed_parameter(entry):
            findings.append(Finding(
                E201.rule_id, path, entry.lineno, entry.col_offset + 1,
                f"`{entry.name}` must accept a `seed` keyword so the "
                "seed-check harness can drive it",
            ))
        if not _returns_experiment_result(entry):
            findings.append(Finding(
                E201.rule_id, path, entry.lineno, entry.col_offset + 1,
                f"`{entry.name}` must be annotated `-> ExperimentResult`",
            ))

        # E202 — registered in ALL_EXPERIMENTS.
        if registered is not None and entry.name not in registered:
            findings.append(Finding(
                E202.rule_id, path, entry.lineno, entry.col_offset + 1,
                f"`{entry.name}` is not registered in "
                "tussle.experiments.ALL_EXPERIMENTS",
            ))

        # E203 — benchmark counterpart exists.
        if benchmarks_dir is not None:
            bench = benchmarks_dir / f"bench_{info.path.stem}.py"
            if not bench.is_file():
                findings.append(Finding(
                    E203.rule_id, path, 1, 1,
                    f"missing benchmark {bench.name} in benchmarks/",
                ))

        # E204 — some test references the entry point (directly, or via the
        # registry-driven parametrized suite when the experiment is registered).
        if tests_corpus is not None:
            directly = entry.name in tests_corpus
            via_registry = (
                "ALL_EXPERIMENTS" in tests_corpus
                and registered is not None
                and entry.name in registered
            )
            if not directly and not via_registry:
                findings.append(Finding(
                    E204.rule_id, path, entry.lineno, entry.col_offset + 1,
                    f"no test module references `{entry.name}` (directly or "
                    "via the ALL_EXPERIMENTS parametrized suite)",
                ))
    return findings
