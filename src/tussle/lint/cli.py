"""Command line for the static analyzer: ``python -m tussle.lint``.

Exit codes follow the usual linter convention: 0 clean, 1 findings,
2 usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..errors import LintError
from . import api, conformance, determinism  # noqa: F401  (register rules)
from . import flow as flow_pkg  # registers F rules
from .baseline import (Baseline, load_baseline, update_baseline,
                       write_baseline)
from .engine import find_repo_root, run_lint
from .findings import RULE_REGISTRY, rule_ids

__all__ = ["main", "build_parser", "build_flow_parser", "flow_main"]

_DEFAULT_BASELINE_NAME = "lint-baseline.json"
_DEFAULT_FLOW_BASELINE_NAME = "lint-flow-baseline.json"
_DEFAULT_FLOW_CACHE_NAME = ".lint-flow-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tussle-lint",
        description=("AST-based determinism and simulation-invariant "
                     "analyzer for the tussle package."),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to scan (default: the installed "
             "tussle package source)",
    )
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every rule id with its summary and exit")
    parser.add_argument("--select", metavar="PREFIXES",
                        help="comma-separated rule-id prefixes to keep "
                             "(e.g. 'D' or 'D106,X')")
    parser.add_argument("--baseline", metavar="FILE", type=Path, default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: {_DEFAULT_BASELINE_NAME} at the "
                             "repo root, when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings, "
                             "pruning entries for findings that no longer "
                             "exist, and exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed/baselined findings")
    parser.add_argument("--seedcheck", action="store_true",
                        help="additionally double-run every registered "
                             "experiment and assert identical results")
    return parser


def build_flow_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tussle-lint flow",
        description=("Whole-program flow analysis: seed provenance, "
                     "purity inference, worker safety (F rules)."),
    )
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to scan (default: the "
                             "installed tussle package source)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default text)")
    parser.add_argument("--select", metavar="PREFIXES",
                        help="comma-separated rule-id prefixes to keep")
    parser.add_argument("--kernel-candidates", action="store_true",
                        help="print the pure, vectorization-eligible "
                             "netsim/routing functions with their inferred "
                             "side-effect summaries")
    parser.add_argument("--cache-dir", metavar="DIR", type=Path, default=None,
                        help="incremental summary cache directory "
                             f"(default: {_DEFAULT_FLOW_CACHE_NAME} at the "
                             "repo root)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental summary cache")
    parser.add_argument("--baseline", metavar="FILE", type=Path, default=None,
                        help="baseline file of grandfathered F findings "
                             f"(default: {_DEFAULT_FLOW_BASELINE_NAME} at "
                             "the repo root, when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings, "
                             "pruning stale entries, and exit 0")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed/baselined findings")
    return parser


def _default_paths() -> List[Path]:
    package_dir = Path(__file__).resolve().parent.parent
    return [package_dir]


def _resolve_baseline_path(args: argparse.Namespace,
                           scan_paths: Sequence[Path],
                           name: str = _DEFAULT_BASELINE_NAME,
                           ) -> Optional[Path]:
    if args.baseline is not None:
        return args.baseline
    repo_root = find_repo_root(Path(scan_paths[0]))
    if repo_root is None:
        return None
    candidate = repo_root / name
    writeish = args.write_baseline or getattr(args, "update_baseline", False)
    return candidate if (candidate.is_file() or writeish) else None


def _list_rules(fmt: str) -> int:
    if fmt == "json":
        payload = [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "summary": rule.summary,
                "rationale": rule.rationale,
            }
            for rule in (RULE_REGISTRY[i] for i in rule_ids())
        ]
        print(json.dumps(payload, indent=2))
        return 0
    for identifier in rule_ids():
        rule = RULE_REGISTRY[identifier]
        print(f"{rule.rule_id}  {rule.name}")
        print(f"      {rule.summary}")
    print(f"\n{len(RULE_REGISTRY)} rules "
          "(D: determinism, E: experiment conformance, F: flow analysis, "
          "X: API surface)")
    return 0


def _print_text_report(report, show_suppressed: bool) -> None:
    for finding in report.active:
        print(finding.format())
    if show_suppressed:
        for finding in report.suppressed:
            print(f"{finding.format()} (suppressed: "
                  f"{finding.suppression_source})")
    for entry in report.stale_baseline:
        print(f"stale baseline entry: {entry['rule']} x{entry['count']} "
              f"in {entry['path']} no longer matches any finding "
              "(run --update-baseline)")
    suppressed_note = (
        f", {len(report.suppressed)} suppressed" if report.suppressed else ""
    )
    print(f"{report.files_scanned} files scanned, "
          f"{len(report.active)} findings{suppressed_note}")


def flow_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m tussle.lint flow ...``."""
    parser = build_flow_parser()
    args = parser.parse_args(argv)

    scan_paths = [Path(p) for p in args.paths] or _default_paths()
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select else None
    )
    baseline_path = _resolve_baseline_path(args, scan_paths,
                                           _DEFAULT_FLOW_BASELINE_NAME)
    cache_dir = args.cache_dir
    if cache_dir is None and not args.no_cache:
        repo_root = find_repo_root(Path(scan_paths[0]))
        if repo_root is not None:
            cache_dir = repo_root / _DEFAULT_FLOW_CACHE_NAME
    if args.no_cache:
        cache_dir = None

    try:
        baseline = None
        if baseline_path is not None and baseline_path.is_file() \
                and not (args.write_baseline or args.update_baseline):
            baseline = load_baseline(baseline_path)
        report = flow_pkg.run_flow(scan_paths, cache_dir=cache_dir,
                                   baseline=baseline, select=select)
        if args.write_baseline or args.update_baseline:
            if baseline_path is None:
                raise LintError(
                    "cannot locate a repo root for the baseline; pass "
                    "--baseline FILE explicitly"
                )
            written = (update_baseline if args.update_baseline
                       else write_baseline)(baseline_path, report.findings)
            print(f"wrote {sum(written.budgets.values())} grandfathered "
                  f"findings to {baseline_path}")
            return 0
    except LintError as exc:
        print(f"tussle-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        _print_text_report(report, args.show_suppressed)
        stats = report.cache_stats
        print(f"summary cache: {stats.get('hits', 0)} hits, "
              f"{stats.get('misses', 0)} misses")
    if args.kernel_candidates and args.format == "text":
        pure = [c for c in report.kernel_candidates if c["pure"]]
        print(f"\n{len(pure)} kernel-eligible pure functions:")
        for entry in report.kernel_candidates:
            marker = "pure" if entry["pure"] else "pure*"
            print(f"  [{marker}] {entry['function']} "
                  f"({entry['path']}:{entry['line']}) — {entry['effects']}")

    return 0 if report.clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["flow"]:
        return flow_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules(args.format)

    scan_paths = [Path(p) for p in args.paths] or _default_paths()
    select = (
        [part.strip() for part in args.select.split(",") if part.strip()]
        if args.select else None
    )
    baseline_path = _resolve_baseline_path(args, scan_paths)

    try:
        baseline = None
        if baseline_path is not None and baseline_path.is_file() \
                and not (args.write_baseline or args.update_baseline):
            baseline = load_baseline(baseline_path)
        report = run_lint(scan_paths, select=select, baseline=baseline)
        if args.write_baseline or args.update_baseline:
            if baseline_path is None:
                raise LintError(
                    "cannot locate a repo root for the baseline; pass "
                    "--baseline FILE explicitly"
                )
            written = (update_baseline if args.update_baseline
                       else write_baseline)(baseline_path, report.findings)
            print(f"wrote {sum(written.budgets.values())} grandfathered "
                  f"findings to {baseline_path}")
            return 0
    except LintError as exc:
        print(f"tussle-lint: {exc}", file=sys.stderr)
        return 2

    seedcheck_ok = True
    seedcheck_payload = None
    if args.seedcheck:
        from .seedcheck import format_outcomes, run_seedcheck
        outcomes = run_seedcheck()
        seedcheck_ok = all(o.ok for o in outcomes)
        if args.format == "json":
            seedcheck_payload = [o.to_dict() for o in outcomes]
        else:
            print(format_outcomes(outcomes))

    if args.format == "json":
        payload = report.to_dict()
        if seedcheck_payload is not None:
            payload["seedcheck"] = seedcheck_payload
        print(json.dumps(payload, indent=2))
    else:
        _print_text_report(report, args.show_suppressed)

    return 0 if report.clean and seedcheck_ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
