"""Dynamic determinism harness: run each experiment twice, diff results.

The static D-series rules catch the *causes* of nondeterminism (global
RNG state, clock reads, set iteration); this harness catches the
*symptom* — it runs every registered experiment twice at the same seed
and asserts the two :class:`ExperimentResult` objects are identical down
to every table cell and shape-check verdict.

Run it as ``python -m tussle.lint.seedcheck [IDS...]`` or through the
main CLI as ``python -m tussle.lint --seedcheck``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import LintError

__all__ = ["SeedCheckOutcome", "fingerprint", "run_seedcheck", "main"]


def fingerprint(result: Any) -> Tuple:
    """Hashable, order-sensitive digest of an ExperimentResult.

    Captures everything the harness prints: ids, titles, table columns,
    every row cell, and every shape-check verdict.  Floats are kept exact
    (bit-reproducibility, not approximate equality, is the contract).
    """
    tables = tuple(
        (
            table.title,
            tuple(table.columns),
            tuple(
                tuple((col, _freeze(row.get(col))) for col in table.columns)
                for row in table.rows
            ),
        )
        for table in result.tables
    )
    checks = tuple(
        (check.claim, check.holds, check.detail) for check in result.checks
    )
    return (result.experiment_id, result.title, result.paper_claim,
            tables, checks)


def _freeze(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, set):
        return tuple(sorted(map(repr, value)))
    return value


@dataclass
class SeedCheckOutcome:
    """Verdict of one experiment's double run."""

    experiment_id: str
    seed: Optional[int]
    deterministic: bool
    shape_holds: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.deterministic

    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment_id,
            "seed": self.seed,
            "deterministic": self.deterministic,
            "shape_holds": self.shape_holds,
            "detail": self.detail,
        }


def _first_divergence(a: Tuple, b: Tuple) -> str:
    """Human-oriented pointer at where two fingerprints first differ."""
    if a == b:
        return ""
    for index, (left, right) in enumerate(zip(a, b)):
        if left != right:
            section = ("experiment_id", "title", "paper_claim",
                       "tables", "checks")[index] if index < 5 else str(index)
            return f"first divergence in {section}"
    return "fingerprints differ in length"


def run_seedcheck(
    experiment_ids: Optional[Sequence[str]] = None,
    seed: Optional[int] = None,
    runs: int = 2,
) -> List[SeedCheckOutcome]:
    """Run each selected experiment ``runs`` times; compare fingerprints.

    When ``seed`` is None each experiment runs at its own default seed;
    otherwise ``seed=seed`` is passed explicitly (every registered
    experiment accepts a seed keyword — rule E201 enforces that).
    """
    # Imported lazily so `python -m tussle.lint` stays static-only.
    from ..experiments import ALL_EXPERIMENTS

    if runs < 2:
        raise LintError("seedcheck needs at least two runs to compare")
    selected = sorted(ALL_EXPERIMENTS) if not experiment_ids else [
        identifier.upper() for identifier in experiment_ids
    ]
    unknown = [i for i in selected if i not in ALL_EXPERIMENTS]
    if unknown:
        raise LintError(
            f"unknown experiments {unknown}; "
            f"choose from {', '.join(sorted(ALL_EXPERIMENTS))}"
        )

    outcomes: List[SeedCheckOutcome] = []
    for identifier in selected:
        entry = ALL_EXPERIMENTS[identifier]
        kwargs = {} if seed is None else {"seed": seed}
        effective_seed = seed
        if seed is None:
            default = inspect.signature(entry).parameters.get("seed")
            if default is not None and default.default is not inspect.Parameter.empty:
                effective_seed = default.default
        results = [entry(**kwargs) for _ in range(runs)]
        prints = [fingerprint(r) for r in results]
        deterministic = all(p == prints[0] for p in prints[1:])
        detail = "" if deterministic else _first_divergence(prints[0], prints[1])
        outcomes.append(SeedCheckOutcome(
            experiment_id=identifier,
            seed=effective_seed,
            deterministic=deterministic,
            shape_holds=all(r.shape_holds for r in results),
            detail=detail,
        ))
    return outcomes


def format_outcomes(outcomes: Sequence[SeedCheckOutcome]) -> str:
    lines = []
    for outcome in outcomes:
        verdict = "DETERMINISTIC" if outcome.ok else "DIVERGENT"
        seed_note = "default seed" if outcome.seed is None else f"seed={outcome.seed}"
        line = f"{outcome.experiment_id}: {verdict} ({seed_note})"
        if outcome.detail:
            line += f" — {outcome.detail}"
        lines.append(line)
    failures = sum(1 for o in outcomes if not o.ok)
    lines.append(
        f"{len(outcomes)} experiments double-run, {failures} divergent"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="tussle.lint.seedcheck",
        description=("Run each registered experiment twice at the same seed "
                     "and assert identical result tables."),
    )
    parser.add_argument("experiments", nargs="*", metavar="ID",
                        help="experiment ids (default: all registered)")
    parser.add_argument("--seed", type=int, default=None,
                        help="explicit seed passed to every experiment "
                             "(default: each experiment's own default)")
    parser.add_argument("--runs", type=int, default=2,
                        help="runs to compare per experiment (default 2)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)
    try:
        outcomes = run_seedcheck(args.experiments or None, seed=args.seed,
                                 runs=args.runs)
    except LintError as exc:
        print(f"seedcheck: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([o.to_dict() for o in outcomes], indent=2))
    else:
        print(format_outcomes(outcomes))
    return 0 if all(o.ok for o in outcomes) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
