"""Baseline (grandfathering) support for the lint gate.

A baseline file records findings that existed when the gate was turned
on, so the CI check can be blocking for *new* findings while the old
ones are burned down.  Entries match on ``(rule, path)`` with a count —
line numbers drift too much under refactoring to key on them — so fixing
one grandfathered finding in a file immediately tightens the budget for
that file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple

from ..errors import LintError
from .findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline", "apply_baseline",
           "update_baseline"]

_VERSION = 1


class Baseline:
    """Budget of grandfathered findings, keyed by (rule, path)."""

    def __init__(self, budgets: Dict[Tuple[str, str], int]):
        self.budgets = dict(budgets)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts = Counter(
            (f.rule_id, f.path) for f in findings if not f.suppressed
        )
        return cls(dict(counts))

    def to_payload(self) -> Dict:
        entries = [
            {"rule": rule, "path": path, "count": count}
            for (rule, path), count in sorted(self.budgets.items())
        ]
        return {"version": _VERSION, "entries": entries}


def load_baseline(path: Path) -> Baseline:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise LintError(
            f"baseline {path} has unsupported format "
            f"(expected version {_VERSION})"
        )
    budgets: Dict[Tuple[str, str], int] = {}
    for entry in payload.get("entries", []):
        try:
            key = (entry["rule"], entry["path"])
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise LintError(f"malformed baseline entry {entry!r}") from exc
        budgets[key] = budgets.get(key, 0) + count
    return Baseline(budgets)


def write_baseline(path: Path, findings: List[Finding]) -> Baseline:
    baseline = Baseline.from_findings(findings)
    path.write_text(json.dumps(baseline.to_payload(), indent=2) + "\n",
                    encoding="utf-8")
    return baseline


def apply_baseline(findings: List[Finding],
                   baseline: Baseline) -> Dict[Tuple[str, str], int]:
    """Mark findings covered by the baseline budget as suppressed (in place).

    Returns the *stale* portion of the budget: (rule, path) entries whose
    count exceeded the findings actually present.  A non-empty return
    means the baseline grandfathers findings that no longer exist and
    should be rewritten (``--update-baseline``).
    """
    remaining = dict(baseline.budgets)
    for finding in findings:
        if finding.suppressed:
            continue
        key = (finding.rule_id, finding.path)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            finding.suppressed = True
            finding.suppression_source = "baseline"
    return {key: count for key, count in remaining.items() if count > 0}


def update_baseline(path: Path, findings: List[Finding]) -> Baseline:
    """Rewrite the baseline from current findings, pruning stale entries.

    Findings suppressed by the *old* baseline stay grandfathered (they
    still exist in the tree); findings suppressed inline do not re-enter
    the budget; entries for findings that have been fixed vanish.
    """
    keep = [f for f in findings
            if not f.suppressed or f.suppression_source == "baseline"]
    baseline = Baseline.from_findings(
        [Finding(f.rule_id, f.path, f.line, f.column, f.message)
         for f in keep])
    path.write_text(json.dumps(baseline.to_payload(), indent=2) + "\n",
                    encoding="utf-8")
    return baseline
