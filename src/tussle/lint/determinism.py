"""D-series rules: bit-reproducibility of simulation runs.

The paper's claims are about *who moves and in what order*; a run whose
outcome drifts with global RNG state, wall-clock time, environment
variables, or set iteration order reproduces noise rather than the
paper.  Every rule here flags a construct that makes a run depend on
process-level state instead of an explicit seed.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .context import ModuleInfo, dotted_name, resolve_call_name
from .findings import Finding, Rule, register_rule

__all__ = ["check_module_determinism", "DETERMINISM_RULES",
           "WALL_CLOCK_ALLOWLIST", "PARALLELISM_ALLOWLIST",
           "RETRY_SLEEP_ALLOWLIST", "VECTORIZED_KERNEL_PATHS"]

D101 = register_rule(Rule(
    "D101", "global-random-call",
    "call to the module-level random.* API (shared global RNG state)",
    "Module-level random functions share one hidden Mersenne Twister; any "
    "library call that touches it changes every later draw. Construct a "
    "random.Random(seed) and pass it down instead.",
))
D102 = register_rule(Rule(
    "D102", "global-nprandom-call",
    "call to the legacy numpy.random.* API (shared global RNG state)",
    "numpy's legacy module-level RandomState is process-global. Use "
    "numpy.random.default_rng(seed) and thread the generator through.",
))
D103 = register_rule(Rule(
    "D103", "unseeded-rng-constructor",
    "RNG constructed without an explicit seed argument",
    "random.Random() / default_rng() with no argument seed from the OS, so "
    "two runs of the same experiment diverge. Always pass a seed; "
    "random.SystemRandom is nondeterministic by design and never allowed.",
))
D104 = register_rule(Rule(
    "D104", "wall-clock-read",
    "wall-clock read (time.time, datetime.now, ...) inside the simulation",
    "Simulated time must come from the event loop, not the host clock; "
    "clock reads make results machine- and moment-dependent.",
))
D105 = register_rule(Rule(
    "D105", "environ-read",
    "os.environ / os.getenv read inside the simulation",
    "Environment variables are invisible inputs: the same seed would give "
    "different results on different hosts. Pass configuration explicitly.",
))
D106 = register_rule(Rule(
    "D106", "set-iteration-order",
    "iteration over a set feeding an ordering-sensitive construct",
    "Set iteration order varies across processes (hash randomization). "
    "Wrap the set in sorted(...) before iterating, listing, or sampling.",
))
D107 = register_rule(Rule(
    "D107", "rng-fallback-default",
    "hidden-default RNG fallback (`rng or Random(0)` idiom)",
    "An `or`-fallback silently pins a constant seed the caller never sees. "
    "Thread an explicit seed parameter and construct the RNG from it "
    "behind an `if rng is None:` guard.",
))
D108 = register_rule(Rule(
    "D108", "function-scope-rng-import",
    "import of an RNG module inside a function body",
    "Function-scope `import random` hides the module's dependence on "
    "randomness from readers and from this analyzer; import at module "
    "level so seeding discipline is visible.",
))
D109 = register_rule(Rule(
    "D109", "wall-clock-outside-profiler",
    "direct timing call outside the sanctioned tussle.obs.profiler module",
    "Wall-clock timing belongs to tussle.obs.profiler.Profiler, the one "
    "allowlisted consumer; its measurements are quarantined to the "
    "benchmark channel and never enter traces or results. Direct "
    "time.perf_counter/time.time calls elsewhere bypass that quarantine.",
))

D110 = register_rule(Rule(
    "D110", "parallelism-outside-executor",
    "worker pool / thread construction outside tussle.sweep.executors",
    "Parallel fan-out must go through the sweep executors, the one "
    "sanctioned parallelism site: their workers run each cell at a seed "
    "derived from the cell's identity (never shared RNG state) and the "
    "scheduler merges results in deterministic order. An ad-hoc pool or "
    "thread elsewhere reintroduces completion-order and RNG-sharing "
    "nondeterminism.",
))

D111 = register_rule(Rule(
    "D111", "population-loop-in-kernel",
    "Python-level loop over an agent population inside a vectorized kernel "
    "module",
    "Kernel modules exist to keep population work in NumPy: a Python "
    "for-loop (or comprehension) over consumers/agents reintroduces the "
    "O(N) interpreter cost the scale subsystem was built to remove, and it "
    "does so silently — the code still passes parity, just 100x slower. "
    "Loop over the handful of provider columns if you must; per-agent "
    "logic belongs in an array expression.",
))

D112 = register_rule(Rule(
    "D112", "sleep-outside-retry-site",
    "time.sleep call outside the sanctioned sweep-executor retry site",
    "A real sleep stalls the process on wall-clock time: inside the "
    "simulation it would couple results to host scheduling, and anywhere "
    "else it hides latency the profiler cannot attribute. The one "
    "sanctioned site is the resilient sweep executor's supervision loop, "
    "whose waits are quarantined from the deterministic merge. Simulated "
    "waits belong on the event loop / Backoff schedule instead.",
))

DETERMINISM_RULES = (D101, D102, D103, D104, D105, D106, D107, D108, D109,
                     D110, D111, D112)

#: Modules (path suffixes, ``/``-separated) sanctioned to read the host
#: clock. The profiler quarantines wall-clock values to the benchmark
#: channel; the sweep executors use the monotonic clock solely for worker
#: timeout/backoff supervision, likewise quarantined from the
#: deterministic merge; sweep telemetry stamps its *wall channel* (and
#: only that channel — the deterministic channel is clock-free) with
#: stream offsets. D104/D109 do not apply inside them.
WALL_CLOCK_ALLOWLIST = ("tussle/obs/profiler.py",
                        "tussle/sweep/executors.py",
                        "tussle/obs/telemetry.py")

#: Modules sanctioned to construct worker pools/threads. The sweep
#: executors are the only entry: they isolate per-cell RNG state and feed
#: the scheduler's deterministic merge, so D110 does not apply inside them.
PARALLELISM_ALLOWLIST = ("tussle/sweep/executors.py",)

#: Modules sanctioned to call time.sleep. The resilient executor's
#: supervision/poll loop is the only entry (rule D112): its waits pace
#: worker monitoring and retry backoff on the quarantined wall clock and
#: never influence cell payloads.
RETRY_SLEEP_ALLOWLIST = ("tussle/sweep/executors.py",)

#: Modules held to the vectorized-kernel discipline: D111 flags Python
#: loops over agent populations inside these files (provider-column loops
#: are fine; per-consumer loops are not).
VECTORIZED_KERNEL_PATHS = ("tussle/scale/kernels.py",
                           "tussle/scale/nkernels.py")

#: Identifier fragments that mark an iterable as an agent population.
#: Matching is case-insensitive over every Name/Attribute/argument
#: identifier inside the loop's iterable expression.
_POPULATION_TOKENS = ("consumer", "agent", "population", "packet", "flow")

#: Module-level functions of ``random`` that mutate/read the global RNG.
_STATEFUL_RANDOM_FNS = {
    "random", "randint", "randrange", "getrandbits", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate",
    "binomialvariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "seed", "getstate", "setstate", "randbytes",
}

#: numpy.random attributes that are fine to call (seedable constructors and
#: generator machinery); everything else on numpy.random is the legacy
#: global-state API.
_ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "RandomState", "SeedSequence",
    "BitGenerator", "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
}

#: Constructors that take a seed as their first argument.
_SEEDABLE_CTORS = {"random.Random", "numpy.random.default_rng",
                   "numpy.random.RandomState"}

_WALL_CLOCK_FNS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: The subset of wall-clock reads that signal ad-hoc profiling — these
#: additionally fire D109 pointing at the sanctioned Profiler.
_TIMING_FNS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
}

#: Constructors that spawn concurrent workers (D110 sinks).
_PARALLELISM_CTORS = {
    "multiprocessing.Pool", "multiprocessing.Process",
    "multiprocessing.pool.Pool", "multiprocessing.pool.ThreadPool",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "threading.Thread",
    "os.fork",
}

#: Instance methods whose argument order matters (sampling/selection).
_ORDER_SENSITIVE_METHODS = {"choice", "choices", "shuffle", "sample",
                            "permutation"}

_RNG_MODULES = {"random", "numpy.random"}


def _is_set_expr(node: ast.expr) -> bool:
    """Literal set, set comprehension, or set()/frozenset() constructor call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo):
        self.info = info
        self.findings: List[Finding] = []
        self._function_depth = 0
        posix_path = str(info.path).replace("\\", "/")
        self._wall_clock_exempt = any(
            posix_path.endswith(suffix) for suffix in WALL_CLOCK_ALLOWLIST
        )
        self._parallelism_exempt = any(
            posix_path.endswith(suffix) for suffix in PARALLELISM_ALLOWLIST
        )
        self._retry_sleep_exempt = any(
            posix_path.endswith(suffix) for suffix in RETRY_SLEEP_ALLOWLIST
        )
        self._kernel_module = any(
            posix_path.endswith(suffix) for suffix in VECTORIZED_KERNEL_PATHS
        )

    # -- helpers -------------------------------------------------------
    def _add(self, rule: Rule, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule_id=rule.rule_id,
            path=str(self.info.path),
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        ))

    def _canonical(self, node: ast.expr) -> Optional[str]:
        return resolve_call_name(node, self.info.imports)

    # -- function-scope imports (D108) --------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _check_rng_import(self, node: ast.AST, module: str) -> None:
        if self._function_depth > 0 and module in _RNG_MODULES:
            self._add(D108, node,
                      f"move `import {module}` to module level so RNG use "
                      "is visible to seeding discipline")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_rng_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and not node.level:
            self._check_rng_import(node, node.module)
        self.generic_visit(node)

    # -- calls (D101/D102/D103/D104/D105/D106 sinks) -------------------
    def visit_Call(self, node: ast.Call) -> None:
        canonical = self._canonical(node.func)
        if canonical is not None:
            self._check_canonical_call(node, canonical)
        self._check_order_sensitive_call(node)
        self.generic_visit(node)

    def _check_canonical_call(self, node: ast.Call, canonical: str) -> None:
        module, _, attr = canonical.rpartition(".")
        if module == "random" and attr in _STATEFUL_RANDOM_FNS:
            self._add(D101, node,
                      f"`random.{attr}()` uses the process-global RNG; pass "
                      "a seeded random.Random instance instead")
            return
        if canonical.startswith("numpy.random."):
            remainder = canonical[len("numpy.random."):].split(".")[0]
            if remainder not in _ALLOWED_NP_RANDOM:
                self._add(D102, node,
                          f"`numpy.random.{remainder}()` uses the legacy "
                          "global RandomState; use default_rng(seed)")
                return
        if canonical == "random.SystemRandom":
            self._add(D103, node,
                      "random.SystemRandom is nondeterministic by design; "
                      "use random.Random(seed)")
            return
        if canonical in _SEEDABLE_CTORS and not node.args:
            # Keyword form (seed=...) counts as explicit seeding.
            if not any(kw.arg in ("seed", "x") for kw in node.keywords):
                self._add(D103, node,
                          f"`{canonical}()` constructed without a seed; two "
                          "runs will diverge")
            return
        if canonical in _WALL_CLOCK_FNS:
            if self._wall_clock_exempt:
                return
            self._add(D104, node,
                      f"`{canonical}()` reads the host clock; simulated time "
                      "must come from the event loop")
            if canonical in _TIMING_FNS:
                self._add(D109, node,
                          f"`{canonical}()` is ad-hoc profiling; use "
                          "tussle.obs.profiler.Profiler, the sanctioned "
                          "wall-clock consumer")
            return
        if canonical == "os.getenv":
            self._add(D105, node,
                      "`os.getenv()` makes results depend on the host "
                      "environment; pass configuration explicitly")
            return
        if canonical == "time.sleep" and not self._retry_sleep_exempt:
            self._add(D112, node,
                      "`time.sleep()` stalls on the host clock; real waits "
                      "belong in the resilient sweep executor's sanctioned "
                      "retry site, simulated waits on the event loop")
            return
        if canonical in _PARALLELISM_CTORS and not self._parallelism_exempt:
            self._add(D110, node,
                      f"`{canonical}()` spawns concurrent workers; parallel "
                      "fan-out belongs in tussle.sweep.executors, the "
                      "sanctioned site with per-cell seed isolation and a "
                      "deterministic merge")

    def _check_order_sensitive_call(self, node: ast.Call) -> None:
        # list(set(...)) / tuple(set(...)) — order-dependent materialization.
        if (isinstance(node.func, ast.Name) and node.func.id in ("list", "tuple")
                and node.args and _is_set_expr(node.args[0])):
            self._add(D106, node,
                      f"`{node.func.id}(set(...))` materializes unordered "
                      "elements; use sorted(...)")
            return
        # rng.choice(set(...)) and friends — sampling from unordered input.
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SENSITIVE_METHODS
                and node.args and _is_set_expr(node.args[0])):
            self._add(D106, node,
                      f"`.{node.func.attr}()` over a set draws in hash order; "
                      "sort the population first")

    # -- attribute reads (D105) ----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._canonical(node) == "os.environ":
            self._add(D105, node,
                      "`os.environ` read makes results depend on the host "
                      "environment; pass configuration explicitly")
        self.generic_visit(node)

    # -- population loops in kernels (D111) ----------------------------
    def _population_reference(self, expr: ast.expr) -> Optional[str]:
        """First identifier in ``expr`` that names an agent population."""
        for sub in ast.walk(expr):
            names = []
            if isinstance(sub, ast.Name):
                names.append(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.append(sub.attr)
            elif isinstance(sub, ast.arg):
                names.append(sub.arg)
            for name in names:
                lowered = name.lower()
                if any(token in lowered for token in _POPULATION_TOKENS):
                    return name
        return None

    def _check_kernel_loop(self, iterable: ast.expr, construct: str) -> None:
        if not self._kernel_module:
            return
        offender = self._population_reference(iterable)
        if offender is not None:
            self._add(D111, iterable,
                      f"{construct} iterates the agent population "
                      f"(`{offender}`) in Python; kernel modules must keep "
                      "population work in NumPy array expressions")

    # -- iteration over sets (D106) ------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._add(D106, node.iter,
                      "for-loop iterates a set in hash order; wrap it in "
                      "sorted(...)")
        self._check_kernel_loop(node.iter, "for-loop")
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_kernel_loop(node.test, "while-loop")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for generator in node.generators:
            if _is_set_expr(generator.iter):
                self._add(D106, generator.iter,
                          "comprehension iterates a set in hash order; wrap "
                          "it in sorted(...)")
            self._check_kernel_loop(generator.iter, "comprehension")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)
        self.generic_visit(node)

    # SetComp over a set is order-free (set -> set), so it is not visited.

    # -- hidden-default fallbacks (D107) -------------------------------
    def _is_rng_ctor_call(self, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        canonical = self._canonical(node.func)
        return canonical in _SEEDABLE_CTORS

    def visit_BoolOp(self, node: ast.BoolOp) -> None:
        if isinstance(node.op, ast.Or):
            for value in node.values[1:]:
                if self._is_rng_ctor_call(value):
                    self._add(D107, value,
                              "`or`-fallback constructs an RNG with a seed "
                              "the caller never sees; thread an explicit "
                              "seed parameter")
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        for branch in (node.body, node.orelse):
            if (self._is_rng_ctor_call(branch)
                    and all(isinstance(a, ast.Constant)
                            for a in branch.args)  # type: ignore[union-attr]
                    and branch.args):  # type: ignore[union-attr]
                self._add(D107, branch,
                          "conditional fallback pins a constant RNG seed; "
                          "thread an explicit seed parameter")
        self.generic_visit(node)


def check_module_determinism(info: ModuleInfo) -> List[Finding]:
    """Run every D-series rule over one parsed module."""
    visitor = _DeterminismVisitor(info)
    visitor.visit(info.tree)
    return visitor.findings
