"""Finding and rule metadata types for the :mod:`tussle.lint` analyzer.

A *rule* is a named invariant with a stable identifier (``D103``,
``E201``, ...); a *finding* is one concrete violation of a rule at a
source location.  Rules register themselves in :data:`RULE_REGISTRY` at
import time so the CLI can enumerate them (``--list-rules``) without
hard-coding the catalog in two places.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import LintError

__all__ = [
    "Rule",
    "Finding",
    "RULE_REGISTRY",
    "register_rule",
    "rule_ids",
    "get_rule",
]


@dataclass(frozen=True)
class Rule:
    """Static metadata for one lint rule.

    Attributes
    ----------
    rule_id:
        Stable identifier: a family letter plus a number.  ``D`` rules
        guard determinism, ``E`` rules guard experiment conformance,
        ``X`` rules guard the public API surface.
    name:
        Short kebab-case slug used in text output.
    summary:
        One-line description of the invariant the rule enforces.
    rationale:
        Why the invariant matters for a reproducible tussle simulation.
    """

    rule_id: str
    name: str
    summary: str
    rationale: str = ""

    @property
    def family(self) -> str:
        return self.rule_id[:1]


#: All known rules, keyed by rule id.  Populated by :func:`register_rule`
#: when the rule modules are imported.
RULE_REGISTRY: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the registry; duplicate ids are a config error."""
    if rule.rule_id in RULE_REGISTRY:
        raise LintError(f"duplicate lint rule id {rule.rule_id!r}")
    RULE_REGISTRY[rule.rule_id] = rule
    return rule


def rule_ids() -> List[str]:
    """All registered rule ids, sorted."""
    return sorted(RULE_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    try:
        return RULE_REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown lint rule {rule_id!r}") from None


@dataclass
class Finding:
    """One violation of one rule at one source location."""

    rule_id: str
    path: str
    line: int
    column: int
    message: str
    suppressed: bool = False
    suppression_source: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }
        if self.suppressed:
            data["suppressed"] = True
            data["suppression_source"] = self.suppression_source
        if self.extra:
            data["extra"] = dict(self.extra)
        return data

    def format(self) -> str:
        rule = RULE_REGISTRY.get(self.rule_id)
        slug = f" [{rule.name}]" if rule else ""
        return f"{self.location()}: {self.rule_id}{slug} {self.message}"

    def sort_key(self):
        return (self.path, self.line, self.column, self.rule_id)
