"""Two-party policy negotiation.

"In many cases, players' interests are not adverse, but simply different.
A user wants to send data; a provider wants to be compensated for carrying
it... In this case, the choice of mechanism must itself be mutual"
(§IV-D).

:class:`Negotiation` takes each party's :class:`~tussle.policy.language.Policy`
and a set of *negotiable* request attributes with their candidate values
(e.g. ``encrypted`` in {True, False}, ``payment`` in {0, 1, 2}), then
searches the joint space for assignments both policies permit.
Deterministic exhaustive search — the spaces in question are small, and
exactness matters more than speed for the experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import PolicyError
from .evaluator import evaluate_policy
from .language import Policy

__all__ = ["NegotiationOutcome", "Negotiation"]

Value = Union[bool, float, str]


@dataclass
class NegotiationOutcome:
    """Result of a negotiation.

    ``agreement`` is the chosen full request assignment when successful;
    ``acceptable`` lists every assignment both parties would permit.
    """

    succeeded: bool
    agreement: Optional[Dict[str, Value]]
    acceptable: List[Dict[str, Value]] = field(default_factory=list)
    rounds_searched: int = 0

    @property
    def choice_count(self) -> int:
        """How many mutually-acceptable configurations exist.

        The design-for-choice index of this interaction: more acceptable
        points = more room for the tussle to settle without breaking.
        """
        return len(self.acceptable)


class Negotiation:
    """Search for mutually-acceptable interaction terms.

    Parameters
    ----------
    policy_a, policy_b:
        Each party's policy; an interaction needs PERMIT from both.
    fixed:
        Request attributes that are not negotiable (who is talking, what
        application, ...).
    negotiable:
        Attribute -> candidate values; the mechanism-choice space.
    preference:
        Optional scoring function (higher preferred) used to pick the
        agreement among acceptable assignments; defaults to the first in
        deterministic iteration order.
    """

    def __init__(
        self,
        policy_a: Policy,
        policy_b: Policy,
        fixed: Optional[Mapping[str, Value]] = None,
        negotiable: Optional[Mapping[str, Sequence[Value]]] = None,
    ):
        self.policy_a = policy_a
        self.policy_b = policy_b
        self.fixed: Dict[str, Value] = dict(fixed or {})
        self.negotiable: Dict[str, List[Value]] = {
            key: list(values) for key, values in (negotiable or {}).items()
        }
        for key, values in self.negotiable.items():
            if not values:
                raise PolicyError(f"negotiable attribute {key!r} has no candidates")

    def run(self, preference=None) -> NegotiationOutcome:
        """Exhaustively search the negotiable space."""
        keys = sorted(self.negotiable)
        candidate_lists = [self.negotiable[key] for key in keys]
        acceptable: List[Dict[str, Value]] = []
        rounds = 0
        if not keys:
            combos: Sequence[Tuple[Value, ...]] = [()]
        else:
            combos = list(itertools.product(*candidate_lists))
        for combo in combos:
            rounds += 1
            request: Dict[str, Value] = dict(self.fixed)
            request.update(zip(keys, combo))
            if (evaluate_policy(self.policy_a, request).permitted
                    and evaluate_policy(self.policy_b, request).permitted):
                acceptable.append(request)
        if not acceptable:
            return NegotiationOutcome(succeeded=False, agreement=None,
                                      acceptable=[], rounds_searched=rounds)
        if preference is not None:
            agreement = max(acceptable, key=preference)
        else:
            agreement = acceptable[0]
        return NegotiationOutcome(
            succeeded=True,
            agreement=agreement,
            acceptable=acceptable,
            rounds_searched=rounds,
        )
