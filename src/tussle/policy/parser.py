"""Parser for the tussle policy language.

Grammar (one rule per non-empty, non-comment line)::

    rule        := effect [ "if" expr ]
    effect      := "permit" | "deny"
    expr        := and_expr ( "or" and_expr )*
    and_expr    := not_expr ( "and" not_expr )*
    not_expr    := "not" not_expr | atom
    atom        := "(" expr ")" | membership | comparison | term
    membership  := term "in" "{" literal ( "," literal )* "}"
    comparison  := term op term
    op          := "==" | "!=" | "<=" | ">=" | "<" | ">"
    term        := attribute | literal
    literal     := number | string | "true" | "false"
                   (numbers accept an optional exponent, e.g. 1.5e-3)
    attribute   := NAME ( "." NAME )*

Lines starting with ``#`` are comments. A ``default permit`` /
``default deny`` line sets the policy default.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import PolicyParseError
from .language import (
    AndExpr,
    Attribute,
    Comparison,
    Effect,
    Expr,
    Literal,
    Membership,
    NotExpr,
    OrExpr,
    Policy,
    Rule,
)

__all__ = ["parse_policy", "parse_rule", "parse_expression"]

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<string>"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)
  | (?P<op>==|!=|<=|>=|<|>)
  | (?P<punct>[(){},])
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"permit", "deny", "if", "and", "or", "not", "in", "true", "false",
             "default"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise PolicyParseError(
                f"unexpected character {text[position]!r} at column {position}"
            )
        position = match.end()
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "space":
            continue
        if kind == "name" and value in _KEYWORDS:
            tokens.append(("keyword", value))
        else:
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], source: str):
        self.tokens = tokens
        self.position = 0
        self.source = source

    # -------------------------------------------------------------- utils
    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise PolicyParseError(f"unexpected end of rule in {self.source!r}")
        self.position += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Tuple[str, str]:
        token = self.advance()
        if token[0] != kind or (value is not None and token[1] != value):
            raise PolicyParseError(
                f"expected {value or kind!r}, got {token[1]!r} in {self.source!r}"
            )
        return token

    def at_keyword(self, word: str) -> bool:
        token = self.peek()
        return token is not None and token == ("keyword", word)

    # ---------------------------------------------------------- grammar
    def parse_expr(self) -> Expr:
        operands = [self.parse_and()]
        while self.at_keyword("or"):
            self.advance()
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def parse_and(self) -> Expr:
        operands = [self.parse_not()]
        while self.at_keyword("and"):
            self.advance()
            operands.append(self.parse_not())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def parse_not(self) -> Expr:
        if self.at_keyword("not"):
            self.advance()
            return NotExpr(self.parse_not())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        token = self.peek()
        if token is None:
            raise PolicyParseError(f"unexpected end of rule in {self.source!r}")
        if token == ("punct", "("):
            self.advance()
            inner = self.parse_expr()
            self.expect("punct", ")")
            return inner
        left = self.parse_term()
        nxt = self.peek()
        if nxt is not None and nxt[0] == "op":
            op = self.advance()[1]
            right = self.parse_term()
            return Comparison(op=op, left=left, right=right)
        if nxt is not None and nxt == ("keyword", "in"):
            self.advance()
            return self.parse_membership(left)
        return left

    def parse_membership(self, item: Expr) -> Membership:
        self.expect("punct", "{")
        values = [self.parse_literal_value()]
        while self.peek() == ("punct", ","):
            self.advance()
            values.append(self.parse_literal_value())
        self.expect("punct", "}")
        return Membership(item=item, collection=frozenset(values))

    def parse_term(self) -> Expr:
        token = self.advance()
        kind, value = token
        if kind == "string":
            return Literal(value[1:-1])
        if kind == "number":
            return Literal(float(value))
        if kind == "keyword" and value in ("true", "false"):
            return Literal(value == "true")
        if kind == "name":
            return Attribute(value)
        raise PolicyParseError(f"unexpected token {value!r} in {self.source!r}")

    def parse_literal_value(self):
        token = self.advance()
        kind, value = token
        if kind == "string":
            return value[1:-1]
        if kind == "number":
            return float(value)
        if kind == "keyword" and value in ("true", "false"):
            return value == "true"
        raise PolicyParseError(
            f"set members must be literals, got {value!r} in {self.source!r}"
        )

    def done(self) -> bool:
        return self.position >= len(self.tokens)


def parse_expression(text: str) -> Expr:
    """Parse a bare condition expression."""
    parser = _Parser(_tokenize(text), text)
    expr = parser.parse_expr()
    if not parser.done():
        leftover = parser.peek()
        raise PolicyParseError(f"trailing tokens starting at {leftover[1]!r} in {text!r}")
    return expr


def parse_rule(line: str) -> Rule:
    """Parse a single ``permit``/``deny`` rule line."""
    tokens = _tokenize(line)
    parser = _Parser(tokens, line)
    effect_token = parser.advance()
    if effect_token[0] != "keyword" or effect_token[1] not in ("permit", "deny"):
        raise PolicyParseError(
            f"rule must start with 'permit' or 'deny': {line!r}"
        )
    effect = Effect.PERMIT if effect_token[1] == "permit" else Effect.DENY
    condition: Optional[Expr] = None
    if not parser.done():
        parser.expect("keyword", "if")
        condition = parser.parse_expr()
        if not parser.done():
            leftover = parser.peek()
            raise PolicyParseError(
                f"trailing tokens starting at {leftover[1]!r} in {line!r}"
            )
    return Rule(effect=effect, condition=condition, source=line.strip())


def parse_policy(text: str, name: str = "") -> Policy:
    """Parse a multi-line policy document."""
    policy = Policy(name=name)
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("default"):
            parts = line.split()
            if len(parts) != 2 or parts[1] not in ("permit", "deny"):
                raise PolicyParseError(f"malformed default line {line!r}")
            policy.default = Effect.PERMIT if parts[1] == "permit" else Effect.DENY
            continue
        policy.add_rule(parse_rule(line))
    return policy
