"""Policy-language substrate (§II-B): expression, bounds, negotiation."""

from .language import (
    AndExpr,
    Attribute,
    Comparison,
    Effect,
    Expr,
    Literal,
    Membership,
    NotExpr,
    OrExpr,
    Policy,
    Rule,
)
from .parser import parse_expression, parse_policy, parse_rule
from .evaluator import Decision, evaluate_expression, evaluate_policy
from .ontology import (
    ExpressivenessReport,
    Ontology,
    check_policy,
    expressiveness_report,
    standard_access_ontology,
)
from .negotiation import Negotiation, NegotiationOutcome
from .enforcement import PolicyEnforcementPoint, packet_to_request
from .render import render_expression, render_policy, render_rule

__all__ = [
    "AndExpr", "Attribute", "Comparison", "Effect", "Expr", "Literal",
    "Membership", "NotExpr", "OrExpr", "Policy", "Rule",
    "parse_expression", "parse_policy", "parse_rule",
    "Decision", "evaluate_expression", "evaluate_policy",
    "ExpressivenessReport", "Ontology", "check_policy",
    "expressiveness_report", "standard_access_ontology",
    "Negotiation", "NegotiationOutcome",
    "PolicyEnforcementPoint", "packet_to_request",
    "render_expression", "render_policy", "render_rule",
]
