"""Evaluation of policies against requests.

A *request* is a flat mapping from dotted attribute names to values
(bool/float/str), e.g. ``{"identity.accountability": 0.8,
"application": "http", "encrypted": True}``. Evaluation is strict about
types (comparing a string with ``<`` against a number raises
:class:`~tussle.errors.PolicyError`) but tolerant of *missing* attributes:
a condition referencing an absent attribute simply does not match, and the
miss is recorded — missing attributes are how unanticipated tussles show
up (see :mod:`tussle.policy.ontology`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Set, Union

from ..errors import PolicyError
from .language import (
    AndExpr,
    Attribute,
    Comparison,
    Effect,
    Expr,
    Literal,
    Membership,
    NotExpr,
    OrExpr,
    Policy,
    Rule,
)

__all__ = ["Decision", "evaluate_expression", "evaluate_policy"]

Value = Union[bool, float, str]


class _Missing(PolicyError):
    """Internal: an attribute referenced by the expression is absent."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name


@dataclass
class Decision:
    """Outcome of evaluating a policy against a request."""

    effect: Effect
    matched_rule: Optional[Rule]
    missing_attributes: Set[str] = field(default_factory=set)

    @property
    def permitted(self) -> bool:
        return self.effect is Effect.PERMIT

    @property
    def defaulted(self) -> bool:
        return self.matched_rule is None


def _resolve(expr: Expr, request: Mapping[str, Value]) -> Value:
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Attribute):
        if expr.name not in request:
            raise _Missing(expr.name)
        return request[expr.name]
    raise PolicyError(f"cannot resolve {expr!r} as a term")


def _as_bool(value: Value, context: str) -> bool:
    if isinstance(value, bool):
        return value
    raise PolicyError(f"{context} must be boolean, got {value!r}")


def _compare(op: str, left: Value, right: Value) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        raise PolicyError(f"booleans only support ==/!=, got {op!r}")
    numeric = isinstance(left, (int, float)) and isinstance(right, (int, float))
    stringy = isinstance(left, str) and isinstance(right, str)
    if not (numeric or stringy):
        if op == "==":
            return False
        if op == "!=":
            return True
        raise PolicyError(
            f"cannot order {type(left).__name__} against {type(right).__name__}"
        )
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise PolicyError(f"unknown operator {op!r}")


def _evaluate(expr: Expr, request: Mapping[str, Value]) -> bool:
    if isinstance(expr, Literal):
        return _as_bool(expr.value, "bare literal condition")
    if isinstance(expr, Attribute):
        return _as_bool(_resolve(expr, request), f"attribute {expr.name!r}")
    if isinstance(expr, Comparison):
        left = _resolve(expr.left, request)
        right = _resolve(expr.right, request)
        return _compare(expr.op, left, right)
    if isinstance(expr, Membership):
        item = _resolve(expr.item, request)
        return item in expr.collection
    if isinstance(expr, NotExpr):
        return not _evaluate(expr.operand, request)
    if isinstance(expr, AndExpr):
        return all(_evaluate(operand, request) for operand in expr.operands)
    if isinstance(expr, OrExpr):
        return any(_evaluate(operand, request) for operand in expr.operands)
    raise PolicyError(f"unknown expression node {type(expr).__name__}")


def evaluate_expression(expr: Expr, request: Mapping[str, Value]) -> bool:
    """Evaluate a bare condition; missing attributes make it False."""
    try:
        return _evaluate(expr, request)
    except _Missing:
        return False


def evaluate_policy(policy: Policy, request: Mapping[str, Value]) -> Decision:
    """First-match evaluation of a policy against a request.

    Rules whose conditions reference missing attributes do not match; the
    missed attribute names are accumulated on the decision so ontology
    analysis can report what the language could not see.
    """
    missing: Set[str] = set()
    for rule in policy.rules:
        if rule.condition is None:
            return Decision(effect=rule.effect, matched_rule=rule,
                            missing_attributes=missing)
        try:
            matched = _evaluate(rule.condition, request)
        except _Missing as exc:
            missing.add(exc.name)
            continue
        if matched:
            return Decision(effect=rule.effect, matched_rule=rule,
                            missing_attributes=missing)
    return Decision(effect=policy.default, matched_rule=None,
                    missing_attributes=missing)
