"""Policy enforcement points: the COPS-style in-path decision (§II-B).

The paper groups COPS with P3P/KeyNote as run-time tussle accommodation:
a policy written in the language actually *controls* network behaviour.
:class:`PolicyEnforcementPoint` is the bridge — a middlebox that converts
each packet into a policy request (using the same attribute vocabulary as
:func:`tussle.policy.ontology.standard_access_ontology`) and forwards or
drops per the decision.

It also records the *missing attributes* of every decision: when the
traffic varies on dimensions the policy language cannot see, those show
up here as the ontology's blind spots at enforcement time.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from ..netsim.middlebox import Action, Middlebox, Verdict
from ..netsim.packets import Packet
from .evaluator import evaluate_policy
from .language import Policy
from .ontology import Ontology, check_policy

__all__ = ["packet_to_request", "PolicyEnforcementPoint"]

Value = Union[bool, float, str]


def packet_to_request(
    packet: Packet,
    extra: Optional[Mapping[str, Value]] = None,
) -> Dict[str, Value]:
    """Translate a packet into a policy request.

    Only observable facts go in: the wire header, the observable
    application classification, and the encryption posture. ``extra``
    merges caller-supplied context (identity accountability, purpose...).
    """
    wire = packet.wire_header
    request: Dict[str, Value] = {
        "src": wire.src,
        "dst": wire.dst,
        "port": float(wire.dst_port),
        "encrypted": bool(packet.encrypted),
    }
    observed = packet.observable_application()
    if observed is not None:
        request["application"] = observed
    if extra:
        request.update(extra)
    return request


class PolicyEnforcementPoint(Middlebox):
    """A middlebox that enforces a policy-language policy on traffic.

    Parameters
    ----------
    policy:
        The policy to enforce (PERMIT forwards, DENY drops).
    ontology:
        When given, the policy is validated against it at construction —
        a policy outside the ontology is rejected up front, which is the
        "bounded tussle" property made operational.
    context:
        Extra request attributes merged into every packet's request
        (e.g. per-deployment purpose labels).
    """

    def __init__(
        self,
        name: str,
        policy: Policy,
        ontology: Optional[Ontology] = None,
        context: Optional[Mapping[str, Value]] = None,
        discloses: bool = True,
    ):
        super().__init__(name, discloses=discloses)
        if ontology is not None:
            check_policy(policy, ontology)
        self.policy = policy
        self.ontology = ontology
        self.context = dict(context or {})
        #: attributes policies wanted but requests never carried
        self.missing_attribute_counts: Dict[str, int] = {}
        self.decisions = 0
        self.permits = 0

    def process(self, packet: Packet) -> Verdict:
        request = packet_to_request(packet, extra=self.context)
        decision = evaluate_policy(self.policy, request)
        self.decisions += 1
        for attribute in decision.missing_attributes:
            self.missing_attribute_counts[attribute] = (
                self.missing_attribute_counts.get(attribute, 0) + 1
            )
        if decision.permitted:
            self.permits += 1
            return self._record(packet, Verdict(Action.FORWARD, packet=packet))
        rule = decision.matched_rule.source if decision.matched_rule else "default"
        return self._record(
            packet, Verdict(Action.DROP, reason=f"policy denied ({rule})")
        )

    def permit_rate(self) -> float:
        return self.permits / self.decisions if self.decisions else 0.0

    def blind_spot_report(self) -> Dict[str, int]:
        """Attributes the policy referenced but traffic never carried.

        Persistent entries here mean the deployment's policy is written
        against context the enforcement point cannot observe — the
        ontology/reality mismatch of §II-B, at run time.
        """
        return dict(self.missing_attribute_counts)
