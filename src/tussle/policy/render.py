"""Rendering policies back to source text.

The inverse of :mod:`tussle.policy.parser`: any AST built or manipulated
programmatically (e.g. a negotiated agreement turned into a rule) can be
rendered to text that parses back to an equal AST — the round-trip
property the test suite checks with hypothesis.
"""

from __future__ import annotations

from typing import Union

from ..errors import PolicyError
from .language import (
    AndExpr,
    Attribute,
    Comparison,
    Effect,
    Expr,
    Literal,
    Membership,
    NotExpr,
    OrExpr,
    Policy,
    Rule,
)

__all__ = ["render_expression", "render_rule", "render_policy"]

Value = Union[bool, float, str]


def _render_value(value: Value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise PolicyError("non-finite numbers are not expressible")
        return repr(value)
    if isinstance(value, str):
        if '"' in value:
            raise PolicyError("string literals cannot contain double quotes")
        return f'"{value}"'
    raise PolicyError(f"unrenderable literal {value!r}")


def _precedence(expr: Expr) -> int:
    """Higher binds tighter: or(1) < and(2) < not(3) < atoms(4)."""
    if isinstance(expr, OrExpr):
        return 1
    if isinstance(expr, AndExpr):
        return 2
    if isinstance(expr, NotExpr):
        return 3
    return 4


def _render(expr: Expr, parent_precedence: int) -> str:
    own = _precedence(expr)
    if isinstance(expr, Literal):
        text = _render_value(expr.value)
    elif isinstance(expr, Attribute):
        text = expr.name
    elif isinstance(expr, Comparison):
        text = (f"{_render(expr.left, 4)} {expr.op} "
                f"{_render(expr.right, 4)}")
    elif isinstance(expr, Membership):
        members = ", ".join(
            _render_value(value)
            for value in sorted(expr.collection, key=lambda v: (str(type(v)), str(v)))
        )
        text = f"{_render(expr.item, 4)} in {{{members}}}"
    elif isinstance(expr, NotExpr):
        text = f"not {_render(expr.operand, own)}"
    elif isinstance(expr, AndExpr):
        text = " and ".join(_render(op, own) for op in expr.operands)
    elif isinstance(expr, OrExpr):
        text = " or ".join(_render(op, own) for op in expr.operands)
    else:
        raise PolicyError(f"unrenderable node {type(expr).__name__}")
    if own < parent_precedence:
        return f"({text})"
    if own == parent_precedence and own in (1, 2):
        # An and-inside-and (or or-inside-or) must keep its grouping:
        # unparenthesized it would re-parse as one flat connective.
        return f"({text})"
    return text


def render_expression(expr: Expr) -> str:
    """Render a condition expression to parseable source."""
    return _render(expr, 0)


def render_rule(rule: Rule) -> str:
    """Render one rule to a source line."""
    effect = "permit" if rule.effect is Effect.PERMIT else "deny"
    if rule.condition is None:
        return effect
    return f"{effect} if {render_expression(rule.condition)}"


def render_policy(policy: Policy) -> str:
    """Render a full policy document (rules then the default line)."""
    lines = [render_rule(rule) for rule in policy.rules]
    default = "permit" if policy.default is Effect.PERMIT else "deny"
    lines.append(f"default {default}")
    return "\n".join(lines)
