"""Bounded ontologies and unanticipated-tussle detection.

"Implicitly, by imposing an ontology on what can be expressed, [policy
languages] bound the tussle that can be expressed within defined limits.
This effect can be beneficial, by structuring tussle along natural
boundaries... It can also be defeating, if it prevents the system from
capturing and acting on tussles that were not anticipated or seen as
important by the language designers" (§II-B).

:class:`Ontology` declares which attributes (with types) a policy may
mention; :func:`check_policy` rejects out-of-ontology policies; and
:func:`expressiveness_report` quantifies, for a stream of real-world
requests, how much of what actually varies the ontology can even talk
about — the "defeating" case made measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Union

from ..errors import OntologyError
from .language import Policy

__all__ = ["Ontology", "check_policy", "ExpressivenessReport", "expressiveness_report"]

Value = Union[bool, float, str]

_TYPE_NAMES = {"bool": bool, "number": (int, float), "string": str}


@dataclass
class Ontology:
    """The attribute vocabulary a policy language admits.

    ``attributes`` maps dotted names to type names ("bool", "number",
    "string").
    """

    name: str
    attributes: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for attribute, type_name in self.attributes.items():
            if type_name not in _TYPE_NAMES:
                raise OntologyError(
                    f"unknown type {type_name!r} for attribute {attribute!r}"
                )

    def declare(self, attribute: str, type_name: str) -> None:
        if type_name not in _TYPE_NAMES:
            raise OntologyError(f"unknown type {type_name!r}")
        self.attributes[attribute] = type_name

    def admits(self, attribute: str) -> bool:
        return attribute in self.attributes

    def value_conforms(self, attribute: str, value: Value) -> bool:
        type_name = self.attributes.get(attribute)
        if type_name is None:
            return False
        expected = _TYPE_NAMES[type_name]
        if type_name == "number" and isinstance(value, bool):
            return False
        return isinstance(value, expected)

    def __len__(self) -> int:
        return len(self.attributes)


#: A reasonable default ontology for access-control tussles.
def standard_access_ontology() -> Ontology:
    """The vocabulary an early-2000s policy designer would anticipate."""
    return Ontology(
        name="standard-access",
        attributes={
            "identity.accountability": "number",
            "identity.scheme": "string",
            "application": "string",
            "encrypted": "bool",
            "src": "string",
            "dst": "string",
            "port": "number",
            "purpose": "string",
        },
    )


__all__.append("standard_access_ontology")


def check_policy(policy: Policy, ontology: Ontology) -> None:
    """Raise :class:`OntologyError` if the policy steps outside the ontology."""
    out_of_bounds = sorted(
        attribute for attribute in policy.attributes()
        if not ontology.admits(attribute)
    )
    if out_of_bounds:
        raise OntologyError(
            f"policy {policy.name or '<unnamed>'!r} references attributes outside "
            f"ontology {ontology.name!r}: {out_of_bounds}"
        )


@dataclass
class ExpressivenessReport:
    """How well an ontology covers what requests actually vary on.

    ``coverage`` is the fraction of distinct request attributes the
    ontology admits; ``blind_spots`` lists attributes the requests carry
    but no policy in this language could ever act on — unanticipated
    tussle dimensions.
    """

    ontology: str
    total_attributes: int
    covered_attributes: int
    blind_spots: List[str]

    @property
    def coverage(self) -> float:
        if self.total_attributes == 0:
            return 1.0
        return self.covered_attributes / self.total_attributes

    @property
    def fully_expressive(self) -> bool:
        return not self.blind_spots


def expressiveness_report(
    ontology: Ontology,
    requests: Sequence[Mapping[str, Value]],
) -> ExpressivenessReport:
    """Measure ontology coverage over observed requests."""
    seen: Set[str] = set()
    for request in requests:
        seen |= set(request)
    blind = sorted(attribute for attribute in seen if not ontology.admits(attribute))
    return ExpressivenessReport(
        ontology=ontology.name,
        total_attributes=len(seen),
        covered_attributes=len(seen) - len(blind),
        blind_spots=blind,
    )
