"""AST for the tussle policy language.

The paper (§II-B) discusses policy languages (P3P, KeyNote, COPS) as an
approach that "explicitly recognizes run-time tussle, and attempts to
accommodate it... Implicitly, by imposing an ontology on what can be
expressed, they bound the tussle that can be expressed within defined
limits."

Our language is a small, typed condition language over request
attributes::

    permit if identity.accountability >= 0.5 and application in {"http", "smtp"}
    deny if purpose == "marketing" or not encrypted

A :class:`Policy` is an ordered list of rules; the first rule whose
condition matches decides, with a default effect when none matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, List, Optional, Set, Tuple, Union

from ..errors import PolicyError

__all__ = [
    "Effect",
    "Expr",
    "Literal",
    "Attribute",
    "Comparison",
    "Membership",
    "NotExpr",
    "AndExpr",
    "OrExpr",
    "Rule",
    "Policy",
]

#: Values the language manipulates.
Value = Union[bool, float, str]


class Effect(Enum):
    """The decision a rule renders."""

    PERMIT = "permit"
    DENY = "deny"


class Expr:
    """Base class for condition expressions."""

    def attributes(self) -> Set[str]:
        """Every attribute name the expression references."""
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass(frozen=True)
class Literal(Expr):
    """A constant boolean, number or string."""

    value: Value

    def attributes(self) -> Set[str]:
        return set()


@dataclass(frozen=True)
class Attribute(Expr):
    """A dotted attribute reference, e.g. ``identity.accountability``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or any(not part for part in self.name.split(".")):
            raise PolicyError(f"malformed attribute name {self.name!r}")

    def attributes(self) -> Set[str]:
        return {self.name}


@dataclass(frozen=True)
class Comparison(Expr):
    """A binary comparison: ==, !=, <, <=, >, >=."""

    op: str
    left: Expr
    right: Expr

    _OPS = ("==", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise PolicyError(f"unknown comparison operator {self.op!r}")

    def attributes(self) -> Set[str]:
        return self.left.attributes() | self.right.attributes()


@dataclass(frozen=True)
class Membership(Expr):
    """``attr in {v1, v2, ...}``."""

    item: Expr
    collection: FrozenSet[Value]

    def attributes(self) -> Set[str]:
        return self.item.attributes()


@dataclass(frozen=True)
class NotExpr(Expr):
    operand: Expr

    def attributes(self) -> Set[str]:
        return self.operand.attributes()


@dataclass(frozen=True)
class AndExpr(Expr):
    operands: Tuple[Expr, ...]

    def attributes(self) -> Set[str]:
        result: Set[str] = set()
        for operand in self.operands:
            result |= operand.attributes()
        return result


@dataclass(frozen=True)
class OrExpr(Expr):
    operands: Tuple[Expr, ...]

    def attributes(self) -> Set[str]:
        result: Set[str] = set()
        for operand in self.operands:
            result |= operand.attributes()
        return result


@dataclass(frozen=True)
class Rule:
    """One policy rule: an effect guarded by an optional condition."""

    effect: Effect
    condition: Optional[Expr] = None
    source: str = ""

    def attributes(self) -> Set[str]:
        return self.condition.attributes() if self.condition else set()


@dataclass
class Policy:
    """An ordered rule list with a default effect.

    First-match semantics: rules are consulted in order; a rule with no
    condition always matches.
    """

    rules: List[Rule] = field(default_factory=list)
    default: Effect = Effect.DENY
    name: str = ""

    def attributes(self) -> Set[str]:
        result: Set[str] = set()
        for rule in self.rules:
            result |= rule.attributes()
        return result

    def add_rule(self, rule: Rule) -> None:
        self.rules.append(rule)

    def __len__(self) -> int:
        return len(self.rules)
