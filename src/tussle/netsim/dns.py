"""A name system with the trademark entanglement the paper dissects.

Section IV-A uses the DNS as the canonical *failure* of tussle isolation:
"The current design is entangled in debate because DNS names are used both
to name machines and to express trademark... names that express trademarks
should be used for as little else as possible."

This module models both designs so experiment E08 can compare them:

* :class:`EntangledNameSystem` — one namespace where human-meaningful
  (trademark-bearing) names directly resolve to machines. Trademark
  disputes reassign or freeze names, breaking resolution for bystanders.
* :class:`SeparatedNameSystem` — the paper's counterfactual: a
  machine-naming layer of semantics-free identifiers, plus a directory
  layer mapping human names to identifiers. Disputes play out in the
  directory; machine naming (and anything bound to identifiers) is
  untouched.

Both expose the same resolve/attach API so the spillover measurement in
:mod:`tussle.core.spillover` treats them uniformly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from ..errors import TussleError

__all__ = [
    "DisputeOutcome",
    "TrademarkDispute",
    "NameSystem",
    "EntangledNameSystem",
    "SeparatedNameSystem",
]


class DisputeOutcome(Enum):
    """Resolution of a trademark dispute over a name."""

    TRANSFERRED = "transferred"  # name handed to the trademark holder
    FROZEN = "frozen"            # name suspended pending litigation
    DENIED = "denied"            # challenge rejected; holder keeps name


@dataclass
class TrademarkDispute:
    """A recorded dispute and its outcome."""

    name: str
    challenger: str
    original_holder: str
    outcome: DisputeOutcome


class NameSystem:
    """Abstract name system interface.

    ``register(name, holder, machine)`` binds a human-facing name;
    ``resolve(name)`` returns the machine (or ``None`` when broken);
    ``dispute(name, challenger, outcome)`` plays a trademark dispute.
    """

    def __init__(self) -> None:
        self.disputes: List[TrademarkDispute] = []

    def register(self, name: str, holder: str, machine: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def resolve(self, name: str) -> Optional[str]:  # pragma: no cover
        raise NotImplementedError

    def dispute(self, name: str, challenger: str, outcome: DisputeOutcome) -> None:  # pragma: no cover
        raise NotImplementedError

    def machine_bindings_broken(self) -> int:  # pragma: no cover
        """How many machine-level bindings disputes have broken so far."""
        raise NotImplementedError


class EntangledNameSystem(NameSystem):
    """One namespace for trademark AND machine naming (today's DNS).

    Services bind to human names directly (``mail.acme`` etc. are modelled
    as dependents registered via :meth:`add_dependent`). A dispute that
    transfers or freezes a name breaks every dependent binding — tussle
    spillover in action.
    """

    def __init__(self) -> None:
        super().__init__()
        self._names: Dict[str, Tuple[str, str]] = {}  # name -> (holder, machine)
        self._dependents: Dict[str, Set[str]] = {}    # name -> dependent services
        self._broken: Set[str] = set()

    def register(self, name: str, holder: str, machine: str) -> None:
        if name in self._names:
            raise TussleError(f"name {name!r} already registered")
        self._names[name] = (holder, machine)
        self._dependents.setdefault(name, set())

    def add_dependent(self, name: str, service: str) -> None:
        """Register a service that resolves through ``name``."""
        if name not in self._names:
            raise TussleError(f"cannot depend on unregistered name {name!r}")
        self._dependents[name].add(service)

    def resolve(self, name: str) -> Optional[str]:
        if name in self._broken:
            return None
        entry = self._names.get(name)
        return entry[1] if entry else None

    def dispute(self, name: str, challenger: str, outcome: DisputeOutcome) -> None:
        if name not in self._names:
            raise TussleError(f"dispute over unregistered name {name!r}")
        holder, machine = self._names[name]
        self.disputes.append(TrademarkDispute(name, challenger, holder, outcome))
        if outcome is DisputeOutcome.TRANSFERRED:
            # New holder points the name at their own machine; every old
            # dependent now resolves to the wrong place (counted broken).
            self._names[name] = (challenger, f"machine-of-{challenger}")
            self._broken.add(name)
        elif outcome is DisputeOutcome.FROZEN:
            self._broken.add(name)
        # DENIED leaves everything intact.

    def machine_bindings_broken(self) -> int:
        return sum(len(self._dependents[n]) + 1 for n in self._broken)

    def collateral_services(self) -> Set[str]:
        """Services knocked out purely as bystanders to a trademark fight."""
        hit: Set[str] = set()
        for name in self._broken:
            hit |= self._dependents[name]
        return hit


class SeparatedNameSystem(NameSystem):
    """The paper's counterfactual: machine naming decoupled from trademark.

    Machines get stable, semantics-free identifiers; a *directory* maps
    human (trademark-bearing) names to identifiers. Dependent services bind
    to identifiers, so trademark disputes — which only touch the directory —
    cannot break them.
    """

    def __init__(self) -> None:
        super().__init__()
        self._ids = itertools.count(1)
        self._machines: Dict[str, str] = {}        # identifier -> machine
        self._directory: Dict[str, Tuple[str, str]] = {}  # human name -> (holder, identifier)
        self._dependents: Dict[str, Set[str]] = {}  # identifier -> services
        self._frozen_names: Set[str] = set()

    def register(self, name: str, holder: str, machine: str) -> None:
        if name in self._directory:
            raise TussleError(f"name {name!r} already registered")
        identifier = f"id-{next(self._ids)}"
        self._machines[identifier] = machine
        self._directory[name] = (holder, identifier)
        self._dependents.setdefault(identifier, set())

    def identifier_of(self, name: str) -> str:
        try:
            return self._directory[name][1]
        except KeyError:
            raise TussleError(f"unknown name {name!r}") from None

    def add_dependent(self, name: str, service: str) -> None:
        """Dependents bind to the *identifier*, not the human name."""
        identifier = self.identifier_of(name)
        self._dependents[identifier].add(service)

    def resolve(self, name: str) -> Optional[str]:
        """Resolve a human name via the directory (subject to disputes)."""
        if name in self._frozen_names:
            return None
        entry = self._directory.get(name)
        if entry is None:
            return None
        return self._machines.get(entry[1])

    def resolve_identifier(self, identifier: str) -> Optional[str]:
        """Resolve an identifier directly — immune to directory disputes."""
        return self._machines.get(identifier)

    def dispute(self, name: str, challenger: str, outcome: DisputeOutcome) -> None:
        if name not in self._directory:
            raise TussleError(f"dispute over unregistered name {name!r}")
        holder, identifier = self._directory[name]
        self.disputes.append(TrademarkDispute(name, challenger, holder, outcome))
        if outcome is DisputeOutcome.TRANSFERRED:
            new_id = f"id-{next(self._ids)}"
            self._machines[new_id] = f"machine-of-{challenger}"
            self._directory[name] = (challenger, new_id)
            self._dependents.setdefault(new_id, set())
        elif outcome is DisputeOutcome.FROZEN:
            self._frozen_names.add(name)

    def machine_bindings_broken(self) -> int:
        """Disputes never break identifier-level bindings here."""
        return 0

    def collateral_services(self) -> Set[str]:
        return set()
