"""Packet forwarding over a topology, with middleboxes and source routes.

The :class:`ForwardingEngine` binds together a :class:`~tussle.netsim.topology.Network`,
a :class:`~tussle.netsim.engine.Simulator`, per-node forwarding tables and
any middleboxes attached to nodes. It delivers packets hop by hop as
simulator events, so latency, interference and diagnosis are all observable.

Design notes
------------
* Forwarding tables map destination node name -> next hop. Routing
  protocols (:mod:`tussle.routing`) install these tables.
* A packet with a ``source_route`` is forwarded along the explicit path
  when :attr:`ForwardingEngine.honor_source_routes` is True — the paper
  notes "service providers do not like loose source routes" (§V-A-4), so
  engines can be configured to reject them, which experiments exploit.
* Every delivery attempt produces a :class:`DeliveryReceipt`, including
  failures with a diagnostic trace — implementing "failures of transparency
  will occur — design what happens then" (§VI-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..errors import RoutingError
from . import decision
from .engine import Simulator
from .middlebox import Action, Middlebox, TransparencyLedger
from .packets import Packet
from .topology import Network

__all__ = ["DeliveryStatus", "DeliveryReceipt", "ForwardingEngine", "PrefixFib"]

#: Safety bound on path length to catch routing loops (the canonical
#: definition lives with the other shared rules in ``netsim.decision``).
MAX_TTL = decision.MAX_TTL


class DeliveryStatus(Enum):
    """Terminal outcome of a packet's journey."""

    DELIVERED = "delivered"
    DROPPED_BY_MIDDLEBOX = "dropped-by-middlebox"
    NO_ROUTE = "no-route"
    LINK_DOWN = "link-down"
    TTL_EXCEEDED = "ttl-exceeded"
    SOURCE_ROUTE_REFUSED = "source-route-refused"
    REDIRECTED = "redirected"


@dataclass
class DeliveryReceipt:
    """What happened to one packet.

    ``diagnostic`` is the human-readable fault report the paper calls for:
    who interfered, where, and whether the interference was disclosed.
    A silent (non-disclosing) middlebox produces a receipt whose diagnostic
    does *not* name it — only the hop where the packet vanished.
    """

    packet: Packet
    status: DeliveryStatus
    path: List[str] = field(default_factory=list)
    latency: float = 0.0
    delivered_to: Optional[str] = None
    interfering_node: Optional[str] = None
    diagnostic: str = ""

    @property
    def delivered(self) -> bool:
        return self.status in (DeliveryStatus.DELIVERED, DeliveryStatus.REDIRECTED)


class PrefixFib:
    """A longest-prefix forwarding table over node-name prefixes.

    Deterministic under permuted insertion order: duplicate prefixes are
    deduplicated at insert time (last insert wins, like a routing update
    replacing an earlier advertisement), distinct equal-length prefixes
    cannot both match one name, and lookups scan entries in sorted order
    through :func:`tussle.netsim.decision.longest_prefix_match`.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, str] = {}

    def insert(self, prefix: str, next_hop: str) -> None:
        """Add (or replace) the entry for ``prefix``."""
        self._entries[prefix] = next_hop

    def entries(self) -> List[Tuple[str, str]]:
        """The deduplicated ``(prefix, next_hop)`` entries, sorted."""
        return sorted(self._entries.items())

    def lookup(self, name: str) -> Optional[str]:
        """The next hop for the longest prefix of ``name``, or ``None``."""
        return decision.longest_prefix_match(self.entries(), name)

    def __len__(self) -> int:
        return len(self._entries)


class ForwardingEngine:
    """Hop-by-hop packet delivery with middlebox processing.

    Parameters
    ----------
    network:
        The topology to forward over.
    sim:
        Optional simulator; if omitted, delivery is computed synchronously
        (zero simulated time elapses, latency is still accounted).
    honor_source_routes:
        Whether routers follow packets' explicit source routes. Providers
        in E04 configure this off to model BGP-era provider control.
    """

    def __init__(
        self,
        network: Network,
        sim: Optional[Simulator] = None,
        honor_source_routes: bool = True,
    ):
        self.network = network
        self.sim = sim
        self.honor_source_routes = honor_source_routes
        self.tables: Dict[str, Dict[str, str]] = {}
        self.prefix_tables: Dict[str, PrefixFib] = {}
        self.middleboxes: Dict[str, List[Middlebox]] = {}
        self.ledger = TransparencyLedger()
        self.receipts: List[DeliveryReceipt] = []

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def install_table(self, node: str, table: Dict[str, str]) -> None:
        """Install (replacing) the forwarding table of ``node``."""
        self.network.node(node)
        for dst, nxt in table.items():
            if not self.network.has_node(nxt):
                raise RoutingError(f"table at {node!r} names unknown next hop {nxt!r}")
        self.tables[node] = dict(table)

    def install_tables(self, tables: Dict[str, Dict[str, str]]) -> None:
        for node, table in tables.items():
            self.install_table(node, table)

    def install_prefix_table(self, node: str, fib: PrefixFib) -> None:
        """Install a longest-prefix FIB consulted on exact-table misses."""
        self.network.node(node)
        for prefix, nxt in fib.entries():
            if not self.network.has_node(nxt):
                raise RoutingError(
                    f"prefix FIB at {node!r} names unknown next hop {nxt!r}")
        self.prefix_tables[node] = fib

    def attach_middlebox(self, node: str, box: Middlebox) -> None:
        """Attach a middlebox to process every packet transiting ``node``."""
        self.network.node(node)
        self.middleboxes.setdefault(node, []).append(box)

    def detach_middleboxes(self, node: str) -> None:
        self.middleboxes.pop(node, None)

    def install_shortest_path_tables(self) -> None:
        """Populate every node's table with minimum-hop next hops (BFS).

        Convenience for experiments that do not exercise routing policy.
        """
        names = self.network.node_names()
        for src in names:
            table: Dict[str, str] = {}
            for dst in names:
                if dst == src:
                    continue
                path = self.network.shortest_path(src, dst)
                if path and len(path) > 1:
                    table[dst] = path[1]
            self.tables[src] = table

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, packet: Packet, from_node: Optional[str] = None) -> DeliveryReceipt:
        """Deliver ``packet`` from its source (or ``from_node``) to its dest.

        Synchronous: the full journey is resolved immediately; the receipt
        carries accumulated path latency. When a simulator is attached the
        packet's ``created_at`` is stamped with the current simulated time.
        """
        start = from_node or packet.header.src
        if self.sim is not None:
            packet.created_at = self.sim.now
        receipt = self._forward(packet, start)
        self.receipts.append(receipt)
        return receipt

    def _forward(self, packet: Packet, start: str) -> DeliveryReceipt:
        current = start
        path = [current]
        latency = 0.0
        packet.record_hop(current)
        route = list(packet.source_route) if packet.source_route else None
        route_index = 0
        if route:
            # Source route must begin at (or after) the start node.
            route_index = decision.route_start_index(route[0], start)

        for _ in range(MAX_TTL):
            verdict_result = self._apply_middleboxes(packet, current)
            if verdict_result is not None:
                action, new_packet, new_destination, box_name, disclosed = verdict_result
                if action is Action.DROP:
                    diag = self._diagnose_drop(path, box_name, disclosed)
                    return DeliveryReceipt(
                        packet=packet,
                        status=DeliveryStatus.DROPPED_BY_MIDDLEBOX,
                        path=path,
                        latency=latency,
                        interfering_node=current,
                        diagnostic=diag,
                    )
                if action is Action.REDIRECT and new_destination is not None:
                    if new_destination == current:
                        # Served locally (e.g. cache hit).
                        return DeliveryReceipt(
                            packet=new_packet or packet,
                            status=DeliveryStatus.REDIRECTED,
                            path=path,
                            latency=latency,
                            delivered_to=current,
                            interfering_node=current,
                            diagnostic=f"served at {current}" if disclosed else "",
                        )
                    packet = self._retarget(new_packet or packet, new_destination)
                if action is Action.MODIFY and new_packet is not None:
                    packet = new_packet

            destination = packet.header.dst
            if decision.at_destination(current, destination):
                return DeliveryReceipt(
                    packet=packet,
                    status=DeliveryStatus.DELIVERED,
                    path=path,
                    latency=latency,
                    delivered_to=current,
                )

            next_hop = self._next_hop(packet, current, route, route_index)
            if next_hop is None:
                return DeliveryReceipt(
                    packet=packet,
                    status=DeliveryStatus.NO_ROUTE,
                    path=path,
                    latency=latency,
                    diagnostic=f"no route to {destination!r} at {current!r}",
                )
            if next_hop == "<refused>":
                return DeliveryReceipt(
                    packet=packet,
                    status=DeliveryStatus.SOURCE_ROUTE_REFUSED,
                    path=path,
                    latency=latency,
                    interfering_node=current,
                    diagnostic=f"{current!r} refuses source-routed traffic",
                )
            exists = self.network.has_link(current, next_hop)
            link = self.network.link(current, next_hop) if exists else None
            if not decision.link_usable(
                exists,
                link.up if link is not None else False,
                link.capacity if link is not None else 0.0,
            ):
                if link is not None and link.up:
                    diag = f"link {current!r}-{next_hop!r} has no capacity"
                else:
                    diag = f"link {current!r}-{next_hop!r} is down"
                return DeliveryReceipt(
                    packet=packet,
                    status=DeliveryStatus.LINK_DOWN,
                    path=path,
                    latency=latency,
                    diagnostic=diag,
                )
            latency += self.network.link(current, next_hop).latency
            current = next_hop
            if route is not None and route_index < len(route) and route[route_index] == current:
                route_index += 1
            path.append(current)
            packet.record_hop(current)

        return DeliveryReceipt(
            packet=packet,
            status=DeliveryStatus.TTL_EXCEEDED,
            path=path,
            latency=latency,
            diagnostic=f"TTL exceeded after {MAX_TTL} hops (routing loop?)",
        )

    def _apply_middleboxes(
        self, packet: Packet, node: str
    ) -> Optional[Tuple[Action, Optional[Packet], Optional[str], str, bool]]:
        """Run every middlebox at ``node``; first non-FORWARD verdict wins."""
        boxes = self.middleboxes.get(node)
        if not boxes:
            return None
        current_packet = packet
        for box in boxes:
            verdict = box.process(current_packet)
            self.ledger.record(box.name, verdict.action, verdict.disclosed)
            if verdict.action is Action.FORWARD:
                current_packet = verdict.packet or current_packet
                continue
            return (verdict.action, verdict.packet, verdict.new_destination,
                    box.name, verdict.disclosed)
        if current_packet is not packet:
            return (Action.MODIFY, current_packet, None, boxes[-1].name, False)
        return None

    def _retarget(self, packet: Packet, new_destination: str) -> Packet:
        from dataclasses import replace
        new_header = replace(packet.header, dst=new_destination)
        packet.header = new_header
        packet.source_route = None
        return packet

    def _next_hop(
        self,
        packet: Packet,
        current: str,
        route: Optional[List[str]],
        route_index: int,
    ) -> Optional[str]:
        route_hop = None
        if route is not None and route_index < len(route):
            route_hop = route[route_index]
        table_hop = self.tables.get(current, {}).get(packet.header.dst)
        if table_hop is None:
            fib = self.prefix_tables.get(current)
            if fib is not None:
                table_hop = fib.lookup(packet.header.dst)
        hop, refused = decision.next_hop_choice(
            table_hop, route_hop, self.honor_source_routes)
        if refused:
            return "<refused>"
        return hop

    def _diagnose_drop(self, path: List[str], box_name: str, disclosed: bool) -> str:
        """Produce the fault report an end user would see.

        Disclosed interference names the device; silent interference only
        reveals where the trace stops — "some devices that impair
        transparency may intentionally give no error information" (§VI-A).
        """
        if disclosed:
            return f"blocked by {box_name!r} at hop {len(path) - 1} ({path[-1]!r})"
        return f"trace stops after {path[-1]!r}; cause unknown"

    # ------------------------------------------------------------------
    # Aggregate measurements
    # ------------------------------------------------------------------
    def delivery_rate(self) -> float:
        """Fraction of sent packets that reached a destination."""
        if not self.receipts:
            return 0.0
        return sum(1 for r in self.receipts if r.delivered) / len(self.receipts)

    def reset_stats(self) -> None:
        self.receipts.clear()
        self.ledger = TransparencyLedger()
