"""Packets, headers, encryption and tunnels.

The packet model is deliberately richer than a toy simulator's, because the
paper's tussles hinge on *what intermediate nodes can see*:

* "Peeking is irresistible. If there is information visible in the packet,
  there is no way to keep an intermediate node from looking at it" (§VI-A).
  Packets therefore distinguish visible headers from payloads, and payloads
  can be **encrypted** so middleboxes cannot classify on them.
* Users "route and tunnel around" firewalls and value pricing (§I, §V-A-2).
  Packets support **encapsulation**: a tunnelled packet shows only the
  tunnel's outer header (e.g. port 443) to observers on the path.
* IP QoS uses "explicit ToS bits to select QoS, rather than binding this
  decision to another property such as a well-known port number" (§IV-A) —
  the header carries an explicit ``tos`` field for exactly that reason.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional

from ..errors import SimulationError

__all__ = ["Protocol", "Header", "Packet", "WELL_KNOWN_PORTS", "port_for_app"]

_packet_ids = itertools.count(1)

#: Well-known ports for the applications the paper discusses.
WELL_KNOWN_PORTS: Dict[str, int] = {
    "http": 80,
    "https": 443,
    "smtp": 25,
    "pop": 110,
    "dns": 53,
    "voip": 5060,
    "p2p": 6881,
    "vpn": 1194,
    "nntp": 119,
    "game-server": 27015,
    "web-server": 8080,
}


def port_for_app(application: str) -> int:
    """Map an application name to its well-known port (default 40000+hash)."""
    if application in WELL_KNOWN_PORTS:
        return WELL_KNOWN_PORTS[application]
    return 40000 + (hash(application) % 10000)


class Protocol(Enum):
    """Transport protocol carried by a packet."""

    TCP = "tcp"
    UDP = "udp"
    ICMP = "icmp"


@dataclass(frozen=True)
class Header:
    """The always-visible portion of a packet.

    Middleboxes may inspect every field here. ``tos`` is the explicit
    type-of-service request; ``application`` is the *true* application, which
    is only observable when the payload is not encrypted (see
    :meth:`Packet.observable_application`).
    """

    src: str
    dst: str
    src_port: int = 0
    dst_port: int = 0
    protocol: Protocol = Protocol.TCP
    tos: int = 0

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise SimulationError(f"port {port} out of range")
        if not 0 <= self.tos <= 255:
            raise SimulationError(f"tos {self.tos} out of range")


@dataclass
class Packet:
    """A simulated packet.

    Attributes
    ----------
    header:
        Visible header fields.
    application:
        The application that generated the packet (semantic ground truth,
        used to evaluate classification accuracy of middleboxes).
    encrypted:
        When True, payload-derived information (including the true
        application) is opaque to observers.
    source_route:
        Optional explicit node path requested by the sender (the paper's
        provider-level source routing, §V-A-4). Forwarders honouring source
        routes follow it; others ignore or reject it.
    covert_cover:
        When set, the payload is steganographically hidden inside traffic
        of the named cover application — "the hiding of information
        inside some other form of data. It is a signal of a coming tussle
        that this topic is receiving attention right now" (§VI-A, fn 17).
        Observers classify the packet as the cover application and cannot
        tell it is covert (unlike encryption, which is itself visible).
    encapsulation:
        Stack of outer headers, innermost last. A tunnelled packet exposes
        only ``encapsulation[0]`` on the wire.
    size:
        Bytes, for capacity accounting.
    """

    header: Header
    application: str = "generic"
    payload: object = None
    encrypted: bool = False
    source_route: Optional[List[str]] = None
    covert_cover: Optional[str] = None
    encapsulation: List[Header] = field(default_factory=list)
    size: int = 1000
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    hops: List[str] = field(default_factory=list)
    created_at: float = 0.0

    # ------------------------------------------------------------------
    # Observation semantics (what can a middlebox see?)
    # ------------------------------------------------------------------
    @property
    def wire_header(self) -> Header:
        """The outermost header — the only one visible on the wire."""
        if self.encapsulation:
            return self.encapsulation[0]
        return self.header

    def observable_application(self) -> Optional[str]:
        """The application an on-path observer can infer, or ``None``.

        Observers classify by the wire header's port. If the packet is
        tunnelled, they see the *tunnel's* application; a covert packet
        classifies as its cover application; if the payload is encrypted
        and the port is unregistered, they learn nothing.
        """
        if self.covert_cover is not None:
            return self.covert_cover
        wire = self.wire_header
        for app, port in WELL_KNOWN_PORTS.items():
            if wire.dst_port == port:
                return app
        if self.encapsulation or self.encrypted:
            return None
        return self.application

    def observable_tos(self) -> int:
        """The ToS bits visible on the wire (outer header when tunnelled)."""
        return self.wire_header.tos

    # ------------------------------------------------------------------
    # Tunnels
    # ------------------------------------------------------------------
    def encapsulate(self, outer: Header) -> "Packet":
        """Return a copy wrapped in an additional outer header.

        Innermost original header is preserved; observers now see ``outer``.
        """
        pkt = replace(self)
        pkt.encapsulation = [outer] + list(self.encapsulation)
        pkt.hops = list(self.hops)
        return pkt

    def decapsulate(self) -> "Packet":
        """Strip the outermost tunnel header."""
        if not self.encapsulation:
            raise SimulationError("packet is not encapsulated")
        pkt = replace(self)
        pkt.encapsulation = list(self.encapsulation)[1:]
        pkt.hops = list(self.hops)
        return pkt

    @property
    def tunnelled(self) -> bool:
        return bool(self.encapsulation)

    def hide_in(self, cover_application: str) -> "Packet":
        """Return a copy steganographically hidden inside cover traffic.

        The copy's wire header carries the cover application's well-known
        port; observers classify it as the cover and — crucially, unlike
        encryption — see nothing marking it as protected at all, so even
        a block-everything-encrypted policy passes it.
        """
        outer = Header(
            src=self.header.src,
            dst=self.header.dst,
            src_port=self.header.src_port,
            dst_port=port_for_app(cover_application),
            protocol=self.header.protocol,
            tos=self.header.tos,
        )
        hidden = replace(self, header=outer)
        hidden.covert_cover = cover_application
        hidden.encrypted = False  # nothing visibly protected
        hidden.hops = list(self.hops)
        hidden.encapsulation = list(self.encapsulation)
        return hidden

    def tunnel_to(self, gateway: str, application: str = "vpn",
                  encrypt: bool = True) -> "Packet":
        """Convenience: wrap this packet in a tunnel toward ``gateway``.

        This is the counter-move the paper describes consumers making
        against value pricing and firewalls: "tunneling to disguise the
        port numbers being used" (§V-A-2).
        """
        outer = Header(
            src=self.header.src,
            dst=gateway,
            src_port=port_for_app(application),
            dst_port=port_for_app(application),
            protocol=self.header.protocol,
            tos=self.header.tos,
        )
        pkt = self.encapsulate(outer)
        if encrypt:
            pkt.encrypted = True
        return pkt

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def record_hop(self, node: str) -> None:
        self.hops.append(node)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        wire = self.wire_header
        extras = []
        if self.encrypted:
            extras.append("enc")
        if self.tunnelled:
            extras.append(f"tun×{len(self.encapsulation)}")
        suffix = (" " + ",".join(extras)) if extras else ""
        return (f"<Packet#{self.packet_id} {wire.src}->{wire.dst}"
                f":{wire.dst_port} app={self.application}{suffix}>")


def make_packet(
    src: str,
    dst: str,
    application: str = "generic",
    *,
    tos: int = 0,
    protocol: Protocol = Protocol.TCP,
    encrypted: bool = False,
    size: int = 1000,
    source_route: Optional[List[str]] = None,
) -> Packet:
    """Build a packet with the application's well-known destination port."""
    header = Header(
        src=src,
        dst=dst,
        src_port=40000 + (next(_packet_ids) % 20000),
        dst_port=port_for_app(application),
        protocol=protocol,
        tos=tos,
    )
    return Packet(
        header=header,
        application=application,
        encrypted=encrypted,
        size=size,
        source_route=list(source_route) if source_route else None,
    )


__all__.append("make_packet")
