"""Lightweight metric collection shared by every substrate.

Provides counters, time series, and summary statistics with no external
dependencies beyond the standard library. Experiments use these to build
the rows their benchmarks print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import MetricsError

__all__ = ["Counter", "TimeSeries", "Summary", "summarize", "MetricRegistry"]


class Counter:
    """A named monotonically-increasing counter."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricsError("counters only go up; use a TimeSeries for signed data")
        self.value += amount

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name}={self.value})"


class TimeSeries:
    """An append-only series of (time, value) samples."""

    def __init__(self, name: str):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise MetricsError(f"time went backwards in series {self.name!r}")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def delta(self) -> float:
        """Last value minus first value (0 when fewer than 2 samples)."""
        if len(self.values) < 2:
            return 0.0
        return self.values[-1] - self.values[0]


@dataclass
class Summary:
    """Summary statistics of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    median: float

    def as_row(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Compute :class:`Summary` statistics of a non-empty sample."""
    data = [float(v) for v in values]
    if not data:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    n = len(data)
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / n
    ordered = sorted(data)
    mid = n // 2
    median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2
    return Summary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        median=median,
    )


class MetricRegistry:
    """A namespace of counters and series for one simulation run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def snapshot(self) -> Dict[str, float]:
        """Flat mapping of every counter value and series-last value."""
        result: Dict[str, float] = {}
        for name, counter in self._counters.items():
            result[name] = float(counter.value)
        for name, series in self._series.items():
            last = series.last()
            if last is not None:
                result[name] = last
        return result
