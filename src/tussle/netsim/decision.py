"""The pure per-packet / per-link decision rules shared by every
forwarding backend.

:class:`~tussle.netsim.forwarding.ForwardingEngine` (the scalar
reference) and :class:`~tussle.scale.vforwarding.VectorForwardingEngine`
(the NumPy backend) must make *identical* choices — the netsim parity
harness in :mod:`tussle.scale.nparity` asserts their round records match
byte for byte.  As with :mod:`tussle.econ.decision`, that is only
tractable if every decision lives in one place, as pure functions of
plain values with a documented operation order.  The vectorized kernels
in :mod:`tussle.scale.nkernels` mirror these functions element-wise; any
change here must be reflected there (and the parity gate will catch a
mismatch).

Contract notes (load-bearing for byte-parity):

* A hop is attempted only after the delivered check: a packet already at
  its destination never consumes a forwarding-table lookup, so
  :func:`at_destination` is evaluated before :func:`next_hop_choice`
  every round.
* A link is usable iff it exists, is operationally up, *and* has
  positive capacity — a zero-capacity link is indistinguishable from a
  down link to a packet (:func:`link_usable`).  Self-loops never exist
  (the topology layer rejects them), so a table or source route naming
  the current node resolves to link-down, not delivery.
* Source routes take precedence over tables while the route has hops
  left; an engine configured not to honor them refuses rather than
  silently falling back to its table (:func:`next_hop_choice`).
* The event calendar breaks ties by ``(time, priority, seq)`` — explicit
  priority first, then insertion order (FIFO) — via :func:`event_key`,
  so runs are deterministic under any heap implementation.
* Longest-prefix FIB lookup is insertion-order independent: two distinct
  equal-length prefixes cannot both match one name, and duplicate
  prefixes are deduplicated (last insert wins) before lookup, so
  :func:`longest_prefix_match` sees each prefix once.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

__all__ = [
    "MAX_TTL",
    "at_destination",
    "event_key",
    "link_usable",
    "longest_prefix_match",
    "next_hop_choice",
    "port_prioritized",
    "priority_charge",
    "route_start_index",
    "tos_prioritized",
]

#: Safety bound on path length to catch routing loops.  A packet makes at
#: most ``MAX_TTL`` forwarding decisions; delivery is therefore only
#: possible within ``MAX_TTL - 1`` hops of the source.
MAX_TTL = 64


def at_destination(current: str, destination: str) -> bool:
    """Has the packet arrived?  Checked before any hop is attempted."""
    return current == destination


def route_start_index(route_first: Optional[str], start: str) -> int:
    """Where forwarding starts consuming a source route.

    A route that names the start node begins at index 1 (the start hop is
    already satisfied); otherwise the whole route remains to be walked.
    """
    return 1 if route_first == start else 0


def next_hop_choice(
    table_hop: Optional[str],
    route_hop: Optional[str],
    honor_source_routes: bool,
) -> Tuple[Optional[str], bool]:
    """Pick the next hop: ``(hop, refused)``.

    An unexhausted source route (``route_hop`` is not None) wins over the
    forwarding table; a forwarder configured against source routes
    refuses such packets outright ("service providers do not like loose
    source routes", §V-A-4) rather than falling back to its table.  With
    no route in play the table answers, and ``(None, False)`` means no
    route exists at all.
    """
    if route_hop is not None:
        if not honor_source_routes:
            return None, True
        return route_hop, False
    return table_hop, False


def link_usable(exists: bool, up: bool, capacity: float) -> bool:
    """May a packet cross this link right now?

    Nonexistent, administratively down, and zero-capacity links are all
    equally unusable — a link that can carry no bits is down as far as
    any packet is concerned.
    """
    return exists and up and capacity > 0


def longest_prefix_match(
    entries: Iterable[Tuple[str, str]],
    name: str,
) -> Optional[str]:
    """Longest-prefix winner over ``(prefix, next_hop)`` entries.

    Strictly longer matches displace shorter ones; an equal-length match
    replaces an earlier one (last wins), which only matters when the
    caller feeds duplicate prefixes — deduplicated tables make the result
    independent of entry order, since distinct equal-length prefixes
    cannot both match the same name.
    """
    best_hop: Optional[str] = None
    best_length = -1
    for prefix, hop in entries:
        if name.startswith(prefix) and len(prefix) >= best_length:
            best_hop = hop
            best_length = len(prefix)
    return best_hop


def tos_prioritized(tos: int, threshold: int) -> bool:
    """The paper's QoS binding: priority from explicit ToS bits alone."""
    return tos >= threshold


def port_prioritized(
    observed_application: Optional[str],
    priority_applications: Iterable[str],
) -> bool:
    """The entangled QoS binding: priority from the observable app."""
    return (observed_application is not None
            and observed_application in priority_applications)


def priority_charge(prioritized: bool, bill_per_packet: float) -> float:
    """Revenue one packet generates under per-packet priority billing."""
    if prioritized and bill_per_packet > 0:
        return bill_per_packet
    return 0.0


def event_key(time: float, priority: int, seq: int) -> Tuple[float, int, int]:
    """Calendar-queue ordering: time, then priority, then FIFO seq."""
    return (time, priority, seq)
