"""Network topology: nodes, links, and autonomous systems.

The topology layer models the Internet at two granularities used throughout
the paper's tussle spaces:

* **node level** — hosts, routers and middleboxes joined by links with
  latency/capacity, used by the packet forwarding substrate; and
* **AS level** — autonomous systems joined by *business relationships*
  (customer–provider or peer–peer, after Gao–Rexford), used by the
  inter-domain routing and economics substrates.

Both levels live in one :class:`Network` object so experiments can relate
business structure to forwarding behaviour (e.g. E04: who controls routes).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..errors import TopologyError

__all__ = [
    "NodeKind",
    "Relationship",
    "Node",
    "Link",
    "ASNode",
    "Network",
    "line_topology",
    "star_topology",
    "dumbbell_topology",
    "random_as_graph",
    "multihomed_topology",
]


class NodeKind(Enum):
    """Role a node plays in the network."""

    HOST = "host"
    ROUTER = "router"
    MIDDLEBOX = "middlebox"
    SERVER = "server"


class Relationship(Enum):
    """Business relationship between two ASes, after Gao–Rexford.

    ``CUSTOMER_PROVIDER`` is directional: the *first* AS named in
    :meth:`Network.add_as_relationship` is the customer.
    """

    CUSTOMER_PROVIDER = "customer-provider"
    PEER_PEER = "peer-peer"
    SIBLING = "sibling"


@dataclass
class Node:
    """A network element (host, router, server or middlebox).

    Attributes
    ----------
    name:
        Globally unique identifier within the :class:`Network`.
    kind:
        Functional role; forwarding treats middleboxes specially.
    asn:
        Autonomous-system number this node belongs to, or ``None`` for
        AS-less test topologies.
    """

    name: str
    kind: NodeKind = NodeKind.HOST
    asn: Optional[int] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.name == self.name


@dataclass
class Link:
    """A bidirectional link between two nodes.

    Attributes
    ----------
    latency:
        One-way propagation delay in seconds.
    capacity:
        Bits per second; ``float('inf')`` means uncongested.
    cost:
        Administrative routing metric (used by link-state routing).
    up:
        Operational state; failed links do not forward.
    """

    a: str
    b: str
    latency: float = 0.01
    capacity: float = float("inf")
    cost: float = 1.0
    up: bool = True
    metadata: Dict[str, object] = field(default_factory=dict)

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def other(self, name: str) -> str:
        """The endpoint that is not ``name``."""
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise TopologyError(f"node {name!r} is not an endpoint of {self.a}-{self.b}")

    def key(self) -> Tuple[str, str]:
        """Canonical unordered key for the link."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


@dataclass
class ASNode:
    """An autonomous system in the business-level graph."""

    asn: int
    name: str = ""
    tier: int = 3
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"AS{self.asn}"


class Network:
    """A mutable topology holding nodes, links, ASes and AS relationships."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._adj: Dict[str, Set[str]] = {}
        self._ases: Dict[int, ASNode] = {}
        # provider -> customers, and symmetrical peer sets
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}
        self._siblings: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Node-level API
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        kind: NodeKind = NodeKind.HOST,
        asn: Optional[int] = None,
        **metadata: object,
    ) -> Node:
        """Create and register a node; names must be unique."""
        if name in self._nodes:
            raise TopologyError(f"duplicate node name {name!r}")
        if asn is not None and asn not in self._ases:
            self.add_as(asn)
        node = Node(name=name, kind=kind, asn=asn, metadata=dict(metadata))
        self._nodes[name] = node
        self._adj[name] = set()
        return node

    def node(self, name: str) -> Node:
        """Look a node up by name, raising :class:`TopologyError` if absent."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def remove_node(self, name: str) -> None:
        """Remove a node and every link incident to it."""
        self.node(name)
        for neighbor in list(self._adj[name]):
            self.remove_link(name, neighbor)
        del self._adj[name]
        del self._nodes[name]

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    def node_names(self) -> List[str]:
        return list(self._nodes)

    def nodes_of_kind(self, kind: NodeKind) -> List[Node]:
        return [n for n in self._nodes.values() if n.kind is kind]

    def nodes_in_as(self, asn: int) -> List[Node]:
        return [n for n in self._nodes.values() if n.asn == asn]

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def add_link(
        self,
        a: str,
        b: str,
        latency: float = 0.01,
        capacity: float = float("inf"),
        cost: float = 1.0,
        **metadata: object,
    ) -> Link:
        """Create a bidirectional link between two existing nodes."""
        if a == b:
            raise TopologyError(f"self-loop on {a!r} not allowed")
        self.node(a)
        self.node(b)
        link = Link(a=a, b=b, latency=latency, capacity=capacity, cost=cost,
                    metadata=dict(metadata))
        key = link.key()
        if key in self._links:
            raise TopologyError(f"duplicate link {a!r}-{b!r}")
        self._links[key] = link
        self._adj[a].add(b)
        self._adj[b].add(a)
        return link

    def link(self, a: str, b: str) -> Link:
        key = (a, b) if a <= b else (b, a)
        try:
            return self._links[key]
        except KeyError:
            raise TopologyError(f"no link {a!r}-{b!r}") from None

    def has_link(self, a: str, b: str) -> bool:
        key = (a, b) if a <= b else (b, a)
        return key in self._links

    def remove_link(self, a: str, b: str) -> None:
        link = self.link(a, b)
        del self._links[link.key()]
        self._adj[a].discard(b)
        self._adj[b].discard(a)

    @property
    def links(self) -> List[Link]:
        return list(self._links.values())

    def neighbors(self, name: str, only_up: bool = True) -> List[str]:
        """Neighbors of a node, optionally restricted to operational links."""
        self.node(name)
        result = []
        for other in sorted(self._adj[name]):
            if only_up and not self.link(name, other).up:
                continue
            result.append(other)
        return result

    def fail_link(self, a: str, b: str) -> None:
        self.link(a, b).up = False

    def restore_link(self, a: str, b: str) -> None:
        self.link(a, b).up = True

    # ------------------------------------------------------------------
    # AS-level API
    # ------------------------------------------------------------------
    def add_as(self, asn: int, name: str = "", tier: int = 3, **metadata: object) -> ASNode:
        if asn in self._ases:
            raise TopologyError(f"duplicate AS {asn}")
        node = ASNode(asn=asn, name=name, tier=tier, metadata=dict(metadata))
        self._ases[asn] = node
        self._providers[asn] = set()
        self._customers[asn] = set()
        self._peers[asn] = set()
        self._siblings[asn] = set()
        return node

    def autonomous_system(self, asn: int) -> ASNode:
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown AS {asn}") from None

    def has_as(self, asn: int) -> bool:
        return asn in self._ases

    @property
    def ases(self) -> List[ASNode]:
        return [self._ases[k] for k in sorted(self._ases)]

    def add_as_relationship(self, a: int, b: int, rel: Relationship) -> None:
        """Record a business relationship.

        For ``CUSTOMER_PROVIDER``, ``a`` is the customer and ``b`` the
        provider.
        """
        self.autonomous_system(a)
        self.autonomous_system(b)
        if a == b:
            raise TopologyError(f"AS {a} cannot have a relationship with itself")
        if rel is Relationship.CUSTOMER_PROVIDER:
            self._providers[a].add(b)
            self._customers[b].add(a)
        elif rel is Relationship.PEER_PEER:
            self._peers[a].add(b)
            self._peers[b].add(a)
        else:
            self._siblings[a].add(b)
            self._siblings[b].add(a)

    def remove_as_relationship(self, a: int, b: int) -> Relationship:
        """Remove the business relationship between two ASes.

        Returns the relationship that was removed (as seen from ``a``;
        for ``CUSTOMER_PROVIDER`` either ordering of the arguments is
        accepted).  Raises :class:`TopologyError` if the ASes are not
        related — depeering a link that does not exist is a caller bug,
        not a no-op.
        """
        rel = self.relationship(a, b)
        if rel is None:
            raise TopologyError(f"ASes {a} and {b} have no relationship")
        if rel is Relationship.CUSTOMER_PROVIDER:
            if b in self._providers[a]:
                self._providers[a].discard(b)
                self._customers[b].discard(a)
            else:
                self._providers[b].discard(a)
                self._customers[a].discard(b)
        elif rel is Relationship.PEER_PEER:
            self._peers[a].discard(b)
            self._peers[b].discard(a)
        else:
            self._siblings[a].discard(b)
            self._siblings[b].discard(a)
        return rel

    def providers_of(self, asn: int) -> Set[int]:
        self.autonomous_system(asn)
        return set(self._providers[asn])

    def customers_of(self, asn: int) -> Set[int]:
        self.autonomous_system(asn)
        return set(self._customers[asn])

    def peers_of(self, asn: int) -> Set[int]:
        self.autonomous_system(asn)
        return set(self._peers[asn])

    def siblings_of(self, asn: int) -> Set[int]:
        self.autonomous_system(asn)
        return set(self._siblings[asn])

    def as_neighbors(self, asn: int) -> Set[int]:
        """All ASes adjacent in the business graph."""
        return (
            self.providers_of(asn)
            | self.customers_of(asn)
            | self.peers_of(asn)
            | self.siblings_of(asn)
        )

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        """The relationship from ``a``'s point of view toward ``b``."""
        if b in self._providers.get(a, ()):  # a is customer of b
            return Relationship.CUSTOMER_PROVIDER
        if a in self._providers.get(b, ()):  # a is provider of b
            return Relationship.CUSTOMER_PROVIDER
        if b in self._peers.get(a, ()):
            return Relationship.PEER_PEER
        if b in self._siblings.get(a, ()):
            return Relationship.SIBLING
        return None

    def is_provider_of(self, provider: int, customer: int) -> bool:
        return customer in self._customers.get(provider, ())

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def connected(self, a: str, b: str) -> bool:
        """Is there any operational path between two nodes?"""
        self.node(a)
        self.node(b)
        seen = {a}
        frontier = [a]
        while frontier:
            current = frontier.pop()
            if current == b:
                return True
            for nxt in self.neighbors(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def shortest_path(self, a: str, b: str) -> Optional[List[str]]:
        """Minimum-hop operational path (BFS), or ``None`` if disconnected."""
        self.node(a)
        self.node(b)
        if a == b:
            return [a]
        prev: Dict[str, str] = {}
        seen = {a}
        frontier = [a]
        while frontier:
            nxt_frontier: List[str] = []
            for current in frontier:
                for nbr in self.neighbors(current):
                    if nbr in seen:
                        continue
                    seen.add(nbr)
                    prev[nbr] = current
                    if nbr == b:
                        path = [b]
                        while path[-1] != a:
                            path.append(prev[path[-1]])
                        path.reverse()
                        return path
                    nxt_frontier.append(nbr)
            frontier = nxt_frontier
        return None

    def path_latency(self, path: Iterable[str]) -> float:
        """Sum of link latencies along a node path."""
        total = 0.0
        hops = list(path)
        for a, b in zip(hops, hops[1:]):
            total += self.link(a, b).latency
        return total


# ----------------------------------------------------------------------
# Topology builders
# ----------------------------------------------------------------------
def line_topology(n: int, prefix: str = "n", latency: float = 0.01) -> Network:
    """``n`` nodes in a line: n0 - n1 - ... - n(n-1)."""
    if n < 1:
        raise TopologyError("line topology needs at least one node")
    net = Network()
    for i in range(n):
        net.add_node(f"{prefix}{i}", kind=NodeKind.ROUTER if 0 < i < n - 1 else NodeKind.HOST)
    for i in range(n - 1):
        net.add_link(f"{prefix}{i}", f"{prefix}{i+1}", latency=latency)
    return net


def star_topology(n_leaves: int, hub: str = "hub", latency: float = 0.01) -> Network:
    """A hub router with ``n_leaves`` host spokes."""
    if n_leaves < 1:
        raise TopologyError("star topology needs at least one leaf")
    net = Network()
    net.add_node(hub, kind=NodeKind.ROUTER)
    for i in range(n_leaves):
        leaf = f"leaf{i}"
        net.add_node(leaf, kind=NodeKind.HOST)
        net.add_link(hub, leaf, latency=latency)
    return net


def dumbbell_topology(
    n_left: int, n_right: int, bottleneck_capacity: float = 1e6, latency: float = 0.01
) -> Network:
    """Classic dumbbell: two access routers joined by a bottleneck link."""
    net = Network()
    net.add_node("L", kind=NodeKind.ROUTER)
    net.add_node("R", kind=NodeKind.ROUTER)
    net.add_link("L", "R", latency=latency, capacity=bottleneck_capacity)
    for i in range(n_left):
        name = f"src{i}"
        net.add_node(name, kind=NodeKind.HOST)
        net.add_link(name, "L", latency=latency)
    for i in range(n_right):
        name = f"dst{i}"
        net.add_node(name, kind=NodeKind.HOST)
        net.add_link(name, "R", latency=latency)
    return net


def random_as_graph(
    n_tier1: int = 3,
    n_tier2: int = 6,
    n_tier3: int = 12,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> Network:
    """A hierarchical AS-level graph with Gao–Rexford relationships.

    Tier-1 ASes form a full peer mesh; each tier-2 AS buys transit from one
    or two tier-1s and may peer with another tier-2; each tier-3 (stub) AS
    buys transit from one or two tier-2s (multihoming).  Wiring randomness
    comes from ``rng`` when provided, else from the explicit ``seed``.
    """
    if rng is None:
        rng = random.Random(seed)
    if n_tier1 < 1:
        raise TopologyError("need at least one tier-1 AS")
    net = Network()
    asn = itertools.count(1)
    tier1 = [next(asn) for _ in range(n_tier1)]
    tier2 = [next(asn) for _ in range(n_tier2)]
    tier3 = [next(asn) for _ in range(n_tier3)]
    for a in tier1:
        net.add_as(a, tier=1)
    for a in tier2:
        net.add_as(a, tier=2)
    for a in tier3:
        net.add_as(a, tier=3)
    # Tier-1 full mesh of peering.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            net.add_as_relationship(a, b, Relationship.PEER_PEER)
    # Tier-2 transit and occasional peering.
    for a in tier2:
        n_providers = 1 + (rng.random() < 0.5)
        for p in rng.sample(tier1, min(n_providers, len(tier1))):
            net.add_as_relationship(a, p, Relationship.CUSTOMER_PROVIDER)
    for i, a in enumerate(tier2):
        for b in tier2[i + 1:]:
            if rng.random() < 0.25:
                net.add_as_relationship(a, b, Relationship.PEER_PEER)
    # Stubs multihome to tier-2.
    for a in tier3:
        n_providers = 1 + (rng.random() < 0.4)
        for p in rng.sample(tier2, min(n_providers, len(tier2))):
            net.add_as_relationship(a, p, Relationship.CUSTOMER_PROVIDER)
    return net


def multihomed_topology(n_providers: int = 2) -> Network:
    """One customer host multihomed to ``n_providers`` provider ASes.

    Used by the addressing / lock-in experiments (E01): the customer node
    ``cust`` attaches through one access router per provider.
    """
    if n_providers < 1:
        raise TopologyError("need at least one provider")
    net = Network()
    core_asn = 100
    net.add_as(core_asn, name="core", tier=1)
    net.add_node("core", kind=NodeKind.ROUTER, asn=core_asn)
    net.add_node("cust", kind=NodeKind.HOST)
    for i in range(n_providers):
        asn_i = i + 1
        net.add_as(asn_i, name=f"ISP{i}", tier=2)
        net.add_as_relationship(asn_i, core_asn, Relationship.CUSTOMER_PROVIDER)
        router = f"isp{i}-gw"
        net.add_node(router, kind=NodeKind.ROUTER, asn=asn_i)
        net.add_link(router, "core", latency=0.02)
        net.add_link("cust", router, latency=0.005)
    return net
