"""Middleboxes: firewalls, NATs, redirectors, caches and wiretaps.

Middleboxes are the concrete mechanisms through which several of the
paper's tussles play out:

* firewalls turn the network from "that which is not forbidden is
  permitted" into "that which is not permitted is forbidden" (§V-B);
* ISPs redirect connections to control which SMTP server a customer uses
  (§IV-B footnote);
* NATs are the user's counter-move to single-address provisioning (§I);
* wiretaps are the third-party observation the paper lists among the
  transparency-eroding mechanisms (§VI-A);
* each middlebox can *disclose* its interference or stay silent — the
  paper argues devices should "reveal if they impose limitations", while
  noting this can only be a courtesy (§V-B).

Every middlebox implements :meth:`Middlebox.process` returning a
:class:`Verdict`; the forwarding engine applies verdicts on the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from .packets import Header, Packet

__all__ = [
    "Action",
    "Verdict",
    "Middlebox",
    "PortFilterFirewall",
    "BlanketFirewall",
    "Redirector",
    "NAT",
    "Wiretap",
    "Cache",
    "TransparencyLedger",
]


class Action(Enum):
    """What a middlebox decided to do with a packet."""

    FORWARD = "forward"
    DROP = "drop"
    REDIRECT = "redirect"
    MODIFY = "modify"


@dataclass
class Verdict:
    """Outcome of middlebox processing.

    ``packet`` carries the (possibly modified) packet for FORWARD/MODIFY/
    REDIRECT; ``new_destination`` is set for REDIRECT; ``disclosed`` records
    whether the middlebox announced its interference (the paper's visibility
    requirement).
    """

    action: Action
    packet: Optional[Packet] = None
    new_destination: Optional[str] = None
    reason: str = ""
    disclosed: bool = False


class Middlebox:
    """Base class for all middleboxes.

    Subclasses override :meth:`process`. The base class accumulates
    statistics so experiments can measure interference rates.

    Parameters
    ----------
    name:
        Identifier (usually the topology node it sits on).
    discloses:
        Whether verdicts other than FORWARD are announced to endpoints.
        The paper: "One way to help preserve the end-to-end character of
        the Internet is to require that devices reveal if they impose
        limitations on it. However, there is no obvious way to enforce
        this requirement, so it becomes a courtesy."
    """

    def __init__(self, name: str, discloses: bool = True):
        self.name = name
        self.discloses = discloses
        self.stats: Dict[Action, int] = {a: 0 for a in Action}
        self.log: List[Tuple[int, Action, str]] = []

    def process(self, packet: Packet) -> Verdict:  # pragma: no cover - abstract
        raise NotImplementedError

    def _record(self, packet: Packet, verdict: Verdict) -> Verdict:
        self.stats[verdict.action] += 1
        self.log.append((packet.packet_id, verdict.action, verdict.reason))
        verdict.disclosed = self.discloses and verdict.action is not Action.FORWARD
        return verdict

    def interference_rate(self) -> float:
        """Fraction of processed packets not simply forwarded."""
        total = sum(self.stats.values())
        if total == 0:
            return 0.0
        return 1.0 - self.stats[Action.FORWARD] / total


class PortFilterFirewall(Middlebox):
    """A conventional firewall filtering on visible ports/applications.

    Crucially it classifies using :meth:`Packet.observable_application` —
    so tunnelled or encrypted traffic on an innocuous port *evades* it.
    That is the evasion dynamic of §V-A-2 (value pricing vs tunnels).

    Parameters
    ----------
    blocked_applications:
        Applications (by observable classification) to drop.
    blocked_ports:
        Destination ports to drop regardless of classification.
    """

    def __init__(
        self,
        name: str,
        blocked_applications: Optional[Set[str]] = None,
        blocked_ports: Optional[Set[int]] = None,
        discloses: bool = True,
    ):
        super().__init__(name, discloses=discloses)
        self.blocked_applications = set(blocked_applications or ())
        self.blocked_ports = set(blocked_ports or ())

    def process(self, packet: Packet) -> Verdict:
        wire = packet.wire_header
        if wire.dst_port in self.blocked_ports:
            return self._record(packet, Verdict(Action.DROP, reason=f"port {wire.dst_port} blocked"))
        observed = packet.observable_application()
        if observed is not None and observed in self.blocked_applications:
            return self._record(packet, Verdict(Action.DROP, reason=f"app {observed} blocked"))
        return self._record(packet, Verdict(Action.FORWARD, packet=packet))


class BlanketFirewall(Middlebox):
    """"That which is not permitted is forbidden" (§V-B).

    Only an explicit allow-list of applications passes; anything
    unclassifiable (new applications, encrypted flows) is dropped. This is
    the design whose innovation cost experiment E05 measures.
    """

    def __init__(self, name: str, allowed_applications: Set[str], discloses: bool = True):
        super().__init__(name, discloses=discloses)
        self.allowed_applications = set(allowed_applications)

    def process(self, packet: Packet) -> Verdict:
        observed = packet.observable_application()
        if observed is not None and observed in self.allowed_applications:
            return self._record(packet, Verdict(Action.FORWARD, packet=packet))
        return self._record(
            packet,
            Verdict(Action.DROP, reason=f"not on allow-list (observed={observed})"),
        )


class Redirector(Middlebox):
    """Rewrites destinations matching a rule — the ISP's SMTP-capture move.

    "An ISP might try to control what SMTP server a customer uses by
    redirecting packets based on the port number" (§IV-B).
    """

    def __init__(
        self,
        name: str,
        port: int,
        new_destination: str,
        discloses: bool = False,
    ):
        super().__init__(name, discloses=discloses)
        self.port = port
        self.new_destination = new_destination

    def process(self, packet: Packet) -> Verdict:
        wire = packet.wire_header
        if wire.dst_port == self.port and wire.dst != self.new_destination:
            return self._record(
                packet,
                Verdict(
                    Action.REDIRECT,
                    packet=packet,
                    new_destination=self.new_destination,
                    reason=f"port {self.port} redirected to {self.new_destination}",
                ),
            )
        return self._record(packet, Verdict(Action.FORWARD, packet=packet))


class NAT(Middlebox):
    """Network address translation — the user's one-address counter-move.

    "ISPs give their users a single IP address, and users attach a network
    of computers using address translation" (§I). Internal sources are
    rewritten to the NAT's public name; return traffic is translated back.
    """

    def __init__(self, name: str, public_name: str, internal_prefix: str):
        super().__init__(name, discloses=False)
        self.public_name = public_name
        self.internal_prefix = internal_prefix
        self._mappings: Dict[int, str] = {}
        self._next_port = 50000

    def process(self, packet: Packet) -> Verdict:
        header = packet.header
        if header.src.startswith(self.internal_prefix):
            mapped_port = self._next_port
            self._next_port += 1
            self._mappings[mapped_port] = header.src
            new_header = Header(
                src=self.public_name,
                dst=header.dst,
                src_port=mapped_port,
                dst_port=header.dst_port,
                protocol=header.protocol,
                tos=header.tos,
            )
            new_packet = Packet(
                header=new_header,
                application=packet.application,
                payload=packet.payload,
                encrypted=packet.encrypted,
                source_route=packet.source_route,
                encapsulation=list(packet.encapsulation),
                size=packet.size,
                hops=list(packet.hops),
            )
            return self._record(packet, Verdict(Action.MODIFY, packet=new_packet,
                                                reason="SNAT"))
        if header.dst == self.public_name and header.dst_port in self._mappings:
            internal = self._mappings[header.dst_port]
            new_header = Header(
                src=header.src,
                dst=internal,
                src_port=header.src_port,
                dst_port=header.dst_port,
                protocol=header.protocol,
                tos=header.tos,
            )
            new_packet = Packet(
                header=new_header,
                application=packet.application,
                payload=packet.payload,
                encrypted=packet.encrypted,
                size=packet.size,
                hops=list(packet.hops),
            )
            return self._record(
                packet,
                Verdict(Action.REDIRECT, packet=new_packet, new_destination=internal,
                        reason="DNAT"),
            )
        return self._record(packet, Verdict(Action.FORWARD, packet=packet))

    def translation_count(self) -> int:
        return len(self._mappings)


class Wiretap(Middlebox):
    """Passively records what it can observe of passing traffic.

    Models "the desire of third parties to observe a data flow (e.g.,
    wiretap)" (§VI-A). Encrypted payloads yield only wire-header metadata —
    the quantitative basis for E11's escalation game.
    """

    def __init__(self, name: str):
        super().__init__(name, discloses=False)
        self.observations: List[Dict[str, object]] = []

    def process(self, packet: Packet) -> Verdict:
        wire = packet.wire_header
        self.observations.append(
            {
                "src": wire.src,
                "dst": wire.dst,
                "dst_port": wire.dst_port,
                "application": packet.observable_application(),
                "content_visible": (not packet.encrypted
                                    and not packet.tunnelled
                                    and packet.covert_cover is None),
            }
        )
        return self._record(packet, Verdict(Action.FORWARD, packet=packet))

    def content_visibility_rate(self) -> float:
        """Fraction of observed packets whose content was readable."""
        if not self.observations:
            return 0.0
        visible = sum(1 for o in self.observations if o["content_visible"])
        return visible / len(self.observations)


class Cache(Middlebox):
    """A content cache that short-circuits requests it has seen before.

    Models "the desire to improve important applications (e.g., the Web)
    leads to the deployment of caches" (§VI-A). Hits are REDIRECTed to the
    cache node itself.
    """

    def __init__(self, name: str, cacheable_applications: Optional[Set[str]] = None):
        super().__init__(name, discloses=True)
        self.cacheable_applications = set(cacheable_applications or {"http"})
        self._seen: Set[Tuple[str, int]] = set()
        self.hits = 0
        self.misses = 0

    def process(self, packet: Packet) -> Verdict:
        observed = packet.observable_application()
        if observed not in self.cacheable_applications or packet.encrypted:
            return self._record(packet, Verdict(Action.FORWARD, packet=packet))
        key = (packet.header.dst, packet.header.dst_port)
        if key in self._seen:
            self.hits += 1
            return self._record(
                packet,
                Verdict(Action.REDIRECT, packet=packet, new_destination=self.name,
                        reason="cache hit"),
            )
        self._seen.add(key)
        self.misses += 1
        return self._record(packet, Verdict(Action.FORWARD, packet=packet))

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class TransparencyLedger:
    """Aggregates disclosure behaviour across a deployment of middleboxes.

    The paper's diagnostic-tools discussion (§VI-A "Failures of
    transparency will occur — design what happens then") needs a measure of
    how much interference was *announced* versus silent; this ledger
    provides it.
    """

    def __init__(self) -> None:
        self.records: List[Tuple[str, Action, bool]] = []

    def record(self, middlebox: str, action: Action, disclosed: bool) -> None:
        if action is Action.FORWARD:
            return
        self.records.append((middlebox, action, disclosed))

    def disclosure_rate(self) -> float:
        """Fraction of interfering actions that were disclosed."""
        if not self.records:
            return 1.0
        return sum(1 for _, __, d in self.records if d) / len(self.records)

    def silent_interferers(self) -> Set[str]:
        return {m for m, _, d in self.records if not d}
