"""Addressing: provider-based address blocks, renumbering, and lock-in.

Section V-A-1 of the paper ("Provider Lock-In From IP Addressing") argues
that provider-based addressing creates a consumer–producer tussle: either a
customer is locked into its provider by provider-assigned addresses, or it
obtains provider-independent space that bloats the global routing table.

This module models exactly that trade-off:

* :class:`AddressBlock` — a contiguous range carved from a provider's
  aggregate (provider-assigned, PA) or allocated directly to the customer
  (provider-independent, PI);
* :class:`AddressRegistry` — allocates blocks, tracks aggregation, and
  reports the size of the "core forwarding table" (one entry per
  non-aggregatable block, matching the paper's concern);
* :class:`RenumberingModel` — the *cost of switching providers* as a
  function of how a site manages addresses (static vs DHCP vs DHCP+dynamic
  DNS), the consumer-side mechanisms the paper lists as pro-competition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..errors import AddressingError
from ..obs.runtime import current as _obs_current

__all__ = [
    "AddressBlock",
    "AddressRegistry",
    "AddressingMode",
    "RenumberingModel",
]

#: Size of the total address space modelled (a 32-bit-like space).
ADDRESS_SPACE = 2 ** 32


class AddressingMode(Enum):
    """How a site's hosts obtain and track addresses.

    The modes map to the mechanisms the paper names: static configuration
    (hard to renumber), DHCP (easy host renumbering), and DHCP combined with
    dynamic DNS updates (renumbering nearly free — the paper's preferred
    design point, where "addresses reflect connectivity, not identity").
    """

    STATIC = "static"
    DHCP = "dhcp"
    DHCP_DDNS = "dhcp+ddns"


@dataclass(frozen=True)
class AddressBlock:
    """A contiguous address block.

    Attributes
    ----------
    start, size:
        The covered range ``[start, start + size)``.
    owner:
        Name of the customer/site holding the block.
    provider_asn:
        The provider whose aggregate the block was carved from, or ``None``
        for provider-independent space.
    """

    start: int
    size: int
    owner: str
    provider_asn: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise AddressingError(f"block size must be positive, got {self.size}")
        if self.start < 0 or self.start + self.size > ADDRESS_SPACE:
            raise AddressingError("block out of address space")

    @property
    def provider_independent(self) -> bool:
        return self.provider_asn is None

    def contains(self, address: int) -> bool:
        return self.start <= address < self.start + self.size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "PI" if self.provider_independent else f"PA(AS{self.provider_asn})"
        return f"[{self.start}+{self.size} {self.owner} {kind}]"


class AddressRegistry:
    """Allocates provider aggregates and customer blocks, tracks table size.

    Each provider receives one aggregate. Customer blocks carved from an
    aggregate are *covered* by the provider's single core-table entry;
    provider-independent blocks each add their own entry. The registry's
    :meth:`core_table_size` therefore quantifies the routing-table cost of
    provider-independent addressing that the paper highlights.
    """

    #: Default size of a provider aggregate.
    AGGREGATE_SIZE = 2 ** 20
    #: Default size of a customer block.
    CUSTOMER_BLOCK_SIZE = 2 ** 8

    def __init__(self) -> None:
        self._next_free = 0
        self._aggregates: Dict[int, AddressBlock] = {}
        self._customer_blocks: Dict[str, AddressBlock] = {}
        self._pi_blocks: Dict[str, AddressBlock] = {}
        self._aggregate_cursor: Dict[int, int] = {}
        # Logical clock for trace records: one tick per registry operation.
        self._op_seq = 0
        ctx = _obs_current()
        self._trace = ctx.tracer if ctx.tracer.enabled else None
        if ctx.metrics.enabled:
            scope = ctx.metrics.scope("netsim.addressing")
            self._c_assignments = scope.counter("assignments")
            self._c_pi = scope.counter("pi_assignments")
        else:
            self._c_assignments = None
            self._c_pi = None

    def _note_op(self, name: str, owner: str, pi: bool) -> None:
        self._op_seq += 1
        if self._c_assignments is not None:
            self._c_assignments.inc()
            if pi:
                self._c_pi.inc()
        if self._trace is not None:
            self._trace.event("netsim.addressing", name, float(self._op_seq),
                              owner=owner)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate_aggregate(self, provider_asn: int, size: Optional[int] = None) -> AddressBlock:
        """Give a provider one aggregate block."""
        if provider_asn in self._aggregates:
            raise AddressingError(f"AS{provider_asn} already holds an aggregate")
        size = size or self.AGGREGATE_SIZE
        block = self._carve(size, owner=f"AS{provider_asn}", provider_asn=provider_asn)
        self._aggregates[provider_asn] = block
        self._aggregate_cursor[provider_asn] = block.start
        self._note_op("allocate_aggregate", block.owner, pi=False)
        return block

    def assign_customer_block(
        self, customer: str, provider_asn: int, size: Optional[int] = None
    ) -> AddressBlock:
        """Carve a provider-assigned (PA) block for a customer.

        Re-assigning a customer that already holds a PA block *renumbers*
        them: the old block is returned to the provider pool conceptually
        (we simply replace the mapping).
        """
        if provider_asn not in self._aggregates:
            raise AddressingError(f"AS{provider_asn} has no aggregate; allocate one first")
        size = size or self.CUSTOMER_BLOCK_SIZE
        agg = self._aggregates[provider_asn]
        cursor = self._aggregate_cursor[provider_asn]
        if cursor + size > agg.start + agg.size:
            raise AddressingError(f"AS{provider_asn} aggregate exhausted")
        block = AddressBlock(start=cursor, size=size, owner=customer, provider_asn=provider_asn)
        self._aggregate_cursor[provider_asn] = cursor + size
        self._customer_blocks[customer] = block
        # A PA assignment supersedes a PI block for the same customer.
        self._pi_blocks.pop(customer, None)
        self._note_op("assign_customer_block", customer, pi=False)
        return block

    def assign_provider_independent(self, customer: str, size: Optional[int] = None) -> AddressBlock:
        """Allocate provider-independent (PI) space directly to a customer."""
        size = size or self.CUSTOMER_BLOCK_SIZE
        block = self._carve(size, owner=customer, provider_asn=None)
        self._pi_blocks[customer] = block
        self._customer_blocks.pop(customer, None)
        self._note_op("assign_provider_independent", customer, pi=True)
        return block

    def _carve(self, size: int, owner: str, provider_asn: Optional[int]) -> AddressBlock:
        if self._next_free + size > ADDRESS_SPACE:
            raise AddressingError("global address space exhausted")
        block = AddressBlock(start=self._next_free, size=size, owner=owner,
                             provider_asn=provider_asn)
        self._next_free += size
        return block

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def block_of(self, customer: str) -> AddressBlock:
        """The block a customer currently holds (PA or PI)."""
        if customer in self._customer_blocks:
            return self._customer_blocks[customer]
        if customer in self._pi_blocks:
            return self._pi_blocks[customer]
        raise AddressingError(f"customer {customer!r} holds no block")

    def has_block(self, customer: str) -> bool:
        return customer in self._customer_blocks or customer in self._pi_blocks

    def provider_of(self, customer: str) -> Optional[int]:
        """The provider a customer's addresses tie it to (None for PI)."""
        return self.block_of(customer).provider_asn

    def aggregates(self) -> List[AddressBlock]:
        return [self._aggregates[k] for k in sorted(self._aggregates)]

    def core_table_size(self) -> int:
        """Entries in the default-free core forwarding table.

        One entry per provider aggregate plus one per provider-independent
        block — the quantity the paper says PI addressing inflates.
        """
        return len(self._aggregates) + len(self._pi_blocks)

    def pi_fraction(self) -> float:
        """Fraction of customers holding provider-independent space."""
        total = len(self._customer_blocks) + len(self._pi_blocks)
        if total == 0:
            return 0.0
        return len(self._pi_blocks) / total


@dataclass
class RenumberingModel:
    """Cost (in abstract effort units) for a site to change providers.

    The paper: "For hosts that use static addresses, renumbering is a
    complex task" and lists DHCP and dynamic DNS as "mechanisms that favor
    the consumer in this tussle". The model makes switching cost linear in
    the number of hosts, scaled by a per-mode factor, plus a fixed
    contractual overhead.

    Attributes
    ----------
    per_host_cost:
        Effort to renumber one statically-configured host.
    contractual_cost:
        Provider-independent overhead of any switch (contracts, cutover).
    mode_factors:
        Multiplier applied to ``per_host_cost`` per addressing mode.
    """

    per_host_cost: float = 1.0
    contractual_cost: float = 2.0
    mode_factors: Dict[AddressingMode, float] = field(
        default_factory=lambda: {
            AddressingMode.STATIC: 1.0,
            AddressingMode.DHCP: 0.15,
            AddressingMode.DHCP_DDNS: 0.02,
        }
    )

    def switching_cost(self, n_hosts: int, mode: AddressingMode,
                       provider_independent: bool = False) -> float:
        """Total cost for a site of ``n_hosts`` to move to a new provider.

        Provider-independent sites pay only the contractual overhead: their
        addresses do not change (that is the point of PI space).
        """
        if n_hosts < 0:
            raise AddressingError(f"host count must be non-negative, got {n_hosts}")
        if provider_independent:
            return self.contractual_cost
        try:
            factor = self.mode_factors[mode]
        except KeyError:
            raise AddressingError(f"unknown addressing mode {mode!r}") from None
        return self.contractual_cost + factor * self.per_host_cost * n_hosts

    def lock_in_index(self, n_hosts: int, mode: AddressingMode) -> float:
        """Normalized lock-in in [0, 1]: switching cost relative to STATIC.

        0 means switching is as cheap as it can get (contract only); 1 means
        as expensive as a fully static site.
        """
        static = self.switching_cost(n_hosts, AddressingMode.STATIC)
        this = self.switching_cost(n_hosts, mode)
        if static <= self.contractual_cost:
            return 0.0
        return (this - self.contractual_cost) / (static - self.contractual_cost)
