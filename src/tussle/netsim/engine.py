"""Discrete-event simulation engine.

This is the substrate every other subsystem schedules onto: routing
convergence, attack traffic, market rounds and tussle adaptation cycles are
all just events on the calendar of a :class:`Simulator`.

The engine is a classic calendar-queue design:

* events are ``(time, priority, sequence, callback)`` entries on a binary
  heap, so ties in time are broken first by explicit priority and then by
  insertion order (FIFO), which keeps runs deterministic;
* cancelling an event is O(1) (lazy deletion via a handle flag);
* simulated time is a float with no unit imposed by the engine — by
  convention the network substrate uses seconds.

Example
-------
>>> sim = Simulator()
>>> seen = []
>>> h = sim.schedule(1.0, lambda: seen.append("a"))
>>> _ = sim.schedule(2.0, lambda: seen.append("b"))
>>> sim.run()
3
>>> seen
['a', 'b']
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from ..obs.runtime import current as _obs_current
from ..obs.tracer import callback_name as _callback_name
from .decision import event_key

__all__ = ["EventHandle", "Simulator", "Process"]


@dataclass
class _Entry:
    """Internal heap entry; ordering is ``decision.event_key``:
    (time, priority, seq)."""

    time: float
    priority: int
    seq: int
    handle: "EventHandle" = field(compare=False)

    def __lt__(self, other: "_Entry") -> bool:
        return (event_key(self.time, self.priority, self.seq)
                < event_key(other.time, other.priority, other.seq))


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing. Cancelling a fired event is a no-op."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"<EventHandle t={self.time:.6g} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulated clock value (default ``0.0``).

    Notes
    -----
    The simulator enforces causality: scheduling into the past raises
    :class:`~tussle.errors.SimulationError`. Callbacks run synchronously and
    may schedule further events.
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: List[_Entry] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._stopped = False
        # Observability hooks resolve once at construction; a disabled
        # context (the default) leaves every hook None so the hot loop
        # pays a single `is not None` test per event.
        ctx = _obs_current()
        self._trace = ctx.tracer if ctx.tracer.enabled else None
        if ctx.metrics.enabled:
            scope = ctx.metrics.scope("netsim.engine")
            self._c_scheduled = scope.counter("events_scheduled")
            self._c_fired = scope.counter("events_fired")
            self._c_cancelled = scope.counter("events_cancelled")
            self._g_depth = scope.gauge("peak_queue_depth")
        else:
            self._c_scheduled = None
            self._c_fired = None
            self._c_cancelled = None
            self._g_depth = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still pending (cancelled entries excluded)."""
        return sum(1 for e in self._queue if e.handle.active)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now.

        ``priority`` breaks ties between events at the same instant; lower
        values fire first. Returns an :class:`EventHandle` usable to cancel.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, callback, args)
        heapq.heappush(self._queue, _Entry(time, priority, next(self._seq), handle))
        if self._c_scheduled is not None:
            self._c_scheduled.inc()
            self._g_depth.set_max(len(self._queue))
        if self._trace is not None:
            self._trace.event("netsim.engine", "schedule", self._now,
                              at=time, priority=priority,
                              callback=_callback_name(callback))
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the calendar is
        empty.
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                self._note_cancelled(handle)
                continue
            self._now = entry.time
            handle.fired = True
            self._events_processed += 1
            if self._c_fired is not None:
                self._c_fired.inc()
            if self._trace is not None:
                self._trace.event("netsim.engine", "fire", entry.time,
                                  priority=entry.priority,
                                  queue_depth=len(self._queue),
                                  callback=_callback_name(handle.callback))
            handle.callback(*handle.args)
            return True
        return False

    def _note_cancelled(self, handle: EventHandle) -> None:
        """Record a lazily-deleted (cancelled) entry at pop time."""
        if self._c_cancelled is not None:
            self._c_cancelled.inc()
        if self._trace is not None:
            self._trace.event("netsim.engine", "cancel", self._now,
                              at=handle.time,
                              callback=_callback_name(handle.callback))

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the calendar drains, ``until`` is reached, or
        ``max_events`` have fired in this call.

        Returns the number of events fired by this call. If ``until`` is
        given, the clock is advanced to ``until`` even if the calendar drains
        earlier, mirroring the behaviour of classic simulators.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                next_entry = self._queue[0]
                if next_entry.handle.cancelled:
                    heapq.heappop(self._queue)
                    self._note_cancelled(next_entry.handle)
                    continue
                if until is not None and next_entry.time > until:
                    break
                if self.step():
                    fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return fired

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def clear(self) -> None:
        """Drop every pending event (the clock is left untouched)."""
        self._queue.clear()


class Process:
    """A recurring activity on a :class:`Simulator`.

    Wraps the common pattern of an event that reschedules itself at a fixed
    interval. The callback may return ``False`` to stop recurring.

    Example
    -------
    >>> sim = Simulator()
    >>> ticks = []
    >>> p = Process(sim, interval=1.0, callback=lambda: ticks.append(sim.now))
    >>> p.start()
    >>> _ = sim.run(until=3.5)
    >>> ticks
    [1.0, 2.0, 3.0]
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        *,
        start_delay: Optional[float] = None,
        priority: int = 0,
    ):
        if interval <= 0:
            raise SimulationError(f"process interval must be positive, got {interval}")
        self.sim = sim
        self.interval = float(interval)
        self.callback = callback
        self.start_delay = interval if start_delay is None else float(start_delay)
        self.priority = priority
        self._handle: Optional[EventHandle] = None
        self.ticks = 0

    def start(self) -> None:
        """Begin recurring; the first tick fires after ``start_delay``."""
        if self._handle is not None and self._handle.active:
            raise SimulationError("process already started")
        self._handle = self.sim.schedule(
            self.start_delay, self._tick, priority=self.priority
        )

    def stop(self) -> None:
        """Cancel any pending tick."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        """True while a tick is pending."""
        return self._handle is not None and self._handle.active

    def _tick(self) -> None:
        self.ticks += 1
        result = self.callback()
        if result is False:
            self._handle = None
            return
        self._handle = self.sim.schedule(self.interval, self._tick, priority=self.priority)
