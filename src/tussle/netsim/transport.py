"""Transport flows and the congestion-control tussle.

Section II-B of the paper uses TCP congestion control as the canonical
example of a tussle "resolved" *outside* the technical system: "TCP
congestion control 'works' when and only when the majority of end-systems
both participate and follow a common set of rules... Should this balance
change, the technical design of the system will do nothing to bound or
guide the resulting shift."

This module makes that claim executable. :class:`SharedBottleneck` runs a
fluid-model round-based simulation of AIMD flows sharing one link.
Compliant flows follow additive-increase/multiplicative-decrease;
:class:`CheaterFlow` never backs off (the "misbehaving receiver" of
Savage's work cited by the paper). Experiments measure how the compliant
majority's share collapses as the cheater fraction grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import SimulationError
from ..resil.backoff import Backoff, CircuitBreaker, Deadline

__all__ = [
    "Flow",
    "AIMDFlow",
    "CheaterFlow",
    "SharedBottleneck",
    "ReliableSender",
    "SendOutcome",
    "fairness_index",
]


@dataclass
class Flow:
    """Base flow: a sender with a current rate (abstract units/sec).

    Subclasses implement :meth:`on_round` to adapt the rate given whether
    the bottleneck was congested in the last round.
    """

    name: str
    rate: float = 1.0
    #: cumulative goodput actually delivered across rounds
    delivered: float = 0.0

    def on_round(self, congested: bool) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def compliant(self) -> bool:
        return True


@dataclass
class AIMDFlow(Flow):
    """Additive-increase, multiplicative-decrease (TCP-like) flow."""

    increase: float = 1.0
    decrease_factor: float = 0.5
    min_rate: float = 0.1

    def on_round(self, congested: bool) -> None:
        if congested:
            self.rate = max(self.min_rate, self.rate * self.decrease_factor)
        else:
            self.rate += self.increase


@dataclass
class CheaterFlow(Flow):
    """A flow that ignores congestion signals entirely.

    It increases aggressively every round regardless of congestion,
    modelling the player "willing to benefit at others' expense" once
    social pressure fails (§II-B).
    """

    increase: float = 2.0
    max_rate: float = float("inf")

    def on_round(self, congested: bool) -> None:
        self.rate = min(self.max_rate, self.rate + self.increase)

    @property
    def compliant(self) -> bool:
        return False


class SharedBottleneck:
    """Round-based fluid model of flows sharing one capacity-C link.

    Each round: flows offer their current rates; if the total offered load
    exceeds capacity, the link is *congested* and every flow receives a
    proportional share of capacity; otherwise each flow's full rate is
    served. Flows then adapt via :meth:`Flow.on_round`.

    This intentionally favours the cheater exactly as the real network
    does: proportional sharing means whoever offers more load gets more.
    """

    def __init__(self, capacity: float, flows: Optional[Sequence[Flow]] = None):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.flows: List[Flow] = list(flows or [])
        self.rounds_run = 0
        self.congested_rounds = 0

    def add_flow(self, flow: Flow) -> None:
        self.flows.append(flow)

    def step(self) -> Dict[str, float]:
        """Run one round; return each flow's served rate this round."""
        offered = sum(f.rate for f in self.flows)
        congested = offered > self.capacity
        served: Dict[str, float] = {}
        for flow in self.flows:
            if congested and offered > 0:
                share = flow.rate / offered * self.capacity
            else:
                share = flow.rate
            flow.delivered += share
            served[flow.name] = share
        for flow in self.flows:
            flow.on_round(congested)
        self.rounds_run += 1
        if congested:
            self.congested_rounds += 1
        return served

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.step()

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def goodput_by_compliance(self) -> Dict[str, float]:
        """Average delivered goodput per flow, split compliant vs cheater."""
        compliant = [f for f in self.flows if f.compliant]
        cheaters = [f for f in self.flows if not f.compliant]
        result = {}
        result["compliant"] = (
            sum(f.delivered for f in compliant) / len(compliant) if compliant else 0.0
        )
        result["cheater"] = (
            sum(f.delivered for f in cheaters) / len(cheaters) if cheaters else 0.0
        )
        return result

    def cheater_advantage(self) -> float:
        """Ratio of mean cheater goodput to mean compliant goodput.

        > 1 means cheating pays — the incentive problem the paper notes
        the technical design does nothing to bound.
        """
        if not any(not f.compliant for f in self.flows):
            return 1.0  # no cheaters: no advantage by definition
        split = self.goodput_by_compliance()
        if split["compliant"] <= 0:
            return float("inf") if split["cheater"] > 0 else 1.0
        return split["cheater"] / split["compliant"]


@dataclass
class SendOutcome:
    """What a :class:`ReliableSender` send attempt sequence produced.

    ``gave_up`` is ``None`` on success, else one of ``"retries"``
    (backoff budget spent), ``"deadline"`` (sim-time deadline passed)
    or ``"breaker"`` (circuit open).  ``elapsed`` is total simulated
    time consumed: per-attempt path latency plus backoff waits.
    """

    delivered: bool
    attempts: int
    elapsed: float
    gave_up: Optional[str] = None
    receipts: List[object] = field(default_factory=list)

    @property
    def final_receipt(self):
        return self.receipts[-1] if self.receipts else None


class ReliableSender:
    """Retries delivery over a faulty network on *simulated* time.

    This is the in-simulation consumer of the resilience primitives: a
    :class:`~tussle.resil.Backoff` schedules jittered retry waits, a
    :class:`~tussle.resil.Deadline` bounds total simulated time, and an
    optional :class:`~tussle.resil.CircuitBreaker` stops a persistent
    fault from consuming the whole retry budget — the paper's point
    that at some moment the remedy stops being "try again" and becomes
    "tell the operator" (§VI-A).

    ``on_advance(now)`` is invoked whenever simulated time moves — this
    is where a :class:`~tussle.resil.ChaosInjector` gets to heal (or
    break) the network between attempts.  A *fresh* packet is built per
    attempt, so TTL and middlebox state never leak across retries.
    """

    def __init__(self, engine, src: str, dst: str,
                 application: str = "generic",
                 backoff: Optional[Backoff] = None,
                 timeout: float = 60.0,
                 breaker: Optional[CircuitBreaker] = None,
                 on_advance: Optional[Callable[[float], None]] = None):
        self.engine = engine
        self.src = src
        self.dst = dst
        self.application = application
        self.backoff = backoff if backoff is not None else Backoff(
            base=0.25, factor=2.0, cap=4.0, max_retries=4, jitter=0.5)
        self.timeout = float(timeout)
        self.breaker = breaker
        self.on_advance = on_advance

    def _advance(self, now: float) -> None:
        if self.on_advance is not None:
            self.on_advance(now)

    def send(self, now: float = 0.0) -> SendOutcome:
        """Attempt delivery starting at simulated time ``now``."""
        from .packets import make_packet

        clock = float(now)
        start = clock
        deadline = Deadline(clock, self.timeout)
        self.backoff.reset()
        outcome = SendOutcome(delivered=False, attempts=0, elapsed=0.0)

        while True:
            if self.breaker is not None and not self.breaker.allow(clock):
                outcome.gave_up = "breaker"
                break
            self._advance(clock)
            packet = make_packet(self.src, self.dst,
                                 application=self.application)
            receipt = self.engine.send(packet)
            outcome.attempts += 1
            outcome.receipts.append(receipt)
            clock += receipt.latency
            if receipt.delivered:
                if self.breaker is not None:
                    self.breaker.record_success()
                outcome.delivered = True
                break
            if self.breaker is not None:
                self.breaker.record_failure(clock)
            if deadline.expired(clock):
                outcome.gave_up = "deadline"
                break
            if self.backoff.exhausted:
                outcome.gave_up = "retries"
                break
            clock += deadline.clamp(clock, self.backoff.next_delay())
            if deadline.expired(clock):
                # A clamped wait lands exactly on expires_at: the budget
                # is spent, so give up now rather than firing one more
                # attempt at t == deadline.
                outcome.gave_up = "deadline"
                break

        outcome.elapsed = clock - start
        return outcome


def fairness_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly fair, 1/n = maximally unfair."""
    values = [max(0.0, float(v)) for v in allocations]
    if not values or all(v == 0 for v in values):
        return 1.0
    numerator = sum(values) ** 2
    denominator = len(values) * sum(v * v for v in values)
    if denominator == 0.0:
        # All values underflowed to (effectively) zero: treat as fair.
        return 1.0
    return numerator / denominator
