"""The mail system: the paper's worked example of design for choice.

"The design of the mail system allows the user to select his SMTP server
and his POP server. A user can pick among servers, perhaps to avoid an
unreliable one or pick one with desirable features, such as spam filters.
... This sort of choice drives innovation and product enhancement, and
imposes discipline on the marketplace. ... An ISP might try to control
what SMTP server a customer uses by redirecting packets based on the port
number" (§IV-B).

This module models exactly that arena:

* :class:`MailServer` — an SMTP/POP provider with reliability and an
  optional spam filter;
* :class:`MailUser` — configures which servers to use (the design's
  choice point) and records outcomes;
* :class:`MailSystem` — delivers mail through a
  :class:`~tussle.netsim.forwarding.ForwardingEngine`, so ISP-side
  redirectors (the provider's counter-move) actually intercept traffic;
* :func:`server_market_discipline` — the "imposes discipline on the
  marketplace" claim as a measurement: unreliable servers lose users who
  are free to choose.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..errors import SimulationError
from .forwarding import ForwardingEngine
from .packets import make_packet
from .topology import Network, NodeKind

__all__ = [
    "MailServer",
    "MailUser",
    "MailOutcome",
    "MailSystem",
    "server_market_discipline",
]


@dataclass
class MailServer:
    """An SMTP (sending) or POP (reading) server.

    Attributes
    ----------
    reliability:
        Probability a handled message is processed correctly.
    spam_filter:
        Fraction of spam the server removes (0 = none).
    """

    name: str
    reliability: float = 0.99
    spam_filter: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise SimulationError(f"reliability must be a probability")
        if not 0.0 <= self.spam_filter <= 1.0:
            raise SimulationError(f"spam_filter must be a fraction")


@dataclass
class MailUser:
    """A user with configured server choices — the §IV-B choice point."""

    name: str
    smtp_server: str
    pop_server: str
    sent: int = 0
    delivered: int = 0
    spam_received: int = 0
    redirected_count: int = 0

    def delivery_rate(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0


@dataclass
class MailOutcome:
    """What happened to one message."""

    delivered: bool
    smtp_used: str          # the server that actually handled the send
    redirected: bool        # did an ISP redirector override the choice?
    spam_filtered: bool


class MailSystem:
    """Mail delivery over a topology, with server choice and ISP meddling.

    Parameters
    ----------
    engine:
        Forwarding engine over a topology containing the users' hosts and
        the mail server nodes. Attach a
        :class:`~tussle.netsim.middlebox.Redirector` on the user's access
        path to model the ISP's SMTP capture.
    servers:
        Mail servers by name (names must be topology nodes).
    seed:
        Seeds server-reliability coin flips.
    """

    def __init__(self, engine: ForwardingEngine,
                 servers: Sequence[MailServer], seed: int = 0):
        self.engine = engine
        self.servers: Dict[str, MailServer] = {}
        for server in servers:
            if not engine.network.has_node(server.name):
                raise SimulationError(
                    f"mail server {server.name!r} is not a topology node")
            self.servers[server.name] = server
        self.rng = random.Random(seed)
        self.outcomes: List[MailOutcome] = []

    def send(self, user: MailUser, is_spam: bool = False) -> MailOutcome:
        """Send one message via the user's chosen SMTP server.

        The message is a packet to the chosen server on port 25; if an
        on-path redirector rewrites it, the *redirect target* handles the
        send instead — the user's choice was overridden.
        """
        packet = make_packet(user.name, user.smtp_server, application="smtp")
        receipt = self.engine.send(packet)
        user.sent += 1
        if not receipt.delivered:
            outcome = MailOutcome(delivered=False, smtp_used="",
                                  redirected=False, spam_filtered=False)
            self.outcomes.append(outcome)
            return outcome
        smtp_used = receipt.delivered_to or user.smtp_server
        redirected = smtp_used != user.smtp_server
        if redirected:
            user.redirected_count += 1
        server = self.servers.get(smtp_used)
        if server is None:
            outcome = MailOutcome(delivered=False, smtp_used=smtp_used,
                                  redirected=redirected, spam_filtered=False)
            self.outcomes.append(outcome)
            return outcome
        handled = self.rng.random() < server.reliability
        spam_filtered = is_spam and self.rng.random() < server.spam_filter
        delivered = handled and not spam_filtered
        if delivered:
            user.delivered += 1
            if is_spam:
                user.spam_received += 1
        outcome = MailOutcome(delivered=delivered, smtp_used=smtp_used,
                              redirected=redirected,
                              spam_filtered=spam_filtered)
        self.outcomes.append(outcome)
        return outcome

    def redirection_rate(self) -> float:
        """Fraction of sends where the ISP overrode the user's choice."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.redirected) / len(self.outcomes)


def build_mail_topology(server_names: Sequence[str]) -> Network:
    """A user behind an ISP access node, with mail servers beyond it."""
    net = Network()
    net.add_node("user", kind=NodeKind.HOST)
    net.add_node("isp-access", kind=NodeKind.MIDDLEBOX)
    net.add_node("backbone", kind=NodeKind.ROUTER)
    net.add_link("user", "isp-access")
    net.add_link("isp-access", "backbone")
    for name in server_names:
        net.add_node(name, kind=NodeKind.SERVER)
        net.add_link(name, "backbone")
    return net


__all__.append("build_mail_topology")


def server_market_discipline(
    reliabilities: Sequence[float],
    n_users: int = 60,
    messages_per_user: int = 20,
    switch_threshold: float = 0.9,
    seed: int = 0,
) -> Dict[str, int]:
    """Measure "choice imposes discipline on the marketplace".

    Users start uniformly spread over servers of differing reliability,
    send a batch of mail, and switch to the best-observed server when
    their own falls below ``switch_threshold`` observed delivery. Returns
    final user counts per server — reliable servers should win.
    """
    servers = [MailServer(name=f"smtp{i}", reliability=r)
               for i, r in enumerate(reliabilities)]
    net = build_mail_topology([s.name for s in servers])
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    system = MailSystem(engine, servers, seed=seed)

    users = [
        MailUser(name="user", smtp_server=servers[i % len(servers)].name,
                 pop_server=servers[i % len(servers)].name)
        for i in range(n_users)
    ]
    for user in users:
        for _ in range(messages_per_user):
            system.send(user)
        if user.delivery_rate() < switch_threshold:
            best = max(servers, key=lambda s: s.reliability)
            user.smtp_server = best.name

    counts: Dict[str, int] = {s.name: 0 for s in servers}
    for user in users:
        counts[user.smtp_server] += 1
    return counts
