"""Fault injection and user-facing diagnosis tools.

"Failures of transparency will occur — design what happens then. Today,
when an IP address is unreachable, there is little in the way of helpful
information about why... Tools for fault isolation and error reporting
would help — the hard challenge is not so much to find the fault but to
report the problem to the right person in the right language" (§VI-A).

This module provides:

* :class:`FaultInjector` — scripted link failures / middlebox insertions
  against a :class:`~tussle.netsim.forwarding.ForwardingEngine`;
* :func:`traceroute` — the sophisticated user's probe: walks the path one
  hop at a time and reports where forwarding stops;
* :class:`FaultReporter` — translates a delivery receipt into a report
  aimed at one of the paper's audiences (the user who can choose a
  different provider, or the operator who can fix the fault).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Tuple

from .forwarding import DeliveryReceipt, DeliveryStatus, ForwardingEngine
from .packets import make_packet

__all__ = [
    "Audience",
    "FaultReport",
    "FaultReporter",
    "FaultInjector",
    "traceroute",
]


class Audience(Enum):
    """Who a fault report is written for (the paper's 'right person')."""

    END_USER = "end-user"
    OPERATOR = "operator"


@dataclass
class FaultReport:
    """A fault report in the right language for its audience.

    ``actionable`` captures the paper's point that fault reporting is "as
    much a tool of tussle management as... technical repair": a report is
    actionable for an end user if it tells them enough to choose a
    different path or provider, and for an operator if it localizes the
    fault to something they can fix.
    """

    audience: Audience
    summary: str
    location: Optional[str]
    actionable: bool
    receipt: DeliveryReceipt


class FaultReporter:
    """Turns delivery receipts into audience-appropriate reports."""

    def report(self, receipt: DeliveryReceipt, audience: Audience) -> FaultReport:
        if receipt.delivered:
            return FaultReport(audience, "delivered", receipt.delivered_to, False, receipt)
        location = receipt.interfering_node or (receipt.path[-1] if receipt.path else None)
        if audience is Audience.END_USER:
            return self._user_report(receipt, location)
        return self._operator_report(receipt, location)

    def _user_report(self, receipt: DeliveryReceipt, location: Optional[str]) -> FaultReport:
        status = receipt.status
        if status is DeliveryStatus.DROPPED_BY_MIDDLEBOX:
            if receipt.interfering_node and "blocked by" in receipt.diagnostic:
                summary = (f"Your traffic is being blocked near {location!r}. "
                           f"You may choose a different provider or path.")
                return FaultReport(Audience.END_USER, summary, location, True, receipt)
            summary = "Your traffic is disappearing inside the network; cause undisclosed."
            return FaultReport(Audience.END_USER, summary, location, False, receipt)
        if status in (DeliveryStatus.NO_ROUTE, DeliveryStatus.LINK_DOWN):
            summary = f"The destination is unreachable (problem near {location!r})."
            return FaultReport(Audience.END_USER, summary, location, True, receipt)
        if status is DeliveryStatus.SOURCE_ROUTE_REFUSED:
            summary = (f"Provider at {location!r} refuses your chosen route; "
                       f"pick another provider or accept their routing.")
            return FaultReport(Audience.END_USER, summary, location, True, receipt)
        summary = f"Delivery failed ({status.value})."
        return FaultReport(Audience.END_USER, summary, location, False, receipt)

    def route(self, receipt: DeliveryReceipt,
              provider_nodes: Iterable[str]) -> FaultReport:
        """Address the report to the actor who can act on it (§VI-A).

        The paper's "right person": a failure localized *inside the
        provider's network* is the operator's to fix, so the report is
        written for :attr:`Audience.OPERATOR`; a failure at the edge, at
        an unknown location, or outside the provider is routed to the
        end user, whose remedy is to choose differently.
        """
        providers = set(provider_nodes)
        if receipt.delivered:
            return self.report(receipt, Audience.END_USER)
        location = receipt.interfering_node or (
            receipt.path[-1] if receipt.path else None)
        if location is not None and location in providers:
            return self.report(receipt, Audience.OPERATOR)
        return self.report(receipt, Audience.END_USER)

    def _operator_report(self, receipt: DeliveryReceipt, location: Optional[str]) -> FaultReport:
        status = receipt.status
        actionable = location is not None and status in (
            DeliveryStatus.LINK_DOWN,
            DeliveryStatus.NO_ROUTE,
            DeliveryStatus.TTL_EXCEEDED,
            DeliveryStatus.DROPPED_BY_MIDDLEBOX,
        )
        summary = (f"{status.value} at {location!r}: {receipt.diagnostic} "
                   f"(path so far: {' > '.join(receipt.path)})")
        return FaultReport(Audience.OPERATOR, summary, location, actionable, receipt)


def traceroute(engine: ForwardingEngine, src: str, dst: str,
               application: str = "generic") -> List[Tuple[str, bool]]:
    """Hop-by-hop probe: which nodes along the path answer?

    Returns a list of ``(node, reached)`` pairs. A silent middlebox shows
    up as the first unreached hop — the most a "sophisticated user" can
    learn (§VI-A).
    """
    probe = make_packet(src, dst, application=application)
    receipt = engine.send(probe)
    result: List[Tuple[str, bool]] = [(hop, True) for hop in receipt.path]
    if not receipt.delivered and receipt.path:
        # The hop after the last reached node never answered.
        result.append(("?", False))
    return result


class FaultInjector:
    """Scripted failures against a forwarding engine's network.

    Useful both in tests (failure injection) and in the E05/E09 stress
    experiments. All randomness is seeded: pass either an explicit
    ``seed`` or an already-seeded ``rng`` (an injected stream lets a
    caller share one master ``random.Random`` across several injectors
    without seed collisions).
    """

    def __init__(self, engine: ForwardingEngine, seed: int = 0,
                 rng: Optional[random.Random] = None):
        self.engine = engine
        self.rng = rng if rng is not None else random.Random(seed)
        self.failed_links: List[Tuple[str, str]] = []

    def fail_random_link(self) -> Optional[Tuple[str, str]]:
        """Fail one random operational link; returns its endpoints."""
        candidates = [l for l in self.engine.network.links if l.up]
        if not candidates:
            return None
        link = self.rng.choice(sorted(candidates, key=lambda l: l.key()))
        self.engine.network.fail_link(link.a, link.b)
        self.failed_links.append((link.a, link.b))
        return (link.a, link.b)

    def fail_fraction(self, fraction: float) -> List[Tuple[str, str]]:
        """Fail a fraction of all links (rounded down)."""
        links = sorted((l for l in self.engine.network.links if l.up),
                       key=lambda l: l.key())
        count = int(len(links) * fraction)
        chosen = self.rng.sample(links, count) if count else []
        for link in chosen:
            self.engine.network.fail_link(link.a, link.b)
            self.failed_links.append((link.a, link.b))
        return [(l.a, l.b) for l in chosen]

    def restore_all(self) -> None:
        for a, b in self.failed_links:
            self.engine.network.restore_link(a, b)
        self.failed_links.clear()
