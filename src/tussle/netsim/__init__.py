"""Discrete-event network substrate.

The netsim package provides everything the tussle experiments forward
packets over: a deterministic event engine, topologies at node and AS
granularity, a packet model with encryption/tunnelling semantics,
middleboxes, a forwarding engine, transport flows, a name system, fault
injection and metric collection.
"""

from .engine import EventHandle, Process, Simulator
from .topology import (
    ASNode,
    Link,
    Network,
    Node,
    NodeKind,
    Relationship,
    dumbbell_topology,
    line_topology,
    multihomed_topology,
    random_as_graph,
    star_topology,
)
from .addressing import (
    AddressBlock,
    AddressRegistry,
    AddressingMode,
    RenumberingModel,
)
from .packets import Header, Packet, Protocol, WELL_KNOWN_PORTS, make_packet, port_for_app
from .middlebox import (
    Action,
    BlanketFirewall,
    Cache,
    Middlebox,
    NAT,
    PortFilterFirewall,
    Redirector,
    TransparencyLedger,
    Verdict,
    Wiretap,
)
from .forwarding import DeliveryReceipt, DeliveryStatus, ForwardingEngine, PrefixFib
from .transport import (
    AIMDFlow,
    CheaterFlow,
    Flow,
    SharedBottleneck,
    fairness_index,
)
from .dns import (
    DisputeOutcome,
    EntangledNameSystem,
    NameSystem,
    SeparatedNameSystem,
    TrademarkDispute,
)
from .faults import Audience, FaultInjector, FaultReport, FaultReporter, traceroute
from .qos import (
    PRIORITY_TOS,
    PortQosClassifier,
    QosClassifier,
    QosScheduler,
    TosQosClassifier,
)
from .mail import (
    MailOutcome,
    MailServer,
    MailSystem,
    MailUser,
    build_mail_topology,
    server_market_discipline,
)
from .metrics import Counter, MetricRegistry, Summary, TimeSeries, summarize

__all__ = [
    # engine
    "EventHandle", "Process", "Simulator",
    # topology
    "ASNode", "Link", "Network", "Node", "NodeKind", "Relationship",
    "dumbbell_topology", "line_topology", "multihomed_topology",
    "random_as_graph", "star_topology",
    # addressing
    "AddressBlock", "AddressRegistry", "AddressingMode", "RenumberingModel",
    # packets
    "Header", "Packet", "Protocol", "WELL_KNOWN_PORTS", "make_packet", "port_for_app",
    # middleboxes
    "Action", "BlanketFirewall", "Cache", "Middlebox", "NAT",
    "PortFilterFirewall", "Redirector", "TransparencyLedger", "Verdict", "Wiretap",
    # forwarding
    "DeliveryReceipt", "DeliveryStatus", "ForwardingEngine", "PrefixFib",
    # transport
    "AIMDFlow", "CheaterFlow", "Flow", "SharedBottleneck", "fairness_index",
    # dns
    "DisputeOutcome", "EntangledNameSystem", "NameSystem",
    "SeparatedNameSystem", "TrademarkDispute",
    # faults
    "Audience", "FaultInjector", "FaultReport", "FaultReporter", "traceroute",
    # qos
    "PRIORITY_TOS", "PortQosClassifier", "QosClassifier",
    "QosScheduler", "TosQosClassifier",
    # mail
    "MailOutcome", "MailServer", "MailSystem", "MailUser",
    "build_mail_topology", "server_market_discipline",
    # metrics
    "Counter", "MetricRegistry", "Summary", "TimeSeries", "summarize",
]
