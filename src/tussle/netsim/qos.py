"""QoS classification: the §IV-A isolation example made executable.

"The use of explicit ToS bits to select QoS, rather than binding this
decision to another property such as a well-known port number,
disentangles what application is running from what service is desired...
This modularity allows tussles about QoS to be played out without
distortions, such as demands that encryption be avoided simply to leave
well-known port information visible or the encapsulation of applications
inside other applications simply to receive better service."

Two classifiers over the same traffic:

* :class:`PortQosClassifier` — the entangled design: priority by
  well-known port of the *observable* application;
* :class:`TosQosClassifier` — the paper's design: priority by explicit
  ToS bits, optionally billing each prioritized packet (the value-flow
  answer to ToS freeloading).

:class:`QosScheduler` is a pass-through middlebox recording, per packet,
whether it was prioritized and whether (by ground truth) it deserved to
be — so experiments can score recall/false-positives under evasive
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from . import decision
from .middlebox import Action, Middlebox, Verdict
from .packets import Packet

__all__ = [
    "QosClassifier",
    "PortQosClassifier",
    "TosQosClassifier",
    "QosScheduler",
    "PRIORITY_TOS",
]

#: Conventional ToS value requesting priority service.
PRIORITY_TOS = 8


class QosClassifier:
    """Interface: should this packet receive priority service?"""

    name = "classifier"

    def prioritize(self, packet: Packet) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass
class PortQosClassifier(QosClassifier):
    """Priority bound to the observable application (well-known ports).

    The entangled design: what service you get depends on what
    application the network *thinks* you run.
    """

    priority_applications: Set[str] = field(
        default_factory=lambda: {"voip"})
    name: str = "port-bound"

    def prioritize(self, packet: Packet) -> bool:
        return decision.port_prioritized(
            packet.observable_application(), self.priority_applications)


@dataclass
class TosQosClassifier(QosClassifier):
    """Priority bound to explicit ToS bits (the paper's design).

    ``bill_per_packet`` > 0 charges each prioritized packet — the
    value-flow mechanism that turns ToS freeloading from a distortion
    into a settled transaction.
    """

    threshold: int = PRIORITY_TOS
    bill_per_packet: float = 0.0
    name: str = "tos-bound"
    revenue: float = 0.0

    def prioritize(self, packet: Packet) -> bool:
        prioritized = decision.tos_prioritized(
            packet.observable_tos(), self.threshold)
        charge = decision.priority_charge(prioritized, self.bill_per_packet)
        if charge:
            self.revenue += charge
        return prioritized


@dataclass
class _Decision:
    packet_id: int
    prioritized: bool
    deserving: bool


class QosScheduler(Middlebox):
    """Pass-through middlebox scoring a classifier against ground truth.

    ``latency_sensitive_applications`` defines ground truth: packets whose
    *true* application (not the observable one) is in the set deserve
    priority.
    """

    def __init__(
        self,
        name: str,
        classifier: QosClassifier,
        latency_sensitive_applications: Optional[Set[str]] = None,
    ):
        super().__init__(name, discloses=True)
        self.classifier = classifier
        self.latency_sensitive = set(
            latency_sensitive_applications or {"voip"})
        self._decisions: List[_Decision] = []

    def process(self, packet: Packet) -> Verdict:
        prioritized = self.classifier.prioritize(packet)
        self._decisions.append(_Decision(
            packet_id=packet.packet_id,
            prioritized=prioritized,
            deserving=packet.application in self.latency_sensitive,
        ))
        return self._record(packet, Verdict(Action.FORWARD, packet=packet))

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    @property
    def decisions(self) -> int:
        return len(self._decisions)

    def recall(self) -> float:
        """Fraction of deserving packets that actually got priority."""
        deserving = [d for d in self._decisions if d.deserving]
        if not deserving:
            return 1.0
        return sum(1 for d in deserving if d.prioritized) / len(deserving)

    def false_priority_rate(self) -> float:
        """Fraction of undeserving packets that freeloaded priority."""
        undeserving = [d for d in self._decisions if not d.deserving]
        if not undeserving:
            return 0.0
        return (sum(1 for d in undeserving if d.prioritized)
                / len(undeserving))

    def accuracy(self) -> float:
        """Fraction of all packets classified correctly."""
        if not self._decisions:
            return 1.0
        correct = sum(1 for d in self._decisions
                      if d.prioritized == d.deserving)
        return correct / len(self._decisions)
