"""Christensen's disruptive innovation over actor networks (§II-B).

"Disruptive technology does not initially succeed by de-stabilizing an
existing actor network... Instead, innovators step outside the existing
value chain, and find new customers and new markets, and build up their
stability outside the existing network. Only when they have enough
durability (stable production and markets) do they then have the
potential to overthrow the existing producers."

:class:`DisruptionScenario` runs the two-phase story: an entrant with an
initially inferior technology either attacks the incumbent's customers
head-on (and is repelled by the incumbent network's durability) or grows
a separate network of new-market customers until its durability exceeds
the takeover threshold, at which point incumbent customers defect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import Optional

import numpy as np

from ..errors import ActorNetworkError
from .actors import DEFAULT_VALUE_DIMS, Actor, ActorKind
from .alignment import AlignmentDynamics
from .durability import durability
from .network import ActorNetwork

__all__ = ["EntryStrategy", "DisruptionOutcome", "DisruptionScenario"]


class EntryStrategy(Enum):
    """How the entrant enters the market."""

    HEAD_ON = "head-on"          # attack the incumbent's existing customers
    NEW_MARKET = "new-market"    # build a separate network first (Christensen)


@dataclass
class DisruptionOutcome:
    """Result of a disruption scenario run."""

    strategy: EntryStrategy
    entrant_survived: bool
    overthrow: bool
    rounds_to_overthrow: Optional[int]
    final_entrant_durability: float
    final_incumbent_durability: float
    incumbent_customers_lost: int


class DisruptionScenario:
    """Two-network disruption dynamics.

    Parameters
    ----------
    n_incumbent_customers:
        Customers initially committed to the incumbent's technology.
    n_new_market_customers:
        Customers reachable only by the entrant (the "outcasts and
        misfits" the paper tells designers to notice).
    improvement_rate:
        Per-round quality gain of the entrant's technology (disruptors
        improve faster than incumbent needs grow).
    """

    def __init__(
        self,
        n_incumbent_customers: int = 10,
        n_new_market_customers: int = 6,
        improvement_rate: float = 0.1,
        incumbent_quality: float = 1.0,
        entrant_quality: float = 0.4,
        seed: int = 0,
    ):
        if n_incumbent_customers < 1:
            raise ActorNetworkError("incumbent needs at least one customer")
        self.n_incumbent_customers = n_incumbent_customers
        self.n_new_market_customers = n_new_market_customers
        self.improvement_rate = improvement_rate
        self.incumbent_quality = incumbent_quality
        self.entrant_quality = entrant_quality
        self.rng = np.random.default_rng(seed)

    def _build_incumbent(self) -> ActorNetwork:
        network = ActorNetwork()
        tech = Actor.make("incumbent-tech", ActorKind.TECHNOLOGY,
                          values=np.zeros(DEFAULT_VALUE_DIMS),
                          expresses_intention_of="incumbent")
        network.add_actor(tech)
        firm = Actor.make("incumbent", ActorKind.CONTENT_PROVIDER,
                          values=self.rng.uniform(-0.2, 0.2, DEFAULT_VALUE_DIMS))
        network.add_actor(firm)
        network.commit("incumbent", "incumbent-tech", 0.95)
        for i in range(self.n_incumbent_customers):
            customer = Actor.make(f"customer{i}", ActorKind.USER,
                                  values=self.rng.uniform(-0.4, 0.4, DEFAULT_VALUE_DIMS))
            network.add_actor(customer)
            network.commit(customer.name, "incumbent-tech", 0.8)
        return network

    def _build_entrant(self, customers: int) -> ActorNetwork:
        network = ActorNetwork()
        tech = Actor.make("entrant-tech", ActorKind.TECHNOLOGY,
                          values=self.rng.uniform(-0.3, 0.3, DEFAULT_VALUE_DIMS),
                          expresses_intention_of="entrant")
        network.add_actor(tech)
        firm = Actor.make("entrant", ActorKind.CONTENT_PROVIDER,
                          values=self.rng.uniform(-0.3, 0.3, DEFAULT_VALUE_DIMS))
        network.add_actor(firm)
        network.commit("entrant", "entrant-tech", 0.9)
        for i in range(customers):
            name = f"new-market{i}"
            customer = Actor.make(name, ActorKind.USER,
                                  values=self.rng.uniform(-0.5, 0.5, DEFAULT_VALUE_DIMS))
            network.add_actor(customer)
            network.commit(name, "entrant-tech", 0.3)
        return network

    def run(self, strategy: EntryStrategy, rounds: int = 40,
            takeover_margin: float = 0.05,
            durability_threshold: float = 0.7) -> DisruptionOutcome:
        """Run the scenario under one entry strategy.

        HEAD_ON: the entrant starts with no separate customer base and
        must lure incumbent customers while its quality is still inferior;
        the incumbent network's durability repels it and the entrant dies
        when it attracts no customers within its runway.

        NEW_MARKET: the entrant grows its own network; each round its
        technology improves; once quality exceeds the incumbent's and the
        entrant network has "enough durability (stable production and
        markets)" — ``durability_threshold`` — incumbent customers defect
        one per round.
        """
        incumbent_net = self._build_incumbent()
        entrant_customers = (
            self.n_new_market_customers if strategy is EntryStrategy.NEW_MARKET else 0
        )
        entrant_net = self._build_entrant(entrant_customers)
        incumbent_dynamics = AlignmentDynamics(incumbent_net)
        entrant_dynamics = AlignmentDynamics(entrant_net)

        quality = self.entrant_quality
        lost = 0
        overthrow_round: Optional[int] = None
        runway = rounds // 3 if strategy is EntryStrategy.HEAD_ON else rounds
        survived = True

        for round_index in range(rounds):
            incumbent_dynamics.step()
            entrant_dynamics.step()
            quality += self.improvement_rate if strategy is EntryStrategy.NEW_MARKET else (
                self.improvement_rate * 0.25  # no learning market => slow improvement
            )
            entrant_dur = durability(entrant_net)
            incumbent_dur = durability(incumbent_net)

            if strategy is EntryStrategy.HEAD_ON:
                # Head-on entry: customers compare quality only; inferior
                # quality attracts nobody and the entrant's runway burns.
                if quality < self.incumbent_quality and round_index >= runway:
                    survived = False
                    break
                if quality >= self.incumbent_quality:
                    # Even with parity, prying customers from a durable
                    # network requires a durability advantage.
                    if entrant_dur > incumbent_dur + takeover_margin:
                        lost += 1
            else:
                # New-market growth adds one customer every other round.
                if round_index % 2 == 0:
                    name = f"grown{round_index}"
                    customer = Actor.make(
                        name, ActorKind.USER,
                        values=self.rng.uniform(-0.4, 0.4, DEFAULT_VALUE_DIMS),
                    )
                    entrant_net.add_actor(customer)
                    entrant_net.commit(name, "entrant-tech", 0.4)
                ready = (
                    quality >= self.incumbent_quality
                    and entrant_dur >= durability_threshold
                )
                if ready:
                    lost += 1
                    if overthrow_round is None:
                        overthrow_round = round_index

            if lost >= self.n_incumbent_customers // 2:
                overthrow_round = overthrow_round or round_index
                break

        overthrow = lost >= self.n_incumbent_customers // 2
        return DisruptionOutcome(
            strategy=strategy,
            entrant_survived=survived,
            overthrow=overthrow,
            rounds_to_overthrow=overthrow_round if overthrow else None,
            final_entrant_durability=durability(entrant_net),
            final_incumbent_durability=durability(incumbent_net),
            incumbent_customers_lost=lost,
        )
