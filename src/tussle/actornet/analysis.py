"""Graph analysis of actor networks (via networkx).

Latour's claim — technology is "a central anchor in this network"
(§II-A) — is a *structural* claim, so it gets structural measurements:

* :func:`to_networkx` — export the commitment graph;
* :func:`anchor_scores` — commitment-weighted centrality per actor;
* :func:`central_anchor` — the single most anchoring actor, which in a
  healthy Internet-like network should be a technology actor;
* :func:`fragmentation_if_removed` — how many pieces the network falls
  into without a given actor: the anchor's removal shatters it.
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from .network import ActorNetwork

__all__ = [
    "to_networkx",
    "anchor_scores",
    "central_anchor",
    "fragmentation_if_removed",
    "technology_is_central_anchor",
]


def to_networkx(network: ActorNetwork) -> "nx.Graph":
    """Export the commitment graph as a weighted networkx graph.

    Nodes carry ``kind`` and ``human`` attributes; edges carry the
    commitment ``weight``.
    """
    graph = nx.Graph()
    for actor in network.actors:
        graph.add_node(actor.name, kind=actor.kind.value, human=actor.human)
    for commitment in network.commitments:
        graph.add_edge(commitment.a, commitment.b, weight=commitment.strength)
    return graph


def anchor_scores(network: ActorNetwork) -> Dict[str, float]:
    """Commitment-weighted eigenvector-style centrality per actor.

    Uses networkx eigenvector centrality on commitment weights, falling
    back to weighted degree centrality when the iteration cannot converge
    (tiny or degenerate graphs).
    """
    graph = to_networkx(network)
    if graph.number_of_edges() == 0:
        return {actor.name: 0.0 for actor in network.actors}
    try:
        return dict(nx.eigenvector_centrality(graph, weight="weight",
                                              max_iter=1000))
    except nx.PowerIterationFailedConvergence:
        degree = dict(graph.degree(weight="weight"))
        total = sum(degree.values()) or 1.0
        return {name: value / total for name, value in degree.items()}


def central_anchor(network: ActorNetwork) -> Optional[str]:
    """The actor with the highest anchor score (None for empty networks)."""
    scores = anchor_scores(network)
    if not scores or all(value == 0.0 for value in scores.values()):
        return None
    return max(sorted(scores), key=lambda name: scores[name])


def fragmentation_if_removed(network: ActorNetwork, actor_name: str) -> int:
    """Connected components of the commitment graph without one actor.

    A true anchor's removal fragments the network into many pieces; a
    peripheral actor's removal leaves it whole (1 component).
    """
    network.actor(actor_name)
    graph = to_networkx(network)
    graph.remove_node(actor_name)
    if graph.number_of_nodes() == 0:
        return 0
    return nx.number_connected_components(graph)


def technology_is_central_anchor(network: ActorNetwork) -> bool:
    """Latour's claim, testable: is the top anchor a nonhuman actor?"""
    anchor = central_anchor(network)
    if anchor is None:
        return False
    return not network.actor(anchor).human
