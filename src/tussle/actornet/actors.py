"""Actors: human and nonhuman participants in an actor network.

"Both human and nonhuman actors (including technology) must be given equal
attention as shapers of society... We can still ascribe intentions to
humans, and to technology only the expression of that intention, or
agency" (§II-A, footnote 3).

An actor's *values* are a point in an abstract k-dimensional value space;
two actors are aligned when their value vectors are close. Technology
actors carry higher inertia — they are "a central anchor" that stabilizes
the network — and express the intention of their creator rather than
holding intentions of their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

import numpy as np

from ..errors import ActorNetworkError

__all__ = ["ActorKind", "Actor", "value_distance"]

#: Dimensionality of the default value space.
DEFAULT_VALUE_DIMS = 4


class ActorKind(Enum):
    """The stakeholder categories the paper's introduction enumerates."""

    USER = "user"
    COMMERCIAL_ISP = "commercial-isp"
    PRIVATE_NETWORK = "private-network"
    GOVERNMENT = "government"
    RIGHTS_HOLDER = "rights-holder"
    CONTENT_PROVIDER = "content-provider"
    DESIGNER = "designer"
    APPLICATION = "application"      # nonhuman
    TECHNOLOGY = "technology"        # nonhuman
    STANDARD = "standard"            # nonhuman

    @property
    def human(self) -> bool:
        return self not in (ActorKind.APPLICATION, ActorKind.TECHNOLOGY,
                            ActorKind.STANDARD)


@dataclass
class Actor:
    """A participant in the actor network.

    Attributes
    ----------
    values:
        Position in value space; alignment dynamics move it.
    inertia:
        Resistance to value movement in [0, 1); technology actors default
        to high inertia (durability).
    expresses_intention_of:
        For nonhuman actors, the name of the human actor whose intention
        they express (agency without intention).
    """

    name: str
    kind: ActorKind
    values: np.ndarray
    inertia: float = 0.1
    expresses_intention_of: Optional[str] = None

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 1:
            raise ActorNetworkError(f"values for {self.name!r} must be a 1-d vector")
        if not 0.0 <= self.inertia < 1.0:
            raise ActorNetworkError(
                f"inertia must be in [0, 1), got {self.inertia} for {self.name!r}"
            )
        if not self.kind.human and self.expresses_intention_of is None:
            # A nonhuman actor with no named creator expresses a diffuse
            # intention; that is permitted but flagged via empty string.
            self.expresses_intention_of = ""

    @property
    def human(self) -> bool:
        return self.kind.human

    def has_intentions(self) -> bool:
        """Only humans hold intentions; technology expresses them."""
        return self.human

    @classmethod
    def make(
        cls,
        name: str,
        kind: ActorKind,
        values: Optional[Sequence[float]] = None,
        rng: Optional[np.random.Generator] = None,
        inertia: Optional[float] = None,
        expresses_intention_of: Optional[str] = None,
        seed: int = 0,
    ) -> "Actor":
        """Create an actor with sensible defaults.

        Random values are drawn uniformly on [-1, 1]^k when not given,
        from ``rng`` when provided, else from a generator built from the
        explicit ``seed``.  Technology/standard actors default to high
        inertia (0.85).
        """
        if values is None:
            generator = rng if rng is not None else np.random.default_rng(seed)
            values = generator.uniform(-1.0, 1.0, size=DEFAULT_VALUE_DIMS)
        if inertia is None:
            inertia = 0.85 if not kind.human else 0.1
        return cls(
            name=name,
            kind=kind,
            values=np.asarray(values, dtype=float),
            inertia=inertia,
            expresses_intention_of=expresses_intention_of,
        )


def value_distance(a: Actor, b: Actor) -> float:
    """Euclidean distance between two actors' value vectors."""
    if a.values.shape != b.values.shape:
        raise ActorNetworkError(
            f"actors {a.name!r} and {b.name!r} live in different value spaces"
        )
    return float(np.linalg.norm(a.values - b.values))
