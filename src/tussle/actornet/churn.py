"""Entrant churn: new actors keep the network changeable (§II-C).

"The entrance of new actors, with fresh perspectives and values, creates
continuous churn in the actor network... the new applications bring new
actors to the actor network, which keeps the actor network from becoming
frozen, which in turn permits change to occur."

:class:`ChurnSimulation` interleaves alignment steps with Poisson-ish
entrant arrivals. E10 sweeps the arrival rate and shows changeability
collapsing (freezing) as the rate goes to zero — the paper's "look for a
time when innovation slows, not just as a signal but also as a
pre-condition of a durably formed and unchangeable Internet."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ActorNetworkError
from .actors import DEFAULT_VALUE_DIMS, Actor, ActorKind
from .alignment import AlignmentConfig, AlignmentDynamics
from .durability import changeability, durability, is_frozen
from .network import ActorNetwork

__all__ = ["ChurnRecord", "ChurnSimulation", "seed_internet_network"]


def seed_internet_network(
    n_users: int = 6,
    n_isps: int = 3,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
) -> ActorNetwork:
    """A small stylized Internet actor network to start simulations from.

    Users and ISPs commit to a central technology actor ("the protocols")
    and to each other (customers to their ISP).  Actor values are drawn
    from ``rng`` when provided, else from a generator built from the
    explicit ``seed``.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    network = ActorNetwork()
    protocols = Actor.make("internet-protocols", ActorKind.TECHNOLOGY,
                           values=rng.uniform(-0.2, 0.2, DEFAULT_VALUE_DIMS),
                           expresses_intention_of="designers")
    network.add_actor(protocols)
    designers = Actor.make("designers", ActorKind.DESIGNER,
                           values=rng.uniform(-0.3, 0.3, DEFAULT_VALUE_DIMS))
    network.add_actor(designers)
    network.commit("designers", "internet-protocols", 0.9)
    isp_names = []
    for i in range(n_isps):
        isp = Actor.make(f"isp{i}", ActorKind.COMMERCIAL_ISP,
                         values=rng.uniform(-1, 1, DEFAULT_VALUE_DIMS))
        network.add_actor(isp)
        network.commit(isp.name, "internet-protocols", 0.7)
        isp_names.append(isp.name)
    for i in range(n_users):
        user = Actor.make(f"user{i}", ActorKind.USER,
                          values=rng.uniform(-1, 1, DEFAULT_VALUE_DIMS))
        network.add_actor(user)
        network.commit(user.name, isp_names[i % len(isp_names)], 0.5)
        network.commit(user.name, "internet-protocols", 0.4)
    return network


@dataclass
class ChurnRecord:
    """State snapshot after one churn round."""

    round_index: int
    arrivals: int
    n_actors: int
    durability: float
    changeability: float
    value_variance: float
    frozen: bool


class ChurnSimulation:
    """Alignment punctuated by entrant arrivals.

    Parameters
    ----------
    network:
        Starting actor network (mutated in place).
    arrival_rate:
        Expected entrants per round.  Arrival *counts* follow a
        deterministic error-diffusion schedule (see
        :meth:`_sample_arrivals`); the seed drives entrant values and
        attachment choices.
    alignment_steps_per_round:
        How many alignment steps run between arrival opportunities.
    seed:
        Seeds entrant values and partner selection.
    """

    def __init__(
        self,
        network: ActorNetwork,
        arrival_rate: float = 1.0,
        alignment_steps_per_round: int = 5,
        config: Optional[AlignmentConfig] = None,
        seed: int = 0,
    ):
        if arrival_rate < 0:
            raise ActorNetworkError(f"arrival rate must be >= 0, got {arrival_rate}")
        self.network = network
        self.arrival_rate = arrival_rate
        self.alignment = AlignmentDynamics(network, config=config)
        self.steps_per_round = alignment_steps_per_round
        self.rng = random.Random(seed)
        self.np_rng = np.random.default_rng(seed)
        self.history: List[ChurnRecord] = []
        self._entrant_counter = 0
        self._arrival_debt = 0.0

    # ------------------------------------------------------------------
    # Arrivals
    # ------------------------------------------------------------------
    def _sample_arrivals(self) -> int:
        """Integer arrivals with mean ``arrival_rate`` (error diffusion).

        An accumulator carries the fractional part forward, so over any
        window the realized count tracks ``rate * rounds`` exactly and a
        positive rate can never produce an arrival drought longer than
        ``ceil(1/rate) - 1`` rounds.  (The previous Bernoulli thinning
        made "healthy churn" rates freeze on unlucky seeds: at rate 0.5
        a five-round drought — the freeze window — occurs with
        probability ~1/32 per window, so a multi-seed matrix was bound
        to hit one.  Arrival counts are climate, not weather; only the
        entrant *composition* stays stochastic.)
        """
        self._arrival_debt += self.arrival_rate
        arrivals = int(self._arrival_debt)
        self._arrival_debt -= arrivals
        return arrivals

    def _spawn_entrant(self) -> Actor:
        """A new application + its user community joining the network.

        Entrants arrive "already embedded in an actor network of their
        own": the entrant has fresh (random) values and commits to the
        main technology anchor and to one existing actor.
        """
        self._entrant_counter += 1
        name = f"entrant{self._entrant_counter}"
        kinds = [ActorKind.APPLICATION, ActorKind.USER, ActorKind.CONTENT_PROVIDER]
        kind = kinds[self._entrant_counter % len(kinds)]
        entrant = Actor.make(
            name, kind,
            values=self.np_rng.uniform(-1.5, 1.5, DEFAULT_VALUE_DIMS),
            rng=self.np_rng,
        )
        self.network.add_actor(entrant)
        anchors = self.network.actors_of_kind(ActorKind.TECHNOLOGY)
        if anchors:
            self.network.commit(name, anchors[0].name, 0.4)
        existing = [a.name for a in self.network.actors if a.name != name]
        if existing:
            partner = self.rng.choice(sorted(existing))
            if partner != name and not self.network.has_commitment(name, partner):
                self.network.commit(name, partner, 0.3)
        return entrant

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    #: Rounds of arrival history considered when testing for freezing;
    #: a single quiet round is weather, a quiet window is climate.
    FREEZE_WINDOW = 5

    def step(self) -> ChurnRecord:
        arrivals = self._sample_arrivals()
        for _ in range(arrivals):
            self._spawn_entrant()
        for _ in range(self.steps_per_round):
            self.alignment.step()
        window = [r.arrivals for r in self.history[-(self.FREEZE_WINDOW - 1):]]
        recent = sum(window) + arrivals
        window_full = len(self.history) >= self.FREEZE_WINDOW - 1
        record = ChurnRecord(
            round_index=len(self.history),
            arrivals=arrivals,
            n_actors=len(self.network.actors),
            durability=durability(self.network),
            changeability=changeability(self.network),
            value_variance=self.network.value_variance(),
            frozen=window_full and is_frozen(self.network, recent_arrivals=recent),
        )
        self.history.append(record)
        return record

    def run(self, rounds: int) -> List[ChurnRecord]:
        for _ in range(rounds):
            self.step()
        return self.history

    def final_changeability(self) -> float:
        if not self.history:
            return changeability(self.network)
        return self.history[-1].changeability

    def froze_at(self) -> Optional[int]:
        """First round at which the network was frozen, if any."""
        for record in self.history:
            if record.frozen:
                return record.round_index
        return None
