"""The actor network: actors joined by commitments.

"We see this whole network becoming more durable to the extent that the
actors commit to each other, with the technology as a central anchor in
this network" (§II-A). Commitments are weighted undirected edges; their
strength grows as committed actors stay aligned and decays when they
drift apart (handled by the alignment dynamics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import numpy as np

from ..errors import ActorNetworkError
from .actors import Actor, ActorKind, value_distance

__all__ = ["Commitment", "ActorNetwork"]


@dataclass
class Commitment:
    """A weighted tie between two actors."""

    a: str
    b: str
    strength: float = 0.5

    def key(self) -> Tuple[str, str]:
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


class ActorNetwork:
    """A mutable graph of actors and commitments."""

    def __init__(self) -> None:
        self._actors: Dict[str, Actor] = {}
        self._commitments: Dict[Tuple[str, str], Commitment] = {}
        self._adjacency: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Actors
    # ------------------------------------------------------------------
    def add_actor(self, actor: Actor) -> Actor:
        if actor.name in self._actors:
            raise ActorNetworkError(f"duplicate actor {actor.name!r}")
        self._actors[actor.name] = actor
        self._adjacency[actor.name] = set()
        return actor

    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise ActorNetworkError(f"unknown actor {name!r}") from None

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def remove_actor(self, name: str) -> None:
        self.actor(name)
        for other in list(self._adjacency[name]):
            self.remove_commitment(name, other)
        del self._adjacency[name]
        del self._actors[name]

    @property
    def actors(self) -> List[Actor]:
        return [self._actors[k] for k in sorted(self._actors)]

    def actors_of_kind(self, kind: ActorKind) -> List[Actor]:
        return [a for a in self.actors if a.kind is kind]

    def human_actors(self) -> List[Actor]:
        return [a for a in self.actors if a.human]

    def technology_actors(self) -> List[Actor]:
        return [a for a in self.actors if not a.human]

    # ------------------------------------------------------------------
    # Commitments
    # ------------------------------------------------------------------
    def commit(self, a: str, b: str, strength: float = 0.5) -> Commitment:
        """Create or strengthen a commitment between two actors."""
        self.actor(a)
        self.actor(b)
        if a == b:
            raise ActorNetworkError(f"actor {a!r} cannot commit to itself")
        if not 0.0 < strength <= 1.0:
            raise ActorNetworkError(f"strength must be in (0, 1], got {strength}")
        key = (a, b) if a <= b else (b, a)
        existing = self._commitments.get(key)
        if existing is not None:
            existing.strength = min(1.0, max(existing.strength, strength))
            return existing
        commitment = Commitment(a=key[0], b=key[1], strength=strength)
        self._commitments[key] = commitment
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        return commitment

    def commitment(self, a: str, b: str) -> Commitment:
        key = (a, b) if a <= b else (b, a)
        try:
            return self._commitments[key]
        except KeyError:
            raise ActorNetworkError(f"no commitment {a!r}-{b!r}") from None

    def has_commitment(self, a: str, b: str) -> bool:
        key = (a, b) if a <= b else (b, a)
        return key in self._commitments

    def remove_commitment(self, a: str, b: str) -> None:
        commitment = self.commitment(a, b)
        del self._commitments[commitment.key()]
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)

    @property
    def commitments(self) -> List[Commitment]:
        return [self._commitments[k] for k in sorted(self._commitments)]

    def neighbors(self, name: str) -> List[str]:
        self.actor(name)
        return sorted(self._adjacency[name])

    def degree(self, name: str) -> int:
        return len(self._adjacency[self.actor(name).name])

    def commitment_weight(self, name: str) -> float:
        """Total commitment strength incident to an actor."""
        self.actor(name)
        return sum(
            c.strength for c in self._commitments.values()
            if name in (c.a, c.b)
        )

    # ------------------------------------------------------------------
    # Aggregate structure
    # ------------------------------------------------------------------
    def mean_pairwise_distance(self) -> float:
        """Mean value distance across committed pairs (alignment gauge)."""
        if not self._commitments:
            return 0.0
        total = 0.0
        for commitment in self._commitments.values():
            total += value_distance(self.actor(commitment.a), self.actor(commitment.b))
        return total / len(self._commitments)

    def value_variance(self) -> float:
        """Total variance of actor values (0 when fully harmonized)."""
        if len(self._actors) < 2:
            return 0.0
        matrix = np.stack([a.values for a in self.actors])
        return float(matrix.var(axis=0).sum())

    def components(self) -> List[Set[str]]:
        """Connected components of the commitment graph."""
        seen: Set[str] = set()
        result: List[Set[str]] = []
        for name in sorted(self._actors):
            if name in seen:
                continue
            component = {name}
            frontier = [name]
            while frontier:
                current = frontier.pop()
                for neighbor in self._adjacency[current]:
                    if neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            seen |= component
            result.append(component)
        return result
