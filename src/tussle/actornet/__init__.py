"""Actor-network theory substrate (§II-A, §II-C).

Actors (human and nonhuman) with value vectors, commitments that align
them, durability/changeability/freezing metrics, entrant churn, and the
Christensen disruptive-entry scenario.
"""

from .actors import DEFAULT_VALUE_DIMS, Actor, ActorKind, value_distance
from .network import ActorNetwork, Commitment
from .alignment import AlignmentConfig, AlignmentDynamics
from .durability import changeability, cost_to_change, durability, is_frozen
from .churn import ChurnRecord, ChurnSimulation, seed_internet_network
from .disruption import DisruptionOutcome, DisruptionScenario, EntryStrategy
from .analysis import (
    anchor_scores,
    central_anchor,
    fragmentation_if_removed,
    technology_is_central_anchor,
    to_networkx,
)
from .collision import CollisionResult, collide, merge_networks

__all__ = [
    "DEFAULT_VALUE_DIMS", "Actor", "ActorKind", "value_distance",
    "ActorNetwork", "Commitment",
    "AlignmentConfig", "AlignmentDynamics",
    "changeability", "cost_to_change", "durability", "is_frozen",
    "ChurnRecord", "ChurnSimulation", "seed_internet_network",
    "DisruptionOutcome", "DisruptionScenario", "EntryStrategy",
    "anchor_scores", "central_anchor", "fragmentation_if_removed",
    "technology_is_central_anchor", "to_networkx",
    "CollisionResult", "collide", "merge_networks",
]
