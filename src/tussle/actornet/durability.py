"""Durability, rigidity and freezing of actor networks.

"Technology is Society made Durable" (Latour, §II-A) — and "the network
gets harder to change as it grows up." This module turns those claims into
metrics:

* :func:`durability` — how locked-in the network is: strong commitments
  and harmonized values mean high durability;
* :func:`cost_to_change` — effort to replace a technology actor: every
  committed neighbour must re-align (sum of incident commitment strengths,
  weighted by how far the replacement's values sit from the neighbours');
* :func:`is_frozen` — the paper's §II-C prediction operationalized: a
  network freezes when values have harmonized (low variance) AND no new
  actors are arriving.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ActorNetworkError
from .actors import Actor
from .network import ActorNetwork

__all__ = ["durability", "changeability", "cost_to_change", "is_frozen"]


def durability(network: ActorNetwork) -> float:
    """Durability in [0, 1]: commitment strength x value harmony.

    0 for an empty or fully-unaligned network; approaches 1 when every
    actor is strongly committed and values have converged.
    """
    commitments = network.commitments
    if not commitments:
        return 0.0
    mean_strength = sum(c.strength for c in commitments) / len(commitments)
    # Harmony: 1 when committed pairs coincide in value space.
    mean_distance = network.mean_pairwise_distance()
    harmony = 1.0 / (1.0 + mean_distance)
    # Coverage: fraction of actors with at least one commitment.
    actors = network.actors
    if not actors:
        return 0.0
    covered = sum(1 for a in actors if network.degree(a.name) > 0) / len(actors)
    return mean_strength * harmony * covered


def changeability(network: ActorNetwork) -> float:
    """1 - durability: how open the network still is to change."""
    return 1.0 - durability(network)


def cost_to_change(network: ActorNetwork, technology_name: str,
                   replacement: Optional[Actor] = None) -> float:
    """Cost of replacing a technology actor.

    Every neighbour committed to the technology must re-align. The cost is
    the sum over neighbours of (commitment strength x re-alignment
    distance), where the distance is to the replacement's values (or, when
    no replacement is given, a unit re-alignment per unit strength).
    """
    technology = network.actor(technology_name)
    if technology.human:
        raise ActorNetworkError(
            f"{technology_name!r} is a human actor; cost_to_change applies to technology"
        )
    total = 0.0
    for neighbor_name in network.neighbors(technology_name):
        strength = network.commitment(technology_name, neighbor_name).strength
        if replacement is not None:
            neighbor = network.actor(neighbor_name)
            distance = float(np.linalg.norm(neighbor.values - replacement.values))
        else:
            distance = 1.0
        total += strength * distance
    return total


def is_frozen(
    network: ActorNetwork,
    recent_arrivals: int,
    variance_threshold: float = 0.05,
    strength_threshold: float = 0.7,
) -> bool:
    """Has the actor network frozen (§II-C)?

    "When new applications and user groups cease to come to the Internet,
    and the set of actors... becomes fixed, then we can assume that the
    tensions and tussles in the network will begin to be resolved, and
    this will imply a freezing of the actor network."

    Frozen = no recent arrivals AND values harmonized AND commitments
    strong.
    """
    if recent_arrivals > 0:
        return False
    commitments = network.commitments
    if not commitments:
        return False
    mean_strength = sum(c.strength for c in commitments) / len(commitments)
    return (network.value_variance() <= variance_threshold
            and mean_strength >= strength_threshold)
