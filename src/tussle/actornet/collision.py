"""Collision of actor networks (§II-C): the VoIP story.

"When the creation of voice over IP (VoIP) causes the Internet to collide
with the 'telephone system,' the key issue is not a collision of
technologies, but a collision between large, heterogeneous actor
networks." Entrants "most potent as actors" are those that "come to the
Internet already embedded in an actor network of their own, perhaps a
very solidified one."

:func:`collide` merges two actor networks through a set of bridge
commitments (the new application that spans both worlds) and runs the
alignment dynamics on the merged whole. The measurements:

* **turbulence** — commitments dissolved during the post-collision
  settling (the regulatory/business fights);
* **value drift** — how far each side's actors moved from their
  pre-collision positions (who had to change more);
* **churn** of the merged network's changeability — collisions reopen a
  settled network to change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ActorNetworkError
from .actors import Actor
from .alignment import AlignmentConfig, AlignmentDynamics
from .durability import changeability, durability
from .network import ActorNetwork

__all__ = ["CollisionResult", "merge_networks", "collide"]


@dataclass
class CollisionResult:
    """What the collision did to the merged network."""

    dissolved_commitments: int
    drift_side_a: float
    drift_side_b: float
    durability_before: Tuple[float, float]
    durability_after: float
    changeability_after: float

    @property
    def turbulent(self) -> bool:
        """Did the collision actually break ties?"""
        return self.dissolved_commitments > 0

    def softer_side(self) -> str:
        """Which side's actors moved more (yielded) in value space."""
        return "a" if self.drift_side_a > self.drift_side_b else "b"


def merge_networks(a: ActorNetwork, b: ActorNetwork) -> ActorNetwork:
    """A new network containing both networks' actors and commitments.

    Actor names must not overlap; actors are shared by reference so the
    merged dynamics move the same objects.
    """
    overlap = {x.name for x in a.actors} & {x.name for x in b.actors}
    if overlap:
        raise ActorNetworkError(f"actor names overlap: {sorted(overlap)}")
    merged = ActorNetwork()
    for source in (a, b):
        for actor in source.actors:
            merged.add_actor(actor)
        for commitment in source.commitments:
            merged.commit(commitment.a, commitment.b, commitment.strength)
    return merged


def collide(
    a: ActorNetwork,
    b: ActorNetwork,
    bridges: Sequence[Tuple[str, str]],
    bridge_strength: float = 0.4,
    settle_rounds: int = 60,
    config: Optional[AlignmentConfig] = None,
) -> Tuple[ActorNetwork, CollisionResult]:
    """Collide two actor networks through bridge commitments.

    ``bridges`` lists (actor-in-a, actor-in-b) pairs — the VoIP
    application linking Internet users to telephone regulators, carriers
    to ISPs, and so on. Returns the merged network and the measurements.
    """
    durability_a = durability(a)
    durability_b = durability(b)
    names_a = [actor.name for actor in a.actors]
    names_b = [actor.name for actor in b.actors]

    merged = merge_networks(a, b)
    for left, right in bridges:
        if not (merged.has_actor(left) and merged.has_actor(right)):
            raise ActorNetworkError(f"bridge ({left!r}, {right!r}) names unknown actors")
        merged.commit(left, right, bridge_strength)

    before_positions = {
        actor.name: actor.values.copy() for actor in merged.actors
    }
    dynamics = AlignmentDynamics(merged, config=config)
    dynamics.run(settle_rounds)

    def drift(names: List[str]) -> float:
        if not names:
            return 0.0
        total = 0.0
        counted = 0
        for name in names:
            if merged.has_actor(name):
                total += float(np.linalg.norm(
                    merged.actor(name).values - before_positions[name]))
                counted += 1
        return total / counted if counted else 0.0

    result = CollisionResult(
        dissolved_commitments=len(dynamics.dissolved),
        drift_side_a=drift(names_a),
        drift_side_b=drift(names_b),
        durability_before=(durability_a, durability_b),
        durability_after=durability(merged),
        changeability_after=changeability(merged),
    )
    return merged, result
