"""Alignment dynamics: actors harmonizing to common interfaces.

"It is the whole actor network... that becomes stable, as all the human
and nonhuman actors align and harmonize themselves to common
(socio-technical) interfaces" (§II-A).

Each step, committed actors pull one another's values together with force
proportional to commitment strength, damped by each actor's inertia
(technology moves least — it is the anchor). Commitments between actors
that stay aligned strengthen; commitments under sustained value tension
weaken and may dissolve, which is how "tussles... have not been driven
out" keeps a network changeable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .actors import value_distance
from .network import ActorNetwork

__all__ = ["AlignmentConfig", "AlignmentDynamics"]


@dataclass
class AlignmentConfig:
    """Tuning knobs for the alignment process.

    Attributes
    ----------
    pull_rate:
        Base fraction of the value gap closed per step at strength 1.
    strengthen_rate / weaken_rate:
        Commitment strength change per step when the pair is within /
        beyond ``tension_distance``.
    dissolve_threshold:
        Commitments below this strength dissolve.
    tension_distance:
        Value distance above which a commitment is "in tension".
    """

    pull_rate: float = 0.2
    strengthen_rate: float = 0.02
    weaken_rate: float = 0.05
    dissolve_threshold: float = 0.05
    tension_distance: float = 0.8


class AlignmentDynamics:
    """Runs alignment steps over an :class:`ActorNetwork`."""

    def __init__(self, network: ActorNetwork,
                 config: Optional[AlignmentConfig] = None):
        self.network = network
        self.config = config or AlignmentConfig()
        self.steps_run = 0
        self.dissolved: List[Tuple[str, str]] = []

    def step(self) -> float:
        """One synchronous alignment step.

        Returns the total value movement this step (a convergence gauge).
        """
        config = self.config
        actors = self.network.actors
        deltas: Dict[str, np.ndarray] = {
            a.name: np.zeros_like(a.values) for a in actors
        }
        weights: Dict[str, float] = {a.name: 0.0 for a in actors}
        for commitment in self.network.commitments:
            actor_a = self.network.actor(commitment.a)
            actor_b = self.network.actor(commitment.b)
            gap = actor_b.values - actor_a.values
            deltas[actor_a.name] += commitment.strength * gap
            deltas[actor_b.name] -= commitment.strength * gap
            weights[actor_a.name] += commitment.strength
            weights[actor_b.name] += commitment.strength

        movement = 0.0
        for actor in actors:
            weight = weights[actor.name]
            if weight <= 0:
                continue
            step_vector = (
                config.pull_rate * (1.0 - actor.inertia) * deltas[actor.name] / weight
            )
            actor.values = actor.values + step_vector
            movement += float(np.linalg.norm(step_vector))

        # Strength adaptation and dissolution.
        for commitment in list(self.network.commitments):
            distance = value_distance(
                self.network.actor(commitment.a), self.network.actor(commitment.b)
            )
            if distance <= config.tension_distance:
                commitment.strength = min(1.0, commitment.strength + config.strengthen_rate)
            else:
                commitment.strength -= config.weaken_rate
                if commitment.strength < config.dissolve_threshold:
                    self.dissolved.append((commitment.a, commitment.b))
                    self.network.remove_commitment(commitment.a, commitment.b)

        self.steps_run += 1
        return movement

    def run(self, steps: int, settle_tolerance: Optional[float] = None) -> int:
        """Run up to ``steps`` alignment steps.

        Stops early when total movement drops below ``settle_tolerance``.
        Returns the number of steps actually run.
        """
        for index in range(1, steps + 1):
            movement = self.step()
            if settle_tolerance is not None and movement < settle_tolerance:
                return index
        return steps
