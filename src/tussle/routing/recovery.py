"""Route re-convergence guarded by a circuit breaker.

When a link flaps, recomputing forwarding tables on every transition is
its own failure mode: a rapidly flapping link can make the control plane
burn all its effort re-converging (the BGP route-flap damping problem).
:class:`RouteRecovery` wraps the engine's table recomputation in a
:class:`~tussle.resil.CircuitBreaker` on simulated time — repeated
re-convergence *failures* (the destination still unreachable afterwards)
open the circuit and suppress further recomputation until the damping
window passes.

Events are counted under the ``resil`` obs metrics scope
(``reconvergences``, ``reconvergence_failures``,
``reconvergence_suppressed``) so experiments can report how much control
-plane work a fault process induced.
"""

from __future__ import annotations

from typing import Optional

from ..netsim.forwarding import ForwardingEngine
from ..netsim.packets import make_packet
from ..obs import current
from ..resil.backoff import CircuitBreaker

__all__ = ["RouteRecovery"]


class RouteRecovery:
    """Re-converge forwarding tables after topology faults, with damping.

    Parameters
    ----------
    engine:
        The forwarding engine whose tables are recomputed.
    breaker:
        Circuit breaker on simulated time; defaults to 3 consecutive
        failed re-convergences opening a 5-simulated-second window.
    """

    def __init__(self, engine: ForwardingEngine,
                 breaker: Optional[CircuitBreaker] = None):
        self.engine = engine
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=3, reset_timeout=5.0)
        self.reconvergences = 0
        self.suppressed = 0
        self.failures = 0

    def _scope(self):
        context = current()
        return (context.metrics.scope("resil")
                if context.metrics.enabled else None)

    def reconverge(self, now: float, probe: Optional[tuple] = None) -> bool:
        """Recompute shortest-path tables at simulated time ``now``.

        ``probe`` is an optional ``(src, dst)`` pair checked after
        recomputation; an undeliverable probe counts as a failed
        re-convergence and feeds the breaker.  Returns ``True`` if the
        recomputation ran (and the probe, if any, succeeded).
        """
        scope = self._scope()
        if not self.breaker.allow(now):
            self.suppressed += 1
            if scope is not None:
                scope.counter("reconvergence_suppressed").inc()
            return False
        self.engine.install_shortest_path_tables()
        self.reconvergences += 1
        if scope is not None:
            scope.counter("reconvergences").inc()
        if probe is not None:
            src, dst = probe
            receipt = self.engine.send(make_packet(src, dst))
            if not receipt.delivered:
                self.failures += 1
                self.breaker.record_failure(now)
                if scope is not None:
                    scope.counter("reconvergence_failures").inc()
                return False
        self.breaker.record_success()
        return True
