"""Routing substrate: link-state, path-vector, source routing, overlays.

The routing package reifies the control-point tussle of §V-A-4: the same
AS-level topology can be routed under provider control (path-vector with
Gao–Rexford policy), user control (payment-aware source routing), or the
user's workaround (overlays) — and the visibility module measures what
each design exposes.
"""

from .base import ControlPoint, Route, RoutingProtocol
from .linkstate import LinkStateDatabase, LinkStateRouting
from .policies import (
    GaoRexfordPolicy,
    NeighborClass,
    OpenPolicy,
    RoutingPolicy,
    classify_neighbor,
    is_valley_free,
)
from .pathvector import PathVectorRouting
from .sourcerouting import (
    RouteAttempt,
    SourceRoutingSystem,
    TransitTerms,
    valley_free_paths,
)
from .overlay import OverlayNetwork, OverlayPath
from .recovery import RouteRecovery
from .visibility import (
    TUSSLE_INTERFACE_PROPERTIES,
    ChoiceVisibilityReport,
    linkstate_visibility,
    pathvector_visibility,
)

__all__ = [
    "ControlPoint", "Route", "RoutingProtocol",
    "LinkStateDatabase", "LinkStateRouting",
    "GaoRexfordPolicy", "NeighborClass", "OpenPolicy", "RoutingPolicy",
    "classify_neighbor", "is_valley_free",
    "PathVectorRouting",
    "RouteAttempt", "SourceRoutingSystem", "TransitTerms", "valley_free_paths",
    "OverlayNetwork", "OverlayPath",
    "RouteRecovery",
    "TUSSLE_INTERFACE_PROPERTIES", "ChoiceVisibilityReport",
    "linkstate_visibility", "pathvector_visibility",
]
