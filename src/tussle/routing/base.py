"""Shared routing abstractions.

A routing protocol, for our purposes, is anything that produces
:class:`Route` objects and (for node-level protocols) forwarding tables.
The base module also defines :class:`ControlPoint` — *who* gets to make
the path decision — because the paper's §V-A-4 frames the BGP-vs-user-
routing history precisely as a fight over that control point.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Tuple

from ..errors import RoutingError

__all__ = ["ControlPoint", "Route", "RoutingProtocol"]


class ControlPoint(Enum):
    """Who selects the path a packet takes.

    The paper: "An over-generalization of the tussle is that service
    providers exercise control over routing; end-users control selection
    of other end-points" (§IV-B footnote), and §V-A-4 recounts the two
    competing proposals — user control vs provider control — of which
    provider control (BGP) won.
    """

    PROVIDER = "provider"
    USER = "user"
    MIXED = "mixed"


@dataclass(frozen=True)
class Route:
    """A route at AS granularity.

    Attributes
    ----------
    destination:
        The destination AS number.
    path:
        AS path, first element is the AS using the route, last is the
        destination.
    selected_by:
        The control point that chose this route.
    """

    destination: int
    path: Tuple[int, ...]
    selected_by: ControlPoint = ControlPoint.PROVIDER

    def __post_init__(self) -> None:
        if not self.path:
            raise RoutingError("route path cannot be empty")
        if self.path[-1] != self.destination:
            raise RoutingError(
                f"path {self.path} does not end at destination {self.destination}"
            )
        if len(set(self.path)) != len(self.path):
            raise RoutingError(f"path {self.path} contains a loop")

    @property
    def length(self) -> int:
        """Number of AS hops (path length minus one)."""
        return len(self.path) - 1

    @property
    def next_hop(self) -> int:
        """Next AS after the local one (destination itself for local routes)."""
        return self.path[1] if len(self.path) > 1 else self.path[0]

    def through(self, asn: int) -> bool:
        """Does the route transit the given AS (excluding endpoints)?"""
        return asn in self.path[1:-1]


class RoutingProtocol:
    """Interface implemented by the concrete protocols.

    ``converge()`` runs the protocol to a fixed point; ``routes(asn)``
    returns the selected route per destination for that AS.
    """

    control_point: ControlPoint = ControlPoint.PROVIDER

    def converge(self) -> int:  # pragma: no cover - abstract
        """Run to fixed point; returns the number of iterations used."""
        raise NotImplementedError

    def routes(self, asn: int) -> Dict[int, Route]:  # pragma: no cover - abstract
        raise NotImplementedError

    def route(self, src: int, dst: int) -> Optional[Route]:
        """Convenience: the selected route from src to dst, if any."""
        return self.routes(src).get(dst)
