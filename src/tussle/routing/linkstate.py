"""Link-state routing (OSPF-like) at node granularity.

The paper contrasts link-state and path-vector protocols on *visibility*
grounds: "A link-state routing protocol requires that everyone export his
link costs, while a path vector protocol makes it harder to see what the
internal choices are" (§IV-C). This implementation therefore exposes the
full link-state database to every participant — the property
:mod:`tussle.routing.visibility` measures.

The protocol computes shortest paths by Dijkstra over announced link costs
and produces forwarding tables for the node-level
:class:`~tussle.netsim.forwarding.ForwardingEngine`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import RoutingError
from ..netsim.topology import Network
from ..obs.runtime import current as _obs_current

__all__ = ["LinkStateDatabase", "LinkStateRouting"]


@dataclass(frozen=True)
class _Lsa:
    """A link-state advertisement: one link and its cost."""

    a: str
    b: str
    cost: float


class LinkStateDatabase:
    """The flooded database every router sees in full.

    Full visibility is the point: :meth:`visible_to` returns the same set
    for every participant.
    """

    def __init__(self) -> None:
        self._lsas: Dict[Tuple[str, str], _Lsa] = {}

    def announce(self, a: str, b: str, cost: float) -> None:
        if cost < 0:
            raise RoutingError(f"negative link cost {cost} for {a}-{b}")
        key = (a, b) if a <= b else (b, a)
        self._lsas[key] = _Lsa(key[0], key[1], cost)

    def withdraw(self, a: str, b: str) -> None:
        key = (a, b) if a <= b else (b, a)
        self._lsas.pop(key, None)

    def links(self) -> List[Tuple[str, str, float]]:
        return [(l.a, l.b, l.cost) for l in self._lsas.values()]

    def visible_to(self, node: str) -> List[Tuple[str, str, float]]:
        """What this node can see — everything, by design."""
        return self.links()

    def __len__(self) -> int:
        return len(self._lsas)


class LinkStateRouting:
    """OSPF-like shortest-path routing over a :class:`Network`.

    Parameters
    ----------
    network:
        Topology whose operational links are flooded into the database.

    Usage
    -----
    >>> from tussle.netsim.topology import line_topology
    >>> proto = LinkStateRouting(line_topology(3))
    >>> proto.converge()
    1
    >>> proto.forwarding_table("n0")["n2"]
    'n1'
    """

    def __init__(self, network: Network):
        self.network = network
        self.database = LinkStateDatabase()
        self._tables: Dict[str, Dict[str, str]] = {}
        self._converged = False

    def converge(self) -> int:
        """Flood the current topology and recompute all tables.

        Link-state convergence is a single flood + local SPF, so this
        always "converges" in one iteration.
        """
        ctx = _obs_current()
        trace = ctx.tracer if ctx.tracer.enabled else None
        span = (trace.begin("routing.linkstate", "converge", 0.0)
                if trace is not None else None)
        self.database = LinkStateDatabase()
        for link in self.network.links:
            if link.up:
                self.database.announce(link.a, link.b, link.cost)
        self._tables = {}
        for node in self.network.node_names():
            self._tables[node] = self._spf(node)
        self._converged = True
        if ctx.metrics.enabled:
            scope = ctx.metrics.scope("routing.linkstate")
            scope.counter("floods").inc()
            scope.counter("spf_runs").inc(len(self._tables))
            scope.counter("lsas_announced").inc(len(self.database))
        if span is not None:
            span.end(1.0, lsas=len(self.database),
                     spf_runs=len(self._tables))
        return 1

    def _spf(self, source: str) -> Dict[str, str]:
        """Dijkstra from ``source``; returns dst -> next hop."""
        adjacency: Dict[str, List[Tuple[str, float]]] = {}
        for a, b, cost in self.database.links():
            adjacency.setdefault(a, []).append((b, cost))
            adjacency.setdefault(b, []).append((a, cost))
        dist: Dict[str, float] = {source: 0.0}
        first_hop: Dict[str, Optional[str]] = {source: None}
        heap: List[Tuple[float, str, Optional[str]]] = [(0.0, source, None)]
        visited: Set[str] = set()
        while heap:
            d, node, hop = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            first_hop[node] = hop
            for neighbor, cost in sorted(adjacency.get(node, [])):
                nd = d + cost
                if neighbor not in dist or nd < dist[neighbor]:
                    dist[neighbor] = nd
                    next_first = neighbor if hop is None else hop
                    heapq.heappush(heap, (nd, neighbor, next_first))
        table: Dict[str, str] = {}
        for dst, hop in first_hop.items():
            if dst != source and hop is not None:
                table[dst] = hop
        return table

    def forwarding_table(self, node: str) -> Dict[str, str]:
        if not self._converged:
            raise RoutingError("call converge() before reading tables")
        try:
            return dict(self._tables[node])
        except KeyError:
            raise RoutingError(f"unknown node {node!r}") from None

    def all_tables(self) -> Dict[str, Dict[str, str]]:
        if not self._converged:
            raise RoutingError("call converge() before reading tables")
        return {node: dict(table) for node, table in self._tables.items()}

    def path(self, src: str, dst: str) -> Optional[List[str]]:
        """Reconstruct the full path src -> dst from the tables."""
        if not self._converged:
            raise RoutingError("call converge() before reading paths")
        if src == dst:
            return [src]
        path = [src]
        current = src
        for _ in range(len(self._tables) + 1):
            table = self._tables.get(current, {})
            nxt = table.get(dst)
            if nxt is None:
                return None
            path.append(nxt)
            if nxt == dst:
                return path
            current = nxt
        raise RoutingError(f"loop detected computing path {src}->{dst}")
