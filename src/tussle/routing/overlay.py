"""Overlay networks: routing around the providers.

"Since source routes do not work effectively today, researchers propose
even more indirect ways of getting around provider-selected routing, such
as exploiting hosts as intermediate forwarding agents. (This kind of
overlay network is a tool in the tussle, certainly.)" (§V-A-4). The paper
also asks for overlay architectures to "be evaluated for their ability to
isolate tussles and provide choice."

:class:`OverlayNetwork` (RON-like, after the cited Resilient Overlay
Networks) relays traffic through member hosts, composing underlay routes.
It gives users path choice *without* provider cooperation — and, as the
paper notes, without compensating the providers whose links it rides,
which :meth:`uncompensated_transit` quantifies (the "economic distortion"
the paper asks to compare against integrated schemes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .base import ControlPoint
from .pathvector import PathVectorRouting

__all__ = ["OverlayNetwork", "OverlayPath"]


@dataclass(frozen=True)
class OverlayPath:
    """A path through overlay relays, with the underlay AS path it implies.

    ``relays`` lists member ASes traversed in overlay order (endpoints
    included); ``underlay_path`` is the concatenated provider-level path
    actually ridden.
    """

    relays: Tuple[int, ...]
    underlay_path: Tuple[int, ...]

    @property
    def overlay_hops(self) -> int:
        return len(self.relays) - 1


class OverlayNetwork:
    """Host-relay overlay over provider-selected (path-vector) routing.

    Parameters
    ----------
    underlay:
        A converged :class:`~tussle.routing.pathvector.PathVectorRouting`
        providing the provider-selected routes between members.
    members:
        ASes hosting overlay relay nodes.
    """

    control_point = ControlPoint.USER

    def __init__(self, underlay: PathVectorRouting, members: Sequence[int]):
        self.underlay = underlay
        self.members: List[int] = sorted(set(members))
        for asn in self.members:
            underlay.network.autonomous_system(asn)

    # ------------------------------------------------------------------
    # Path construction
    # ------------------------------------------------------------------
    def direct_path(self, src: int, dst: int) -> Optional[OverlayPath]:
        """The zero-relay path: just the underlay route."""
        path = self.underlay.as_path(src, dst)
        if path is None:
            return None
        return OverlayPath(relays=(src, dst), underlay_path=path)

    def one_relay_paths(self, src: int, dst: int) -> List[OverlayPath]:
        """All paths bouncing through exactly one member relay."""
        results: List[OverlayPath] = []
        for relay in self.members:
            if relay in (src, dst):
                continue
            leg1 = self.underlay.as_path(src, relay)
            leg2 = self.underlay.as_path(relay, dst)
            if leg1 is None or leg2 is None:
                continue
            underlay_path = leg1 + leg2[1:]
            results.append(OverlayPath(relays=(src, relay, dst),
                                       underlay_path=underlay_path))
        return results

    def all_paths(self, src: int, dst: int) -> List[OverlayPath]:
        """Direct plus one-relay paths, deterministic order."""
        paths: List[OverlayPath] = []
        direct = self.direct_path(src, dst)
        if direct is not None:
            paths.append(direct)
        paths.extend(self.one_relay_paths(src, dst))
        return paths

    def path_choice_count(self, src: int, dst: int) -> int:
        """How many *distinct underlay* paths the overlay offers the user."""
        return len({p.underlay_path for p in self.all_paths(src, dst)})

    # ------------------------------------------------------------------
    # Resilience (the RON use case)
    # ------------------------------------------------------------------
    def reachable_via_overlay(self, src: int, dst: int) -> bool:
        """Can src reach dst either directly or through any single relay?"""
        return bool(self.all_paths(src, dst))

    # ------------------------------------------------------------------
    # Economic distortion
    # ------------------------------------------------------------------
    def uncompensated_transit(self, src: int, dst: int) -> Dict[int, int]:
        """Per-AS count of overlay paths that transit it without payment.

        Overlay traffic rides business relationships negotiated for
        *member* traffic; transit ASes on the composed path carry src->dst
        traffic they never contracted for. This is the paper's "economic
        distortion" of overlays, measured per AS.
        """
        counts: Dict[int, int] = {}
        for path in self.all_paths(src, dst):
            for asn in path.underlay_path[1:-1]:
                counts[asn] = counts.get(asn, 0) + 1
        return counts
