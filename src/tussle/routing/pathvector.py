"""Path-vector (BGP-like) inter-domain routing with pluggable policy.

The protocol the providers "had the economic incentive to drive the
engineering and standardization of" (§V-A-4). Each AS selects one best
route per destination under its :class:`~tussle.routing.policies.RoutingPolicy`
and exports routes subject to the policy's export rule. Convergence is by
synchronous Bellman-Ford-style iteration to a fixed point, which is
guaranteed for Gao–Rexford-compliant policies.

Visibility: an AS sees only the routes its neighbours chose to announce to
it — the property the paper contrasts with link-state routing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import RoutingError
from ..netsim.topology import Network
from ..obs.runtime import current as _obs_current
from .base import ControlPoint, Route, RoutingProtocol
from .policies import GaoRexfordPolicy, RoutingPolicy

__all__ = ["PathVectorRouting"]


class PathVectorRouting(RoutingProtocol):
    """BGP-like routing at AS granularity.

    Parameters
    ----------
    network:
        Topology carrying the AS-level business graph.
    policy:
        Route preference / export policy, defaulting to Gao–Rexford.
    max_iterations:
        Safety bound on convergence loops.
    """

    control_point = ControlPoint.PROVIDER

    def __init__(
        self,
        network: Network,
        policy: Optional[RoutingPolicy] = None,
        max_iterations: int = 1000,
    ):
        self.network = network
        self.policy = policy or GaoRexfordPolicy()
        self.max_iterations = max_iterations
        # asn -> destination -> selected Route
        self._rib: Dict[int, Dict[int, Route]] = {}
        # what each AS has announced to each neighbour (for visibility study)
        self.announcements: Dict[Tuple[int, int], Dict[int, Route]] = {}
        # array-backed RIB when converge_fast() was used instead
        self._fast = None
        self._converged = False
        self.iterations_used = 0

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def converge(self) -> int:
        """Iterate announce/select to a fixed point.

        Returns the number of iterations needed. Raises
        :class:`RoutingError` if the bound is exceeded (policy dispute
        wheel — cannot happen under Gao–Rexford).
        """
        asns = [a.asn for a in self.network.ases]
        self._rib = {asn: {asn: Route(destination=asn, path=(asn,))} for asn in asns}
        self.announcements = {}
        self._fast = None
        ctx = _obs_current()
        trace = ctx.tracer if ctx.tracer.enabled else None
        metrics = (ctx.metrics.scope("routing.pathvector")
                   if ctx.metrics.enabled else None)
        span = (trace.begin("routing.pathvector", "converge", 0.0,
                            ases=len(asns))
                if trace is not None else None)
        total_announced = 0

        for iteration in range(1, self.max_iterations + 1):
            changed = False
            # Build this round's announcements from the current RIBs.
            round_announcements: Dict[Tuple[int, int], Dict[int, Route]] = {}
            for asn in asns:
                for neighbor in sorted(self.network.as_neighbors(asn)):
                    exported: Dict[int, Route] = {}
                    for dest, route in self._rib[asn].items():
                        if neighbor in route.path:
                            continue  # loop prevention
                        if self.policy.may_export(self.network, asn, route, neighbor):
                            exported[dest] = route
                    round_announcements[(asn, neighbor)] = exported
            # Each AS selects its best route per destination from its own
            # prefix plus all received announcements.
            for asn in asns:
                new_rib: Dict[int, Route] = {asn: Route(destination=asn, path=(asn,))}
                for neighbor in sorted(self.network.as_neighbors(asn)):
                    received = round_announcements.get((neighbor, asn), {})
                    for dest, route in received.items():
                        if asn in route.path:
                            continue
                        candidate = Route(
                            destination=dest,
                            path=(asn,) + route.path,
                            selected_by=ControlPoint.PROVIDER,
                        )
                        incumbent = new_rib.get(dest)
                        if incumbent is None:
                            new_rib[dest] = candidate
                        else:
                            new_rib[dest] = self.policy.prefer(
                                self.network, asn, incumbent, candidate
                            )
                if new_rib != self._rib[asn]:
                    changed = True
                self._rib[asn] = new_rib
            self.announcements = round_announcements
            announced = sum(len(routes)
                            for routes in round_announcements.values())
            total_announced += announced
            if trace is not None:
                trace.event("routing.pathvector", "iteration",
                            float(iteration), announcements=announced,
                            changed=changed)
            if metrics is not None:
                metrics.counter("iterations").inc()
                metrics.counter("announcements").inc(announced)
            if not changed:
                self._converged = True
                self.iterations_used = iteration
                if span is not None:
                    span.end(float(iteration), iterations=iteration,
                             announcements=total_announced)
                return iteration
        if span is not None:
            span.end(float(self.max_iterations), converged=False,
                     announcements=total_announced)
        raise RoutingError(
            f"path-vector routing failed to converge in {self.max_iterations} iterations"
        )

    def converge_fast(self, destinations: Optional[Tuple[int, ...]] = None) -> int:
        """Compute the same fixed point via the array-batched fast path.

        Delegates to :func:`tussle.scale.vrouting.converge_valley_free`,
        which exploits Gao-Rexford structure to reach the unique stable
        selection in three propagation phases instead of whole-RIB
        announce/select rounds — seconds, not minutes, at 10^3-10^4
        ASes.  Queries (``routes``/``as_path``/``reachable``/
        ``transit_load``/``reachability_matrix``) then read the array
        RIB; per-round ``announced_routes`` visibility is the one thing
        the fast path cannot answer, since it never materialises rounds.

        ``destinations`` restricts the RIB to those destination ASes
        (the 10^4-AS mode).  Only the default Gao-Rexford policy is
        eligible; bespoke policies need the scalar protocol.  Returns
        the number of propagation levels (the iteration-count analogue).
        """
        from ..scale.vrouting import converge_valley_free

        if type(self.policy) is not GaoRexfordPolicy:
            raise RoutingError(
                "converge_fast() implements the Gao-Rexford policy only; "
                f"{type(self.policy).__name__} needs the scalar converge()")
        self._rib = {}
        self.announcements = {}
        self._fast = converge_valley_free(self.network, destinations)
        self._converged = True
        self.iterations_used = self._fast.levels
        return self.iterations_used

    @property
    def fast_rib(self):
        """The array-backed RIB built by :meth:`converge_fast`.

        Consumers that run whole-RIB kernels (e.g. the peering layer's
        traffic-volume pass) read the
        :class:`~tussle.scale.vrouting.RibArrays` directly instead of
        issuing per-pair queries.  Raises :class:`RoutingError` when the
        protocol converged via the scalar path (or not at all) — the
        arrays only exist on the fast path.
        """
        self._check_converged()
        if self._fast is None:
            raise RoutingError(
                "fast_rib is only available after converge_fast(); the "
                "scalar converge() keeps a per-AS dict RIB instead")
        return self._fast

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def routes(self, asn: int) -> Dict[int, Route]:
        self._check_converged()
        if self._fast is not None:
            self._fast.index.of(asn)  # raises on unknown AS
            rib: Dict[int, Route] = {}
            for dst in self._fast.dest_asns:
                path = self._fast.as_path(asn, dst)
                if path is not None:
                    rib[dst] = Route(destination=dst, path=path,
                                     selected_by=ControlPoint.PROVIDER
                                     if len(path) > 1 else None)
            return rib
        try:
            return dict(self._rib[asn])
        except KeyError:
            raise RoutingError(f"unknown AS {asn}") from None

    def reachable(self, src: int, dst: int) -> bool:
        if self._fast is not None:
            self._check_converged()
            return self._fast.reachable(src, dst)
        return dst in self.routes(src)

    def as_path(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        if self._fast is not None:
            self._check_converged()
            return self._fast.as_path(src, dst)
        route = self.routes(src).get(dst)
        return route.path if route else None

    def announced_routes(self, frm: int, to: int) -> Dict[int, Route]:
        """What ``frm`` announced to ``to`` in the final round."""
        self._check_converged()
        if self._fast is not None:
            raise RoutingError(
                "per-round announcement visibility requires the scalar "
                "converge(); converge_fast() never materialises rounds")
        return dict(self.announcements.get((frm, to), {}))

    def transit_load(self, asn: int) -> int:
        """Number of (src, dst) selected routes transiting ``asn``."""
        self._check_converged()
        if self._fast is not None:
            return int(self._fast.transit_load()[self._fast.index.of(asn)])
        count = 0
        for src, rib in self._rib.items():
            if src == asn:
                continue
            for route in rib.values():
                if route.through(asn):
                    count += 1
        return count

    def reachability_matrix(self) -> Dict[Tuple[int, int], bool]:
        """(src, dst) -> reachable, over the converged destination set."""
        self._check_converged()
        asns = [a.asn for a in self.network.ases]
        if self._fast is not None:
            return {
                (s, d): self._fast.reachable(s, d)
                for s in asns
                for d in self._fast.dest_asns
                if s != d
            }
        return {
            (s, d): d in self._rib[s]
            for s in asns
            for d in asns
            if s != d
        }

    def _check_converged(self) -> None:
        if not self._converged:
            raise RoutingError("call converge() first")
