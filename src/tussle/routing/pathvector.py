"""Path-vector (BGP-like) inter-domain routing with pluggable policy.

The protocol the providers "had the economic incentive to drive the
engineering and standardization of" (§V-A-4). Each AS selects one best
route per destination under its :class:`~tussle.routing.policies.RoutingPolicy`
and exports routes subject to the policy's export rule. Convergence is by
synchronous Bellman-Ford-style iteration to a fixed point, which is
guaranteed for Gao–Rexford-compliant policies.

Visibility: an AS sees only the routes its neighbours chose to announce to
it — the property the paper contrasts with link-state routing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import RoutingError
from ..netsim.topology import Network
from ..obs.runtime import current as _obs_current
from .base import ControlPoint, Route, RoutingProtocol
from .policies import GaoRexfordPolicy, RoutingPolicy

__all__ = ["PathVectorRouting"]


class PathVectorRouting(RoutingProtocol):
    """BGP-like routing at AS granularity.

    Parameters
    ----------
    network:
        Topology carrying the AS-level business graph.
    policy:
        Route preference / export policy, defaulting to Gao–Rexford.
    max_iterations:
        Safety bound on convergence loops.
    """

    control_point = ControlPoint.PROVIDER

    def __init__(
        self,
        network: Network,
        policy: Optional[RoutingPolicy] = None,
        max_iterations: int = 1000,
    ):
        self.network = network
        self.policy = policy or GaoRexfordPolicy()
        self.max_iterations = max_iterations
        # asn -> destination -> selected Route
        self._rib: Dict[int, Dict[int, Route]] = {}
        # what each AS has announced to each neighbour (for visibility study)
        self.announcements: Dict[Tuple[int, int], Dict[int, Route]] = {}
        self._converged = False
        self.iterations_used = 0

    # ------------------------------------------------------------------
    # Convergence
    # ------------------------------------------------------------------
    def converge(self) -> int:
        """Iterate announce/select to a fixed point.

        Returns the number of iterations needed. Raises
        :class:`RoutingError` if the bound is exceeded (policy dispute
        wheel — cannot happen under Gao–Rexford).
        """
        asns = [a.asn for a in self.network.ases]
        self._rib = {asn: {asn: Route(destination=asn, path=(asn,))} for asn in asns}
        self.announcements = {}
        ctx = _obs_current()
        trace = ctx.tracer if ctx.tracer.enabled else None
        metrics = (ctx.metrics.scope("routing.pathvector")
                   if ctx.metrics.enabled else None)
        span = (trace.begin("routing.pathvector", "converge", 0.0,
                            ases=len(asns))
                if trace is not None else None)
        total_announced = 0

        for iteration in range(1, self.max_iterations + 1):
            changed = False
            # Build this round's announcements from the current RIBs.
            round_announcements: Dict[Tuple[int, int], Dict[int, Route]] = {}
            for asn in asns:
                for neighbor in sorted(self.network.as_neighbors(asn)):
                    exported: Dict[int, Route] = {}
                    for dest, route in self._rib[asn].items():
                        if neighbor in route.path:
                            continue  # loop prevention
                        if self.policy.may_export(self.network, asn, route, neighbor):
                            exported[dest] = route
                    round_announcements[(asn, neighbor)] = exported
            # Each AS selects its best route per destination from its own
            # prefix plus all received announcements.
            for asn in asns:
                new_rib: Dict[int, Route] = {asn: Route(destination=asn, path=(asn,))}
                for neighbor in sorted(self.network.as_neighbors(asn)):
                    received = round_announcements.get((neighbor, asn), {})
                    for dest, route in received.items():
                        if asn in route.path:
                            continue
                        candidate = Route(
                            destination=dest,
                            path=(asn,) + route.path,
                            selected_by=ControlPoint.PROVIDER,
                        )
                        incumbent = new_rib.get(dest)
                        if incumbent is None:
                            new_rib[dest] = candidate
                        else:
                            new_rib[dest] = self.policy.prefer(
                                self.network, asn, incumbent, candidate
                            )
                if new_rib != self._rib[asn]:
                    changed = True
                self._rib[asn] = new_rib
            self.announcements = round_announcements
            announced = sum(len(routes)
                            for routes in round_announcements.values())
            total_announced += announced
            if trace is not None:
                trace.event("routing.pathvector", "iteration",
                            float(iteration), announcements=announced,
                            changed=changed)
            if metrics is not None:
                metrics.counter("iterations").inc()
                metrics.counter("announcements").inc(announced)
            if not changed:
                self._converged = True
                self.iterations_used = iteration
                if span is not None:
                    span.end(float(iteration), iterations=iteration,
                             announcements=total_announced)
                return iteration
        if span is not None:
            span.end(float(self.max_iterations), converged=False,
                     announcements=total_announced)
        raise RoutingError(
            f"path-vector routing failed to converge in {self.max_iterations} iterations"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def routes(self, asn: int) -> Dict[int, Route]:
        self._check_converged()
        try:
            return dict(self._rib[asn])
        except KeyError:
            raise RoutingError(f"unknown AS {asn}") from None

    def reachable(self, src: int, dst: int) -> bool:
        return dst in self.routes(src)

    def as_path(self, src: int, dst: int) -> Optional[Tuple[int, ...]]:
        route = self.routes(src).get(dst)
        return route.path if route else None

    def announced_routes(self, frm: int, to: int) -> Dict[int, Route]:
        """What ``frm`` announced to ``to`` in the final round."""
        self._check_converged()
        return dict(self.announcements.get((frm, to), {}))

    def transit_load(self, asn: int) -> int:
        """Number of (src, dst) selected routes transiting ``asn``."""
        self._check_converged()
        count = 0
        for src, rib in self._rib.items():
            if src == asn:
                continue
            for route in rib.values():
                if route.through(asn):
                    count += 1
        return count

    def reachability_matrix(self) -> Dict[Tuple[int, int], bool]:
        """(src, dst) -> reachable, over all AS pairs."""
        self._check_converged()
        asns = [a.asn for a in self.network.ases]
        return {
            (s, d): d in self._rib[s]
            for s in asns
            for d in asns
            if s != d
        }

    def _check_converged(self) -> None:
        if not self._converged:
            raise RoutingError("call converge() first")
