"""User-controlled provider-level source routing (NIRA-like).

The paper's concrete research recommendation: "The Internet should support
a mechanism for choice such as source routing that would permit a customer
to control the path of his packets at the level of providers. A design for
such a system must include where these user-selected routes come from or
how they are constructed, how failures are managed, and how the user knows
that the traffic actually took the desired route" (§V-A-4) — and
crucially, "the design for provider-level source routing must incorporate
a recognition of the need for payment."

:class:`SourceRoutingSystem` provides exactly these pieces:

* **route discovery** — enumerate valley-free candidate AS paths from the
  business graph (the user's route catalogue);
* **willingness** — each transit AS carries source-routed traffic only if
  compensated (or altruistic), so routes are usable only when the payment
  scheme covers every hop;
* **verification** — a route attestation lets the user check the traffic
  actually took the requested path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netsim.topology import Network
from .base import ControlPoint, Route
from .policies import NeighborClass, classify_neighbor

__all__ = ["TransitTerms", "RouteAttempt", "SourceRoutingSystem", "valley_free_paths"]


def valley_free_paths(
    network: Network, src: int, dst: int, max_length: int = 8
) -> List[Tuple[int, ...]]:
    """Enumerate valley-free AS paths from src to dst.

    Valley-free (after Gao): a path climbs customer->provider links, may
    cross at most one peer link at the top, then descends provider->
    customer. These are the economically-rational paths a source-routing
    user could buy.
    Paths are returned sorted by (length, path) for determinism.
    """
    network.autonomous_system(src)
    network.autonomous_system(dst)
    results: List[Tuple[int, ...]] = []

    # state: 0 = climbing (may go up, peer, or down), after peer/down only down
    def extend(path: List[int], state: int) -> None:
        current = path[-1]
        if current == dst:
            results.append(tuple(path))
            return
        if len(path) > max_length:
            return
        for neighbor in sorted(network.as_neighbors(current)):
            if neighbor in path:
                continue
            rel = classify_neighbor(network, current, neighbor)
            if rel is NeighborClass.PROVIDER:  # climbing up
                if state == 0:
                    extend(path + [neighbor], 0)
            elif rel is NeighborClass.PEER:
                if state == 0:
                    extend(path + [neighbor], 1)
            elif rel is NeighborClass.CUSTOMER:  # descending
                extend(path + [neighbor], 2)

    extend([src], 0)
    return sorted(set(results), key=lambda p: (len(p), p))


@dataclass
class TransitTerms:
    """Under what terms an AS carries source-routed transit traffic.

    ``price`` is the per-unit charge for carrying a source-routed flow;
    ``accepts_source_routes`` False models today's ISPs, which "do not
    like loose source routes, because ISPs do not receive any benefit when
    they carry traffic directed by a source route."
    """

    accepts_source_routes: bool = True
    price: float = 1.0


@dataclass
class RouteAttempt:
    """Outcome of trying to use a user-selected route."""

    path: Tuple[int, ...]
    succeeded: bool
    total_price: float = 0.0
    refused_by: Optional[int] = None
    attested_path: Optional[Tuple[int, ...]] = None

    @property
    def verified(self) -> bool:
        """Did the attestation match the requested path?

        "How the user knows that the traffic actually took the desired
        route" — verification succeeds only when every hop attested.
        """
        return self.succeeded and self.attested_path == self.path


class SourceRoutingSystem:
    """User-controlled routing with payment and verification.

    Parameters
    ----------
    network:
        AS-level topology.
    payment_enabled:
        When False, transit ASes receive nothing for source-routed traffic
        and refuse it unless explicitly altruistic — reproducing the
        paper's diagnosis of why loose source routes "do not work
        effectively today."
    """

    control_point = ControlPoint.USER

    def __init__(self, network: Network, payment_enabled: bool = True):
        self.network = network
        self.payment_enabled = payment_enabled
        self._terms: Dict[int, TransitTerms] = {}
        self.attempts: List[RouteAttempt] = []
        self.revenue: Dict[int, float] = {}

    def set_terms(self, asn: int, terms: TransitTerms) -> None:
        self.network.autonomous_system(asn)
        self._terms[asn] = terms

    def terms_of(self, asn: int) -> TransitTerms:
        return self._terms.get(asn, TransitTerms())

    # ------------------------------------------------------------------
    # Route discovery
    # ------------------------------------------------------------------
    def candidate_routes(self, src: int, dst: int, max_length: int = 8) -> List[Route]:
        """The user's route catalogue: all valley-free paths."""
        paths = valley_free_paths(self.network, src, dst, max_length=max_length)
        return [
            Route(destination=dst, path=p, selected_by=ControlPoint.USER)
            for p in paths
        ]

    def route_price(self, path: Sequence[int]) -> float:
        """Sum of transit prices along the path (endpoints excluded)."""
        return sum(self.terms_of(asn).price for asn in path[1:-1])

    # ------------------------------------------------------------------
    # Using a route
    # ------------------------------------------------------------------
    def use_route(self, route: Route, budget: float = float("inf")) -> RouteAttempt:
        """Attempt to send along a user-selected route.

        Each transit AS accepts iff it accepts source routes AND (payment
        is enabled AND the user can pay, or its price is zero). The
        attempt accumulates an attested path hop by hop; refusal truncates
        it, so the user can see where the route died.
        """
        path = route.path
        attested: List[int] = [path[0]]
        total = 0.0
        for asn in path[1:-1]:
            terms = self.terms_of(asn)
            can_pay = (self.payment_enabled
                       and total + terms.price <= budget)
            if terms.accepts_source_routes:
                # A willing AS still wants its (nonzero) price paid.
                willing = terms.price == 0.0 or can_pay
            else:
                # An unwilling AS is moved only by actual compensation.
                willing = terms.price > 0.0 and can_pay
            if not willing:
                attempt = RouteAttempt(
                    path=path, succeeded=False, total_price=total,
                    refused_by=asn, attested_path=tuple(attested),
                )
                self.attempts.append(attempt)
                return attempt
            if terms.price > 0:
                total += terms.price
                self.revenue[asn] = self.revenue.get(asn, 0.0) + terms.price
            attested.append(asn)
        attested.append(path[-1])
        attempt = RouteAttempt(
            path=path, succeeded=True, total_price=total,
            attested_path=tuple(attested),
        )
        self.attempts.append(attempt)
        return attempt

    def best_affordable_route(
        self, src: int, dst: int, budget: float = float("inf")
    ) -> Optional[RouteAttempt]:
        """Try candidate routes cheapest-first until one succeeds."""
        candidates = self.candidate_routes(src, dst)
        candidates.sort(key=lambda r: (self.route_price(r.path), r.length, r.path))
        for route in candidates:
            attempt = self.use_route(route, budget=budget)
            if attempt.succeeded:
                return attempt
        return None

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def success_rate(self) -> float:
        if not self.attempts:
            return 0.0
        return sum(1 for a in self.attempts if a.succeeded) / len(self.attempts)

    def path_diversity(self, src: int, dst: int, budget: float = float("inf")) -> int:
        """How many distinct usable paths the user actually has."""
        usable = 0
        for route in self.candidate_routes(src, dst):
            # Probe without recording revenue side effects.
            saved_revenue = dict(self.revenue)
            saved_attempts = len(self.attempts)
            attempt = self.use_route(route, budget=budget)
            if attempt.succeeded:
                usable += 1
            self.revenue = saved_revenue
            del self.attempts[saved_attempts:]
        return usable
