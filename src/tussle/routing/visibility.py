"""Visibility analysis: who can see whose choices.

"In the context of tussle, it matters if choices and the consequence of
choices are visible" (§IV-C). The paper contrasts link-state routing
(everyone exports link costs — full visibility) with path-vector routing
(internal choices are hard to see; only consequences at the BGP level are
public).

This module quantifies that contrast so it can appear in benchmark rows:

* :func:`linkstate_visibility` — fraction of the topology's link facts a
  participant can observe (always 1.0 by construction);
* :func:`pathvector_visibility` — fraction of another AS's selected routes
  an observer can reconstruct from the announcements it receives;
* :class:`ChoiceVisibilityReport` — a per-mechanism scorecard of the four
  interface properties the paper lists for tussle interfaces (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..errors import VisibilityError
from .linkstate import LinkStateRouting
from .pathvector import PathVectorRouting

__all__ = [
    "linkstate_visibility",
    "pathvector_visibility",
    "ChoiceVisibilityReport",
    "TUSSLE_INTERFACE_PROPERTIES",
]

#: The four properties the paper says tussle interfaces may need (§IV-C).
TUSSLE_INTERFACE_PROPERTIES: Tuple[str, ...] = (
    "visible_exchange_of_value",
    "exposure_of_cost_of_choice",
    "visibility_of_choices_made",
    "fault_isolation_tools",
)


def linkstate_visibility(routing: LinkStateRouting, observer: str) -> float:
    """Fraction of all link facts visible to ``observer``.

    Link-state floods everything, so this is 1.0 whenever the database is
    non-empty — included for symmetry with the path-vector measurement.
    """
    total = len(routing.database)
    if total == 0:
        return 0.0
    visible = len(routing.database.visible_to(observer))
    return visible / total


def pathvector_visibility(routing: PathVectorRouting, observer: int, subject: int) -> float:
    """How much of ``subject``'s routing state ``observer`` can see.

    The observer receives announcements only if adjacent; from those it
    learns the AS paths the subject selected *for exported destinations*.
    The returned fraction is (subject routes inferable by observer) /
    (subject's total selected routes). Non-adjacent observers see nothing
    directly (they'd have to infer from end-to-end consequences, which the
    paper notes is all that is public).
    """
    subject_routes = routing.routes(subject)
    if not subject_routes:
        return 0.0
    announced = routing.announced_routes(subject, observer)
    # The observer can infer the subject's choice for each announced dest:
    # the announced path IS the selected path.
    inferable = sum(1 for dest in subject_routes if dest in announced)
    return inferable / len(subject_routes)


@dataclass
class ChoiceVisibilityReport:
    """Scorecard of a mechanism against the paper's interface properties.

    Each property scores in [0, 1]. :meth:`overall` is the mean — a crude
    but comparable "designed for tussle" index used in benchmark tables.
    """

    mechanism: str
    scores: Dict[str, float] = field(default_factory=dict)

    def set_score(self, prop: str, value: float) -> None:
        if prop not in TUSSLE_INTERFACE_PROPERTIES:
            raise VisibilityError(f"unknown interface property {prop!r}")
        if not 0.0 <= value <= 1.0:
            raise VisibilityError(f"score must be in [0,1], got {value}")
        self.scores[prop] = value

    def overall(self) -> float:
        if not self.scores:
            return 0.0
        return sum(self.scores.values()) / len(TUSSLE_INTERFACE_PROPERTIES)

    @classmethod
    def for_linkstate(cls) -> "ChoiceVisibilityReport":
        """Canonical scores for a link-state protocol.

        Everyone's costs are exported (choices fully visible), but there
        is no value exchange or per-choice pricing in the protocol.
        """
        report = cls("link-state")
        report.set_score("visible_exchange_of_value", 0.0)
        report.set_score("exposure_of_cost_of_choice", 1.0)
        report.set_score("visibility_of_choices_made", 1.0)
        report.set_score("fault_isolation_tools", 0.5)
        return report

    @classmethod
    def for_pathvector(cls) -> "ChoiceVisibilityReport":
        """Canonical scores for BGP-like routing.

        Internal choices are hidden; consequences are visible; no value
        flow in the protocol (settlements happen in contracts outside).
        """
        report = cls("path-vector")
        report.set_score("visible_exchange_of_value", 0.0)
        report.set_score("exposure_of_cost_of_choice", 0.2)
        report.set_score("visibility_of_choices_made", 0.3)
        report.set_score("fault_isolation_tools", 0.2)
        return report

    @classmethod
    def for_source_routing_with_payment(cls) -> "ChoiceVisibilityReport":
        """Scores for the paper's proposed payment-aware source routing."""
        report = cls("source-routing+payment")
        report.set_score("visible_exchange_of_value", 1.0)
        report.set_score("exposure_of_cost_of_choice", 1.0)
        report.set_score("visibility_of_choices_made", 1.0)
        report.set_score("fault_isolation_tools", 0.8)
        return report
