"""Inter-domain routing policies (Gao–Rexford and variants).

BGP "has a different character than a protocol such as OSPF... The routing
arrangements among ISPs are generally not public" (§IV-C). Policy is where
the provider's business interests enter the protocol: which routes to
prefer (local preference) and which to tell the neighbours about (export
rules).

:class:`GaoRexfordPolicy` implements the canonical economically-stable
policy: prefer customer routes over peer routes over provider routes, and
only export customer routes to peers/providers. :class:`OpenPolicy` is the
tussle-free counterfactual (announce everything, prefer shortest), used as
a baseline in E04.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple

from ..netsim.topology import Network
from .base import Route

__all__ = ["NeighborClass", "RoutingPolicy", "GaoRexfordPolicy", "OpenPolicy"]


class NeighborClass(IntEnum):
    """How a neighbour relates to us, ordered by route preference.

    Lower value = more preferred: customers pay us, so routes through them
    earn money; providers cost us, so routes through them cost money.
    """

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2
    UNKNOWN = 3


def classify_neighbor(network: Network, me: int, neighbor: int) -> NeighborClass:
    """Classify ``neighbor`` from ``me``'s business point of view."""
    if network.is_provider_of(me, neighbor):
        return NeighborClass.CUSTOMER
    if network.is_provider_of(neighbor, me):
        return NeighborClass.PROVIDER
    if neighbor in network.peers_of(me):
        return NeighborClass.PEER
    return NeighborClass.UNKNOWN


class RoutingPolicy:
    """Interface: preference ranking and export control for one AS."""

    def prefer(self, network: Network, me: int, a: Route, b: Route) -> Route:
        """Return the preferred of two candidate routes to the same dest."""
        raise NotImplementedError  # pragma: no cover - abstract

    def may_export(self, network: Network, me: int, route: Route, to_neighbor: int) -> bool:
        """May ``me`` announce ``route`` to ``to_neighbor``?"""
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass
class GaoRexfordPolicy(RoutingPolicy):
    """The canonical provider-interest policy.

    Preference: customer > peer > provider (local-pref), then shorter AS
    path, then lower next-hop ASN (deterministic tiebreak).

    Export ("valley-free" rule): routes learned from a customer may be
    announced to everyone; routes learned from a peer or provider may be
    announced only to customers. An AS never carries traffic between two
    of its providers/peers for free.
    """

    def _rank(self, network: Network, me: int, route: Route) -> Tuple[int, int, int]:
        if route.length == 0:
            neighbor_class = NeighborClass.CUSTOMER  # own prefix, best
        else:
            neighbor_class = classify_neighbor(network, me, route.next_hop)
        return (int(neighbor_class), route.length, route.next_hop)

    def prefer(self, network: Network, me: int, a: Route, b: Route) -> Route:
        return min((a, b), key=lambda r: self._rank(network, me, r))

    def may_export(self, network: Network, me: int, route: Route, to_neighbor: int) -> bool:
        to_class = classify_neighbor(network, me, to_neighbor)
        if to_class is NeighborClass.CUSTOMER:
            return True
        if route.length == 0:
            return True  # always announce your own prefix
        learned_from = classify_neighbor(network, me, route.next_hop)
        return learned_from is NeighborClass.CUSTOMER


@dataclass
class OpenPolicy(RoutingPolicy):
    """Announce-everything, prefer-shortest: no business interests.

    Used as the tussle-free baseline; with it, path-vector routing reduces
    to shortest-AS-path routing and every feasible path is announced.
    """

    def prefer(self, network: Network, me: int, a: Route, b: Route) -> Route:
        return min((a, b), key=lambda r: (r.length, r.next_hop))

    def may_export(self, network: Network, me: int, route: Route, to_neighbor: int) -> bool:
        return True
