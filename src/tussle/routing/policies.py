"""Inter-domain routing policies (Gao–Rexford and variants).

BGP "has a different character than a protocol such as OSPF... The routing
arrangements among ISPs are generally not public" (§IV-C). Policy is where
the provider's business interests enter the protocol: which routes to
prefer (local preference) and which to tell the neighbours about (export
rules).

:class:`GaoRexfordPolicy` implements the canonical economically-stable
policy: prefer customer routes over peer routes over provider routes, and
only export customer routes to peers/providers. :class:`OpenPolicy` is the
tussle-free counterfactual (announce everything, prefer shortest), used as
a baseline in E04.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple

from ..netsim.topology import Network
from .base import Route

__all__ = ["NeighborClass", "RoutingPolicy", "GaoRexfordPolicy", "OpenPolicy",
           "is_valley_free"]


class NeighborClass(IntEnum):
    """How a neighbour relates to us, ordered by route preference.

    Lower value = more preferred: customers pay us, so routes through them
    earn money; providers cost us, so routes through them cost money.
    """

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2
    UNKNOWN = 3


def classify_neighbor(network: Network, me: int, neighbor: int) -> NeighborClass:
    """Classify ``neighbor`` from ``me``'s business point of view."""
    if network.is_provider_of(me, neighbor):
        return NeighborClass.CUSTOMER
    if network.is_provider_of(neighbor, me):
        return NeighborClass.PROVIDER
    if neighbor in network.peers_of(me):
        return NeighborClass.PEER
    return NeighborClass.UNKNOWN


class RoutingPolicy:
    """Interface: preference ranking and export control for one AS."""

    def prefer(self, network: Network, me: int, a: Route, b: Route) -> Route:
        """Return the preferred of two candidate routes to the same dest."""
        raise NotImplementedError  # pragma: no cover - abstract

    def may_export(self, network: Network, me: int, route: Route, to_neighbor: int) -> bool:
        """May ``me`` announce ``route`` to ``to_neighbor``?"""
        raise NotImplementedError  # pragma: no cover - abstract


@dataclass
class GaoRexfordPolicy(RoutingPolicy):
    """The canonical provider-interest policy.

    Preference is a documented *total* order: customer > peer > provider
    (local-pref), then shorter AS path, then lower next-hop ASN, then
    lexicographically smaller AS path.  The final key makes route
    selection independent of candidate arrival order — without it, two
    routes through the same next hop but different tails would tie and
    the incumbent would win, leaking iteration order into the RIB.

    Export ("valley-free" rule): routes learned from a customer may be
    announced to everyone; routes learned from a peer or provider may be
    announced only to customers. An AS never carries traffic between two
    of its providers/peers for free.
    """

    def _rank(self, network: Network, me: int,
              route: Route) -> Tuple[int, int, int, Tuple[int, ...]]:
        if route.length == 0:
            neighbor_class = NeighborClass.CUSTOMER  # own prefix, best
        else:
            neighbor_class = classify_neighbor(network, me, route.next_hop)
        return (int(neighbor_class), route.length, route.next_hop, route.path)

    def prefer(self, network: Network, me: int, a: Route, b: Route) -> Route:
        return min((a, b), key=lambda r: self._rank(network, me, r))

    def may_export(self, network: Network, me: int, route: Route, to_neighbor: int) -> bool:
        to_class = classify_neighbor(network, me, to_neighbor)
        if to_class is NeighborClass.CUSTOMER:
            return True
        if route.length == 0:
            return True  # always announce your own prefix
        learned_from = classify_neighbor(network, me, route.next_hop)
        return learned_from is NeighborClass.CUSTOMER


@dataclass
class OpenPolicy(RoutingPolicy):
    """Announce-everything, prefer-shortest: no business interests.

    Used as the tussle-free baseline; with it, path-vector routing reduces
    to shortest-AS-path routing and every feasible path is announced.
    Tie-breaking follows the same documented total order as
    :class:`GaoRexfordPolicy` minus the class term: shorter AS path, then
    lower next-hop ASN, then lexicographically smaller AS path.
    """

    def prefer(self, network: Network, me: int, a: Route, b: Route) -> Route:
        return min((a, b), key=lambda r: (r.length, r.next_hop, r.path))

    def may_export(self, network: Network, me: int, route: Route, to_neighbor: int) -> bool:
        return True


def is_valley_free(network: Network, path: Tuple[int, ...]) -> bool:
    """Does an AS path obey the Gao-Rexford export rules?

    Read from the selecting AS toward the destination, a valley-free
    path climbs customer->provider edges zero or more times, crosses at
    most one peer edge, then descends provider->customer edges — i.e.
    once it stops climbing it never climbs again, and it never crosses
    a second peering.  Paths with unrelated consecutive ASes are not
    valley-free (no relationship = no announcement).
    """
    if path is None or len(path) == 0:
        return False
    descending = False
    peered = False
    for a, b in zip(path, path[1:]):
        step = classify_neighbor(network, a, b)
        if step is NeighborClass.UNKNOWN:
            return False
        if step is NeighborClass.PROVIDER:  # climbing up
            if descending or peered:
                return False
        elif step is NeighborClass.PEER:  # one lateral hop
            if descending or peered:
                return False
            peered = True
        else:  # CUSTOMER: descending
            descending = True
    return True
