"""Command-line interface: ``python -m tussle``.

Subcommands
-----------
``list``
    Show every experiment with its title and paper claim.
``run E01 X03 ...``
    Run the named experiments (default: all) and print their tables and
    shape-check verdicts; exits non-zero if any shape fails.

    ``--trace PATH`` records a deterministic JSONL trace of the run
    (sim-time-stamped spans and events from every instrumented
    subsystem); inspect it with ``python -m tussle.obs report PATH``.

    ``--json`` replaces the plain-text output with a single JSON
    document: ``{"results": [...], "failed": [...]}`` where each result
    carries its id, title, paper claim, tables (columns + rows), shape
    checks and a per-experiment metrics snapshot. The exit code is
    unchanged (non-zero when any shape check fails), so ``--json`` is
    safe to use in CI pipelines.
``summary``
    Run everything and print only the one-line verdicts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .experiments import ALL_EXPERIMENTS
from .obs import Metrics, Tracer, observe

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tussle",
        description=("Executable reproduction of 'Tussle in Cyberspace' "
                     "(Clark et al., 2002): run the paper-claim experiments."),
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help="experiment ids (e.g. E01 X03); default: all",
    )
    run_parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a deterministic JSONL trace of the run to PATH",
    )
    run_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit results as one JSON document instead of text",
    )

    subparsers.add_parser("summary", help="run everything, verdicts only")
    return parser


def _select(ids: Sequence[str]) -> List[str]:
    if not ids:
        return sorted(ALL_EXPERIMENTS)
    selected = []
    for raw in ids:
        identifier = raw.upper()
        if identifier not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {raw!r}; "
                f"choose from {', '.join(sorted(ALL_EXPERIMENTS))}"
            )
        selected.append(identifier)
    return selected


def _command_list() -> int:
    for identifier in sorted(ALL_EXPERIMENTS):
        result_fn = ALL_EXPERIMENTS[identifier]
        doc = (result_fn.__module__ or "").rsplit(".", 1)[-1]
        print(f"{identifier}  ({doc})")
    print(f"\n{len(ALL_EXPERIMENTS)} experiments; "
          f"run them with: python -m tussle run [ID ...]")
    return 0


def _command_run(ids: Sequence[str], trace_path: Optional[str] = None,
                 as_json: bool = False) -> int:
    tracer = Tracer() if trace_path else None
    failed = []
    results = []
    for position, identifier in enumerate(_select(ids)):
        metrics = Metrics()
        with observe(tracer=tracer, metrics=metrics):
            if tracer is not None:
                # Logical time for the run-level span is the experiment's
                # position in the selection — deterministic, never wall clock.
                span = tracer.begin("experiments", identifier, float(position))
            result = ALL_EXPERIMENTS[identifier]()
            if tracer is not None:
                span.end(float(position + 1), shape_holds=result.shape_holds)
        result.metrics = metrics.snapshot()
        results.append(result)
        if not as_json:
            print(result.format())
            print()
        if not result.shape_holds:
            failed.append(identifier)
    if tracer is not None:
        tracer.write_jsonl(trace_path)
        if not as_json:
            print(f"trace written to {trace_path} ({len(tracer)} records)")
    if as_json:
        print(json.dumps(
            {"results": [r.to_dict() for r in results], "failed": failed},
            indent=2, sort_keys=True,
        ))
    elif failed:
        print(f"SHAPE FAILURES: {', '.join(failed)}")
    return 1 if failed else 0


def _command_summary() -> int:
    exit_code = 0
    for identifier in sorted(ALL_EXPERIMENTS):
        result = ALL_EXPERIMENTS[identifier]()
        verdict = "HOLDS" if result.shape_holds else "FAILS"
        if not result.shape_holds:
            exit_code = 1
        print(f"{identifier}: {verdict}  {result.title}")
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(arguments.experiments, trace_path=arguments.trace,
                            as_json=arguments.as_json)
    if arguments.command == "summary":
        return _command_summary()
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
