"""Command-line interface: ``python -m tussle``.

Subcommands
-----------
``list``
    Show every experiment with its title and paper claim.
``run E01 X03 ...``
    Run the named experiments (default: all) and print their tables and
    shape-check verdicts; exits non-zero if any shape fails.
``summary``
    Run everything and print only the one-line verdicts.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .experiments import ALL_EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tussle",
        description=("Executable reproduction of 'Tussle in Cyberspace' "
                     "(Clark et al., 2002): run the paper-claim experiments."),
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help="experiment ids (e.g. E01 X03); default: all",
    )

    subparsers.add_parser("summary", help="run everything, verdicts only")
    return parser


def _select(ids: Sequence[str]) -> List[str]:
    if not ids:
        return sorted(ALL_EXPERIMENTS)
    selected = []
    for raw in ids:
        identifier = raw.upper()
        if identifier not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {raw!r}; "
                f"choose from {', '.join(sorted(ALL_EXPERIMENTS))}"
            )
        selected.append(identifier)
    return selected


def _command_list() -> int:
    for identifier in sorted(ALL_EXPERIMENTS):
        result_fn = ALL_EXPERIMENTS[identifier]
        doc = (result_fn.__module__ or "").rsplit(".", 1)[-1]
        print(f"{identifier}  ({doc})")
    print(f"\n{len(ALL_EXPERIMENTS)} experiments; "
          f"run them with: python -m tussle run [ID ...]")
    return 0


def _command_run(ids: Sequence[str]) -> int:
    failed = []
    for identifier in _select(ids):
        result = ALL_EXPERIMENTS[identifier]()
        print(result.format())
        print()
        if not result.shape_holds:
            failed.append(identifier)
    if failed:
        print(f"SHAPE FAILURES: {', '.join(failed)}")
        return 1
    return 0


def _command_summary() -> int:
    exit_code = 0
    for identifier in sorted(ALL_EXPERIMENTS):
        result = ALL_EXPERIMENTS[identifier]()
        verdict = "HOLDS" if result.shape_holds else "FAILS"
        if not result.shape_holds:
            exit_code = 1
        print(f"{identifier}: {verdict}  {result.title}")
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(arguments.experiments)
    if arguments.command == "summary":
        return _command_summary()
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
