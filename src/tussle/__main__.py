"""Command-line interface: ``python -m tussle``.

Subcommands
-----------
``list``
    Show every experiment with its title and paper claim.
``run E01 X03 ...``
    Run the named experiments (default: all) and print their tables and
    shape-check verdicts; exits non-zero if any shape fails.

    ``--trace PATH`` records a deterministic JSONL trace of the run
    (sim-time-stamped spans and events from every instrumented
    subsystem); inspect it with ``python -m tussle.obs report PATH``.

    ``--json`` replaces the plain-text output with a single JSON
    document: ``{"results": [...], "failed": [...]}`` where each result
    carries its id, title, paper claim, tables (columns + rows), shape
    checks and a per-experiment metrics snapshot. The exit code is
    unchanged (non-zero when any shape check fails), so ``--json`` is
    safe to use in CI pipelines.
``summary``
    Run everything and print only the one-line verdicts.
``sweep E01 X03 ...``
    Run a multi-seed / parameter-grid matrix through the parallel sweep
    engine (default: all experiments): ``--seeds N`` sweeps base seeds
    ``0..N-1`` (each cell runs at a seed *derived* from its identity, so
    no two cells share RNG state), ``--grid key=v1,v2`` adds a parameter
    axis (repeatable; values are swept as a cartesian product),
    ``--jobs N`` fans cells out over a process pool, and ``--cache-dir``
    makes re-runs incremental (completed cells are keyed by experiment,
    params, seed, and a code fingerprint, so any source change
    invalidates them).  ``--json`` emits the aggregated robustness
    document; the bytes are identical whatever ``--jobs`` is.  Exits
    non-zero unless every shape check holds on every seed.

    ``--telemetry PATH`` records the sweep's two-channel telemetry
    stream: cell lifecycle facts on a deterministic channel at PATH
    (byte-identical for any ``--jobs`` or chaos plan) and
    retries/latencies/worker lifecycle on the quarantined
    ``.wall.jsonl`` sibling; summarize with ``python -m tussle.obs
    sweep-report PATH``.  ``--progress`` streams running per-claim
    verdicts to stderr as cells land.  A one-line sweep summary (cells,
    cache hits, retries, failures, wall time) always prints at the end.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .experiments import ALL_EXPERIMENTS
from .obs import Metrics, Tracer, observe

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tussle",
        description=("Executable reproduction of 'Tussle in Cyberspace' "
                     "(Clark et al., 2002): run the paper-claim experiments."),
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help="experiment ids (e.g. E01 X03); default: all",
    )
    run_parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a deterministic JSONL trace of the run to PATH",
    )
    run_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit results as one JSON document instead of text",
    )

    subparsers.add_parser("summary", help="run everything, verdicts only")

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a multi-seed/parameter matrix in parallel")
    sweep_parser.add_argument(
        "experiments", nargs="*", metavar="ID",
        help="experiment ids (e.g. E01 X03); default: all",
    )
    sweep_parser.add_argument(
        "--seeds", type=int, default=5, metavar="N",
        help="sweep base seeds 0..N-1 (default 5)",
    )
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: in-process executor)",
    )
    sweep_parser.add_argument(
        "--grid", action="append", default=[], metavar="KEY=V1,V2",
        help="parameter axis passed to every experiment as a keyword "
             "argument; repeat for a cartesian product",
    )
    sweep_parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="cache completed cells under PATH for incremental re-runs",
    )
    sweep_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock timeout; enables the crash-safe "
             "resilient executor",
    )
    sweep_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="retries per cell on worker death/timeout (default 3; "
             "enables the resilient executor)",
    )
    sweep_parser.add_argument(
        "--chaos-workers", type=float, default=None, metavar="FRACTION",
        help="sabotage this fraction of first attempts (crash or hang) "
             "to exercise recovery; enables the resilient executor",
    )
    sweep_parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="SEED",
        help="seed for the deterministic worker-chaos plan (default 0)",
    )
    sweep_parser.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write the sweep telemetry stream: deterministic channel "
             "to PATH (byte-identical whatever --jobs or chaos), "
             "wall-clock channel to the .wall.jsonl sibling; inspect "
             "with python -m tussle.obs sweep-report PATH",
    )
    sweep_parser.add_argument(
        "--progress", action="store_true",
        help="stream running per-claim verdicts to stderr as cells land",
    )
    sweep_parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the aggregated robustness document as JSON",
    )
    return parser


def _select(ids: Sequence[str]) -> List[str]:
    if not ids:
        return sorted(ALL_EXPERIMENTS)
    selected = []
    for raw in ids:
        identifier = raw.upper()
        if identifier not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {raw!r}; "
                f"choose from {', '.join(sorted(ALL_EXPERIMENTS))}"
            )
        selected.append(identifier)
    return selected


def _command_list() -> int:
    for identifier in sorted(ALL_EXPERIMENTS):
        result_fn = ALL_EXPERIMENTS[identifier]
        doc = (result_fn.__module__ or "").rsplit(".", 1)[-1]
        print(f"{identifier}  ({doc})")
    print(f"\n{len(ALL_EXPERIMENTS)} experiments; "
          f"run them with: python -m tussle run [ID ...]")
    return 0


def _command_run(ids: Sequence[str], trace_path: Optional[str] = None,
                 as_json: bool = False) -> int:
    tracer = Tracer() if trace_path else None
    failed = []
    results = []
    for position, identifier in enumerate(_select(ids)):
        metrics = Metrics()
        with observe(tracer=tracer, metrics=metrics):
            if tracer is not None:
                # Logical time for the run-level span is the experiment's
                # position in the selection — deterministic, never wall clock.
                span = tracer.begin("experiments", identifier, float(position))
            result = ALL_EXPERIMENTS[identifier]()
            if tracer is not None:
                span.end(float(position + 1), shape_holds=result.shape_holds)
        result.metrics = metrics.snapshot()
        results.append(result)
        if not as_json:
            print(result.format())
            print()
        if not result.shape_holds:
            failed.append(identifier)
    if tracer is not None:
        tracer.write_jsonl(trace_path)
        if not as_json:
            print(f"trace written to {trace_path} ({len(tracer)} records)")
    if as_json:
        print(json.dumps(
            {"results": [r.to_dict() for r in results], "failed": failed},
            indent=2, sort_keys=True,
        ))
    elif failed:
        print(f"SHAPE FAILURES: {', '.join(failed)}")
    return 1 if failed else 0


def _parse_grid_value(text: str):
    """CLI grid literal: int, then float, then bool, else string."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _parse_grid(entries: Sequence[str]) -> dict:
    grid: dict = {}
    for entry in entries:
        key, separator, values = entry.partition("=")
        if not separator or not key or not values:
            raise SystemExit(
                f"bad --grid entry {entry!r}; expected KEY=V1,V2,...")
        grid[key] = [_parse_grid_value(v) for v in values.split(",")]
    return grid


def _command_sweep(ids: Sequence[str], seeds: int, jobs: int,
                   grid_entries: Sequence[str],
                   cache_dir: Optional[str] = None,
                   timeout: Optional[float] = None,
                   retries: Optional[int] = None,
                   chaos_workers: Optional[float] = None,
                   chaos_seed: int = 0,
                   telemetry_path: Optional[str] = None,
                   progress: bool = False,
                   as_json: bool = False) -> int:
    from .obs import Profiler, SweepTelemetry
    from .sweep import (InProcessExecutor, ProcessPoolExecutor,
                        ResilientExecutor, ResultCache, StreamingAggregator,
                        SweepSpec, aggregate, run_sweep)

    if seeds < 1:
        raise SystemExit("--seeds must be >= 1")
    spec = SweepSpec(
        experiment_ids=_select(ids),
        seeds=list(range(seeds)),
        grid=_parse_grid(grid_entries),
    )
    resilient = (timeout is not None or retries is not None
                 or chaos_workers is not None)
    if resilient:
        from .resil import WorkerChaos
        chaos = (WorkerChaos(seed=chaos_seed, fraction=chaos_workers)
                 if chaos_workers else None)
        executor: object = ResilientExecutor(
            jobs=jobs,
            timeout=timeout if timeout is not None else 30.0,
            retries=retries if retries is not None else 3,
            chaos=chaos,
        )
    else:
        executor = (ProcessPoolExecutor(jobs) if jobs > 1
                    else InProcessExecutor())
    cache = ResultCache(cache_dir) if cache_dir else None
    metrics = Metrics()
    profiler = Profiler()
    telemetry = SweepTelemetry()
    telemetry.wall_event("sweep_started", jobs=jobs)
    streaming = StreamingAggregator() if progress else None
    total_cells = len(spec.cells())

    def on_cell(payload: dict) -> None:
        if streaming is None:
            return
        group = streaming.fold(payload)
        print(f"[{streaming.cells_seen}/{total_cells}] "
              f"{payload['experiment_id']} seed={payload['base_seed']} "
              f"{payload['status']} | {group.verdict()}",
              file=sys.stderr, flush=True)

    with observe(metrics=metrics, profiler=profiler):
        report = run_sweep(spec, executor=executor, cache=cache,
                           telemetry=telemetry, on_cell=on_cell)
    wall_seconds = telemetry.elapsed()
    telemetry.wall_event("sweep_finished",
                         seconds=round(wall_seconds, 6))
    # Streaming and batch aggregation are byte-identical (test-asserted);
    # use the streaming snapshot when it was built anyway.
    aggregated = (streaming.snapshot() if streaming is not None
                  else aggregate(report.cells))
    if telemetry_path:
        det_path, wall_path = telemetry.write(telemetry_path)
        print(f"telemetry written to {det_path} (wall: {wall_path})",
              file=sys.stderr)
    summary = telemetry.summary_line(wall_seconds)

    if as_json:
        # Deterministic channel only: byte-identical whatever --jobs is.
        print(json.dumps(
            {"stats": report.stats, "aggregate": aggregated},
            indent=2, sort_keys=True,
        ))
    else:
        for verdict in aggregated["verdicts"]:
            print(verdict)
        for cell in report.failed:
            error = cell["error"] or {}
            detail = (", ".join(error.get("reasons", []))
                      if cell["status"] == "failed"
                      else error.get("message"))
            print(f"FAILED {cell['experiment_id']} seed={cell['base_seed']} "
                  f"params={cell['params']}: {error.get('type')}: {detail}")
        stats = report.stats
        print(f"{stats['cells_total']} cells: "
              f"{stats['cells_cached']} cached, "
              f"{stats['cells_dispatched']} dispatched, "
              f"{stats['cells_failed']} failed")
        if report.recovery:
            recovery = report.recovery
            print(f"recovery: {recovery['retries']} retries "
                  f"({recovery['worker_deaths']} worker deaths, "
                  f"{recovery['timeouts']} timeouts), "
                  f"{recovery['recovered_cells']} cells recovered, "
                  f"{recovery['failed_cells']} cells abandoned")
        utilization = profiler.snapshot()
        workers = [k for k in utilization if k.startswith("worker.")]
        if workers:
            busy = sum(utilization[k]["total_seconds"] for k in workers)
            print(f"worker utilization ({len(workers)} workers, "
                  f"{busy:.2f}s busy):")
            for key in workers:
                stat = utilization[key]
                print(f"  {key[len('worker.'):]}: {stat['calls']} cells, "
                      f"{stat['total_seconds']:.2f}s")
    # The one-line summary always lands somewhere visible: stdout in
    # text mode, stderr under --json so the JSON document stays clean.
    print(summary, file=sys.stderr if as_json else sys.stdout)
    return 0 if (report.ok and aggregated["robust"]) else 1


def _command_summary() -> int:
    exit_code = 0
    for identifier in sorted(ALL_EXPERIMENTS):
        result = ALL_EXPERIMENTS[identifier]()
        verdict = "HOLDS" if result.shape_holds else "FAILS"
        if not result.shape_holds:
            exit_code = 1
        print(f"{identifier}: {verdict}  {result.title}")
    return exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(arguments.experiments, trace_path=arguments.trace,
                            as_json=arguments.as_json)
    if arguments.command == "summary":
        return _command_summary()
    if arguments.command == "sweep":
        return _command_sweep(arguments.experiments, seeds=arguments.seeds,
                              jobs=arguments.jobs, grid_entries=arguments.grid,
                              cache_dir=arguments.cache_dir,
                              timeout=arguments.timeout,
                              retries=arguments.retries,
                              chaos_workers=arguments.chaos_workers,
                              chaos_seed=arguments.chaos_seed,
                              telemetry_path=arguments.telemetry,
                              progress=arguments.progress,
                              as_json=arguments.as_json)
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
