"""Deterministic resilience layer: chaos plans, retries, crash-safe sweeps.

The paper's §VI-A — "failures of transparency will occur … design what
happens then" — makes faults a tussle space of their own.  This package
gives the reproduction a single vocabulary for them:

- :mod:`tussle.resil.chaos` — seeded :class:`ChaosSchedule` /
  :class:`FaultPlan` fault processes (link flaps, node crashes,
  loss/delay spikes, middlebox insertion) applied to a
  :class:`~tussle.netsim.forwarding.ForwardingEngine` by a
  :class:`ChaosInjector`.
- :mod:`tussle.resil.backoff` — :class:`Backoff` (seeded jitter),
  :class:`Deadline` (caller-supplied clock), :class:`CircuitBreaker`.
- :mod:`tussle.resil.workerchaos` — :class:`WorkerChaos`, deterministic
  sabotage planning for sweep workers (the chaos gate).
- :mod:`tussle.resil.failures` — :class:`FailedCell`, the structured
  record a crash-safe sweep emits instead of aborting.

Everything is a pure function of explicit seeds; no module here reads a
wall clock or an unseeded RNG.
"""

from .backoff import Backoff, BreakerState, CircuitBreaker, Deadline
from .chaos import (
    ChaosInjector,
    ChaosSchedule,
    FaultEvent,
    FaultKind,
    FaultPlan,
    link_target,
    parse_link_target,
)
from .failures import FailedCell
from .workerchaos import CHAOS_MODES, WorkerChaos

__all__ = [
    "Backoff",
    "BreakerState",
    "CHAOS_MODES",
    "ChaosInjector",
    "ChaosSchedule",
    "CircuitBreaker",
    "Deadline",
    "FailedCell",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "WorkerChaos",
    "link_target",
    "parse_link_target",
]
