"""Retry primitives: seeded backoff, sim-time deadlines, circuit breakers.

The paper's §VI-A instruction — "failures of transparency will occur —
design what happens then" — applies to the reproduction's own machinery
as much as to the simulated network.  These three primitives are the
vocabulary every recovery site in the package shares:

:class:`Backoff`
    Exponential retry delays with *seeded* jitter.  Unseeded jitter
    would make a retrying run irreproducible, so the jitter stream is a
    ``random.Random(seed)`` like every other RNG in the package: the
    same seed always yields the same delay sequence (lint rule D103
    applies here exactly as in the simulation).
:class:`Deadline`
    A point on a caller-supplied clock.  In the simulation that clock is
    sim time, in the sweep executor it is the quarantined wall clock;
    the deadline itself never reads any clock.
:class:`CircuitBreaker`
    Closed/open/half-open failure gating so a persistent fault stops
    consuming retry budget — the paper's point that the remedy must move
    to the actor who can act (the operator), not be retried forever by
    the one who cannot (the user).
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Callable, List, Optional

from ..errors import ResilienceError

__all__ = ["Backoff", "Deadline", "CircuitBreaker", "BreakerState"]


class Backoff:
    """Deterministic exponential backoff with seeded jitter.

    The *nominal* delay for retry ``n`` (0-based) is
    ``min(cap, base * factor**n)`` — monotone non-decreasing and bounded
    by ``cap``.  The *actual* delay multiplies the nominal by a jitter
    factor drawn from ``[1 - jitter, 1]``, so it never exceeds the
    nominal (and therefore never exceeds ``cap``), and the whole
    sequence is a pure function of ``seed``.

    ``max_retries`` bounds how many delays the schedule will hand out;
    :meth:`next_delay` raises :class:`~tussle.errors.ResilienceError`
    once the budget is spent, so callers cannot loop forever by
    accident.
    """

    def __init__(self, base: float = 0.25, factor: float = 2.0,
                 cap: float = 30.0, max_retries: int = 3,
                 jitter: float = 0.5, seed: int = 0):
        if base <= 0:
            raise ResilienceError(f"backoff base must be positive, got {base}")
        if factor < 1.0:
            raise ResilienceError(
                f"backoff factor must be >= 1, got {factor}")
        if cap < base:
            raise ResilienceError(
                f"backoff cap {cap} must be >= base {base}")
        if not 0.0 <= jitter <= 1.0:
            raise ResilienceError(
                f"jitter must be within [0, 1], got {jitter}")
        if max_retries < 0:
            raise ResilienceError(
                f"max_retries must be >= 0, got {max_retries}")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.max_retries = int(max_retries)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self.attempt = 0

    def nominal(self, attempt: int) -> float:
        """Un-jittered delay for 0-based retry ``attempt`` (capped)."""
        if attempt < 0:
            raise ResilienceError(f"attempt must be >= 0, got {attempt}")
        return min(self.cap, self.base * self.factor ** attempt)

    @property
    def exhausted(self) -> bool:
        """Has the retry budget been spent?"""
        return self.attempt >= self.max_retries

    def next_delay(self) -> float:
        """The next jittered delay; raises once ``max_retries`` is spent."""
        if self.exhausted:
            raise ResilienceError(
                f"retry budget exhausted after {self.max_retries} retries")
        nominal = self.nominal(self.attempt)
        self.attempt += 1
        scale = 1.0 - self.jitter * self._rng.random()
        return nominal * scale

    def delays(self) -> List[float]:
        """The full remaining delay schedule (consumes the budget)."""
        out = []
        while not self.exhausted:
            out.append(self.next_delay())
        return out

    def total_bound(self) -> float:
        """Upper bound on the sum of every delay the schedule can emit."""
        return sum(self.nominal(n) for n in range(self.max_retries))

    def reset(self) -> None:
        """Restart the schedule — same seed, same sequence again."""
        self._rng = random.Random(self.seed)
        self.attempt = 0

    def spawn(self, seed: int) -> "Backoff":
        """A fresh schedule with identical policy but its own seed."""
        return Backoff(base=self.base, factor=self.factor, cap=self.cap,
                       max_retries=self.max_retries, jitter=self.jitter,
                       seed=seed)


class Deadline:
    """A point on a caller-supplied clock; never reads any clock itself.

    Sim-time consumers pass the event-loop clock, the sweep executor
    passes its quarantined wall clock — the deadline is just arithmetic
    over whatever ``now`` the caller measures.
    """

    def __init__(self, now: float, timeout: float):
        if timeout <= 0:
            raise ResilienceError(
                f"deadline timeout must be positive, got {timeout}")
        self.started_at = float(now)
        self.timeout = float(timeout)
        self.expires_at = self.started_at + self.timeout

    def remaining(self, now: float) -> float:
        """Time left on the caller's clock (never negative)."""
        return max(0.0, self.expires_at - now)

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def clamp(self, now: float, delay: float) -> float:
        """``delay``, shortened so it cannot overshoot the deadline."""
        return min(delay, self.remaining(now))


class BreakerState(Enum):
    """Classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Stops retrying a persistently failing dependency.

    ``failure_threshold`` consecutive failures open the circuit; while
    open, :meth:`allow` refuses attempts until ``reset_timeout`` has
    elapsed on the caller's clock, at which point one probe is admitted
    (half-open).  A successful probe closes the circuit; a failed probe
    re-opens it for another full timeout.

    All state transitions are driven by caller-supplied ``now`` values,
    so the breaker is deterministic on sim time and usable on the
    executor's quarantined wall clock alike.
    """

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 10.0,
                 on_trip: Optional[Callable[["CircuitBreaker"], None]] = None):
        if failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ResilienceError(
                f"reset_timeout must be positive, got {reset_timeout}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        #: attempts refused while open — the retry budget the breaker saved
        self.refusals = 0
        self.trips = 0
        #: observation hook fired on every trip (e.g. sweep telemetry's
        #: ``breaker_trip``); observation only, it must not change state
        self.on_trip = on_trip

    def allow(self, now: float) -> bool:
        """May an attempt proceed at ``now``?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and \
                    now - self.opened_at >= self.reset_timeout:
                self.state = BreakerState.HALF_OPEN
                return True
            self.refusals += 1
            return False
        return True  # HALF_OPEN: the single probe is in flight

    def record_success(self) -> None:
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN or \
                self.consecutive_failures >= self.failure_threshold:
            tripped = self.state is not BreakerState.OPEN
            if tripped:
                self.trips += 1
            self.state = BreakerState.OPEN
            self.opened_at = now
            if tripped and self.on_trip is not None:
                self.on_trip(self)
