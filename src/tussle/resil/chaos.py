"""Seeded chaos: deterministic fault processes over a simulated network.

:mod:`tussle.netsim.faults` injects *hand-scripted* failures; this module
generalizes them into **fault processes**: a :class:`ChaosSchedule` turns
a seed plus per-kind rates into a :class:`FaultPlan` — an explicit,
canonically serialisable list of :class:`FaultEvent` records (link
down/up, node crash/recover, loss and delay spikes, middlebox insertion)
— and a :class:`ChaosInjector` replays the plan against a
:class:`~tussle.netsim.forwarding.ForwardingEngine` as simulated time
advances.

Determinism contract: a plan is a pure function of the schedule's config
and the network's (sorted) link/node inventory.  All randomness flows
from the explicit ``seed`` (lint rule D103), targets are drawn from
sorted candidate lists (D106), and the plan round-trips bit-exactly
through :func:`~tussle.experiments.common.canonical_json` — so a chaos
experiment can be cached, swept and seed-checked exactly like a healthy
one.  Failure is an *input*, not an accident.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ResilienceError
from ..canon import canonical_json

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "ChaosSchedule",
           "ChaosInjector", "link_target", "parse_link_target"]

#: Schema version for serialized plans/schedules.
CHAOS_SCHEMA = 1


class FaultKind(Enum):
    """The fault taxonomy (DESIGN.md, "Resilience")."""

    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    NODE_CRASH = "node-crash"
    NODE_RECOVER = "node-recover"
    LOSS_SPIKE = "loss-spike"
    DELAY_SPIKE = "delay-spike"
    MIDDLEBOX_INSERT = "middlebox-insert"


def link_target(a: str, b: str) -> str:
    """Canonical target label for an undirected link."""
    return "|".join(sorted((a, b)))


def parse_link_target(target: str) -> Tuple[str, str]:
    a, _, b = target.partition("|")
    if not a or not b:
        raise ResilienceError(f"malformed link target {target!r}")
    return a, b


@dataclass(frozen=True)
class FaultEvent:
    """One fault at one instant of simulated time.

    ``target`` names a link (``"a|b"``) or a node; ``params`` carries
    kind-specific scalars (durations, probabilities, factors) and must
    stay canonically JSON-serialisable.
    """

    time: float
    kind: FaultKind
    target: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.kind.value, self.target,
                canonical_json(self.param_dict))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind.value,
            "target": self.target,
            "params": self.param_dict,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        return cls(
            time=float(data["time"]),
            kind=FaultKind(data["kind"]),
            target=data["target"],
            params=tuple(sorted(data.get("params", {}).items())),
        )


@dataclass
class FaultPlan:
    """An ordered, replayable list of fault events.

    The canonical order is :attr:`FaultEvent.sort_key`; two plans with
    the same events are equal however they were assembled, and
    ``FaultPlan.from_json(plan.to_json())`` reproduces the plan
    bit-exactly.
    """

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: e.sort_key)

    def add(self, event: FaultEvent) -> None:
        self.events.append(event)
        self.events.sort(key=lambda e: e.sort_key)

    def until(self, time: float) -> List[FaultEvent]:
        """Events at or before ``time``, in canonical order."""
        return [e for e in self.events if e.time <= time]

    def of_kind(self, kind: FaultKind) -> List[FaultEvent]:
        return [e for e in self.events if e.kind is kind]

    @property
    def horizon(self) -> float:
        return self.events[-1].time if self.events else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CHAOS_SCHEMA,
            "events": [event.to_dict() for event in self.events],
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if data.get("schema") != CHAOS_SCHEMA:
            raise ResilienceError(
                f"unsupported fault-plan schema {data.get('schema')!r}")
        return cls(events=[FaultEvent.from_dict(e)
                           for e in data.get("events", [])])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        import json

        return cls.from_dict(json.loads(text))

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.to_json() == other.to_json()


@dataclass
class ChaosSchedule:
    """Seeded fault-process generator: config in, :class:`FaultPlan` out.

    Each non-zero ``*_rate`` is the intensity of an independent Poisson
    process over ``[0, horizon)``; every sampled fault picks its target
    from the network's sorted links (or nodes) and, where applicable, a
    repair/expiry delay uniform in the configured ``(lo, hi)`` window,
    emitted as the paired recovery event.  The whole plan is a pure
    function of ``(config, seed, sorted network inventory)``.
    """

    seed: int
    horizon: float
    link_failure_rate: float = 0.0
    link_repair: Tuple[float, float] = (0.5, 2.0)
    node_crash_rate: float = 0.0
    node_repair: Tuple[float, float] = (1.0, 4.0)
    loss_spike_rate: float = 0.0
    loss_probability: Tuple[float, float] = (0.2, 0.8)
    loss_duration: Tuple[float, float] = (0.5, 2.0)
    delay_spike_rate: float = 0.0
    delay_factor: Tuple[float, float] = (2.0, 10.0)
    delay_duration: Tuple[float, float] = (0.5, 2.0)
    middlebox_rate: float = 0.0
    middlebox_application: str = "generic"

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ResilienceError(
                f"chaos horizon must be positive, got {self.horizon}")
        for name in ("link_failure_rate", "node_crash_rate",
                     "loss_spike_rate", "delay_spike_rate",
                     "middlebox_rate"):
            if getattr(self, name) < 0:
                raise ResilienceError(f"{name} must be >= 0")
        for name in ("link_repair", "node_repair", "loss_duration",
                     "delay_duration", "delay_factor", "loss_probability"):
            lo, hi = getattr(self, name)
            if not 0 <= lo <= hi:
                raise ResilienceError(
                    f"{name} window must satisfy 0 <= lo <= hi, "
                    f"got ({lo}, {hi})")

    # ------------------------------------------------------------------
    # Canonical serialisation (config round-trips, not just plans)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": CHAOS_SCHEMA,
            "seed": self.seed,
            "horizon": self.horizon,
            "link_failure_rate": self.link_failure_rate,
            "link_repair": list(self.link_repair),
            "node_crash_rate": self.node_crash_rate,
            "node_repair": list(self.node_repair),
            "loss_spike_rate": self.loss_spike_rate,
            "loss_probability": list(self.loss_probability),
            "loss_duration": list(self.loss_duration),
            "delay_spike_rate": self.delay_spike_rate,
            "delay_factor": list(self.delay_factor),
            "delay_duration": list(self.delay_duration),
            "middlebox_rate": self.middlebox_rate,
            "middlebox_application": self.middlebox_application,
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosSchedule":
        if data.get("schema") != CHAOS_SCHEMA:
            raise ResilienceError(
                f"unsupported chaos schema {data.get('schema')!r}")
        def pair(key: str) -> Tuple[float, float]:
            lo, hi = data[key]
            return (float(lo), float(hi))

        return cls(
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            link_failure_rate=float(data["link_failure_rate"]),
            link_repair=pair("link_repair"),
            node_crash_rate=float(data["node_crash_rate"]),
            node_repair=pair("node_repair"),
            loss_spike_rate=float(data["loss_spike_rate"]),
            loss_probability=pair("loss_probability"),
            loss_duration=pair("loss_duration"),
            delay_spike_rate=float(data["delay_spike_rate"]),
            delay_factor=pair("delay_factor"),
            delay_duration=pair("delay_duration"),
            middlebox_rate=float(data["middlebox_rate"]),
            middlebox_application=data["middlebox_application"],
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        import json

        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Plan generation
    # ------------------------------------------------------------------
    def _arrivals(self, rng: random.Random, rate: float,
                  min_gap: float = 0.0) -> List[float]:
        """Poisson arrival times over [0, horizon); optional minimum gap."""
        times: List[float] = []
        t = 0.0
        while rate > 0:
            t += min_gap + rng.expovariate(rate)
            if t >= self.horizon:
                break
            times.append(t)
        return times

    def _window(self, rng: random.Random,
                window: Tuple[float, float]) -> float:
        lo, hi = window
        return lo if lo == hi else rng.uniform(lo, hi)

    def plan(self, network: Any, min_up_time: float = 0.0) -> FaultPlan:
        """Generate the deterministic plan for ``network``.

        ``network`` needs ``links`` (objects with ``a``/``b``) and
        ``node_names()`` — the :class:`~tussle.netsim.topology.Network`
        surface.  ``min_up_time`` forces a recovery gap before the same
        process strikes again, which bounds how long any single outage
        can last relative to a retry schedule.
        """
        master = random.Random(self.seed)
        # Sub-streams in a fixed order so adding one process never
        # perturbs another's draws.
        streams = {name: random.Random(master.getrandbits(63))
                   for name in ("link", "node", "loss", "delay", "mbox")}
        link_labels = sorted(link_target(l.a, l.b) for l in network.links)
        node_labels = sorted(network.node_names())
        plan = FaultPlan()

        if link_labels and self.link_failure_rate > 0:
            rng = streams["link"]
            for t in self._arrivals(rng, self.link_failure_rate, min_up_time):
                target = rng.choice(link_labels)
                repair = self._window(rng, self.link_repair)
                plan.add(FaultEvent(t, FaultKind.LINK_DOWN, target))
                plan.add(FaultEvent(t + repair, FaultKind.LINK_UP, target))
        if node_labels and self.node_crash_rate > 0:
            rng = streams["node"]
            for t in self._arrivals(rng, self.node_crash_rate, min_up_time):
                target = rng.choice(node_labels)
                repair = self._window(rng, self.node_repair)
                plan.add(FaultEvent(t, FaultKind.NODE_CRASH, target))
                plan.add(FaultEvent(t + repair, FaultKind.NODE_RECOVER,
                                    target))
        if self.loss_spike_rate > 0:
            rng = streams["loss"]
            for t in self._arrivals(rng, self.loss_spike_rate):
                plan.add(FaultEvent(
                    t, FaultKind.LOSS_SPIKE, "*",
                    params=(("duration",
                             self._window(rng, self.loss_duration)),
                            ("probability",
                             self._window(rng, self.loss_probability))),
                ))
        if link_labels and self.delay_spike_rate > 0:
            rng = streams["delay"]
            for t in self._arrivals(rng, self.delay_spike_rate):
                target = rng.choice(link_labels)
                plan.add(FaultEvent(
                    t, FaultKind.DELAY_SPIKE, target,
                    params=(("duration",
                             self._window(rng, self.delay_duration)),
                            ("factor",
                             self._window(rng, self.delay_factor))),
                ))
        if node_labels and self.middlebox_rate > 0:
            rng = streams["mbox"]
            for t in self._arrivals(rng, self.middlebox_rate):
                target = rng.choice(node_labels)
                plan.add(FaultEvent(
                    t, FaultKind.MIDDLEBOX_INSERT, target,
                    params=(("application", self.middlebox_application),
                            ("discloses", rng.random() < 0.5)),
                ))
        return plan


class ChaosInjector:
    """Replays a :class:`FaultPlan` against a forwarding engine.

    Call :meth:`advance` with the current simulated time; every event
    whose time has arrived is applied exactly once, in canonical order.
    Node crashes take all the node's operational links down and
    recoveries bring exactly those back; delay spikes scale a link's
    latency for their duration; loss spikes expose an
    :meth:`active_loss` probability that retry layers consult; and
    middlebox insertions attach a blocking
    :class:`~tussle.netsim.middlebox.PortFilterFirewall`.
    """

    def __init__(self, engine: Any, plan: FaultPlan):
        self.engine = engine
        self.plan = plan
        self.now = 0.0
        self.applied: List[FaultEvent] = []
        self._cursor = 0
        self._crashed_links: Dict[str, List[Tuple[str, str]]] = {}
        self._delay_restores: List[Tuple[float, str, float]] = []
        self._loss_spikes: List[Tuple[float, float, float]] = []

    # -- state queries --------------------------------------------------
    def active_loss(self, now: Optional[float] = None) -> float:
        """Highest loss probability among spikes active at ``now``."""
        at = self.now if now is None else now
        active = [p for (start, end, p) in self._loss_spikes
                  if start <= at < end]
        return max(active) if active else 0.0

    # -- replay ---------------------------------------------------------
    def advance(self, until: float) -> List[FaultEvent]:
        """Apply every event with ``time <= until``; returns them."""
        if until < self.now:
            raise ResilienceError(
                f"chaos cannot rewind from t={self.now} to t={until}")
        fired: List[FaultEvent] = []
        events = self.plan.events
        while self._cursor < len(events) and \
                events[self._cursor].time <= until:
            event = events[self._cursor]
            self._cursor += 1
            self._restore_delays(event.time)
            self._apply(event)
            self.applied.append(event)
            fired.append(event)
        self._restore_delays(until)
        self.now = until
        return fired

    def _restore_delays(self, now: float) -> None:
        remaining = []
        for (end, target, original) in self._delay_restores:
            if end <= now:
                a, b = parse_link_target(target)
                if self.engine.network.has_link(a, b):
                    self.engine.network.link(a, b).latency = original
            else:
                remaining.append((end, target, original))
        self._delay_restores = remaining

    def _apply(self, event: FaultEvent) -> None:
        network = self.engine.network
        kind = event.kind
        if kind is FaultKind.LINK_DOWN:
            a, b = parse_link_target(event.target)
            if network.has_link(a, b):
                network.fail_link(a, b)
        elif kind is FaultKind.LINK_UP:
            a, b = parse_link_target(event.target)
            if network.has_link(a, b):
                network.restore_link(a, b)
        elif kind is FaultKind.NODE_CRASH:
            node = event.target
            downed = []
            for link in sorted(network.links, key=lambda l: l.key()):
                if link.up and node in (link.a, link.b):
                    network.fail_link(link.a, link.b)
                    downed.append((link.a, link.b))
            self._crashed_links[node] = downed
        elif kind is FaultKind.NODE_RECOVER:
            for a, b in self._crashed_links.pop(event.target, []):
                if network.has_link(a, b):
                    network.restore_link(a, b)
        elif kind is FaultKind.LOSS_SPIKE:
            params = event.param_dict
            self._loss_spikes.append((
                event.time, event.time + float(params["duration"]),
                float(params["probability"])))
        elif kind is FaultKind.DELAY_SPIKE:
            a, b = parse_link_target(event.target)
            if network.has_link(a, b):
                link = network.link(a, b)
                params = event.param_dict
                self._delay_restores.append((
                    event.time + float(params["duration"]),
                    event.target, link.latency))
                link.latency = link.latency * float(params["factor"])
        elif kind is FaultKind.MIDDLEBOX_INSERT:
            from ..netsim.middlebox import PortFilterFirewall

            params = event.param_dict
            self.engine.attach_middlebox(event.target, PortFilterFirewall(
                f"chaos-fw@{event.target}",
                blocked_applications={params["application"]},
                discloses=bool(params["discloses"]),
            ))
        else:  # pragma: no cover - exhaustive over FaultKind
            raise ResilienceError(f"unhandled fault kind {kind!r}")
