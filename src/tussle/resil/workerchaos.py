"""Deterministic chaos planning for sweep *workers*.

:class:`WorkerChaos` decides — as a pure function of a seed and the
cell's identity — whether a worker processing that cell should be made
to die or hang on a given attempt.  This is how the chaos gate forces
"30% of cells crash or hang on first attempt" reproducibly: the doomed
set is the same for every run with the same chaos seed, regardless of
worker scheduling order or process ids.

The digest construction mirrors ``sweep.cells.derive_seed`` (SHA-256
over labelled identity components) but is implemented locally so that
:mod:`tussle.resil` stays import-free of :mod:`tussle.sweep` — the
sweep executors import *us*, not the other way round.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ResilienceError

__all__ = ["WorkerChaos", "CHAOS_MODES", "digest63"]

#: Failure modes a chaos directive can request of a worker, in the fixed
#: order used when cycling through them for successive doomed cells.
CHAOS_MODES: Tuple[str, ...] = ("exit", "kill", "hang")


def digest63(seed: int, *labels: str) -> int:
    """A 63-bit integer digest of ``seed`` and ordered string labels."""
    h = hashlib.sha256()
    h.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        h.update(b"\x1f")
        h.update(label.encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") & (2 ** 63 - 1)


@dataclass(frozen=True)
class WorkerChaos:
    """Plan which sweep cells get a crashing/hanging worker, and how.

    Parameters
    ----------
    seed:
        Chaos seed; the doomed set is a pure function of it.
    fraction:
        Fraction of cells (by digest, approximately) whose *first*
        ``max_attempts`` attempts are sabotaged.
    modes:
        Failure modes to cycle through for doomed cells.  ``"exit"``
        makes the worker call ``os._exit``, ``"kill"`` makes it SIGKILL
        itself, ``"hang"`` makes it sleep past any per-cell timeout.
    max_attempts:
        Sabotage attempts ``0 .. max_attempts-1``; later attempts run
        clean, so a retrying executor always recovers the cell.
    """

    seed: int
    fraction: float = 0.3
    modes: Tuple[str, ...] = CHAOS_MODES
    max_attempts: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ResilienceError(
                f"chaos fraction must be within [0, 1], got {self.fraction}")
        if not self.modes:
            raise ResilienceError("chaos modes must be non-empty")
        for mode in self.modes:
            if mode not in CHAOS_MODES:
                raise ResilienceError(
                    f"unknown chaos mode {mode!r}; expected one of "
                    f"{CHAOS_MODES}")
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}")

    def doomed(self, experiment_id: str, params_json: str,
               base_seed: int) -> bool:
        """Is this cell in the sabotaged set?"""
        d = digest63(self.seed, "doom", experiment_id, params_json,
                     str(int(base_seed)))
        return (d % 10_000) < self.fraction * 10_000

    def mode_for(self, experiment_id: str, params_json: str,
                 base_seed: int, attempt: int) -> Optional[str]:
        """Failure mode for this cell/attempt, or ``None`` to run clean."""
        if attempt >= self.max_attempts:
            return None
        if not self.doomed(experiment_id, params_json, base_seed):
            return None
        d = digest63(self.seed, "mode", experiment_id, params_json,
                     str(int(base_seed)), str(int(attempt)))
        return self.modes[d % len(self.modes)]

    def to_dict(self) -> dict:
        return {"seed": self.seed, "fraction": self.fraction,
                "modes": list(self.modes),
                "max_attempts": self.max_attempts}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerChaos":
        return cls(seed=int(data["seed"]),
                   fraction=float(data.get("fraction", 0.3)),
                   modes=tuple(data.get("modes", CHAOS_MODES)),
                   max_attempts=int(data.get("max_attempts", 1)))
