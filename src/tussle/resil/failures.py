"""Structured records for cells that exhausted their retry budget.

A sweep must not abort because one cell's worker keeps dying — the
paper's "design for variation in outcome" applies to the harness too.
When the resilient executor gives up on a cell it emits a
:class:`FailedCell` describing what was tried and why it failed, so the
merged report still accounts for every cell deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..canon import canonical_json

__all__ = ["FailedCell"]


@dataclass
class FailedCell:
    """Terminal failure record for one sweep cell.

    Attributes
    ----------
    experiment_id, params_json, base_seed:
        The cell's identity, matching the sweep cache key.
    attempts:
        Total attempts made (initial try plus retries).
    reasons:
        One entry per failed attempt, e.g. ``"worker-death(exitcode=3)"``
        or ``"timeout(2.0s)"``, in attempt order.
    """

    experiment_id: str
    params_json: str
    base_seed: int
    attempts: int
    reasons: List[str] = field(default_factory=list)

    def to_error_dict(self) -> Dict[str, object]:
        """The ``error`` payload field for a ``status: "failed"`` cell."""
        return {
            "type": "FailedCell",
            "attempts": self.attempts,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FailedCell":
        """Rebuild the record from a ``status: "failed"`` cell payload."""
        error = payload.get("error") or {}
        return cls(
            experiment_id=str(payload["experiment_id"]),
            params_json=canonical_json(payload["params"]),
            base_seed=int(payload["base_seed"]),  # type: ignore[arg-type]
            attempts=int(error.get("attempts", 0)),  # type: ignore[arg-type]
            reasons=[str(r) for r in error.get("reasons", [])],  # type: ignore[union-attr]
        )
