#!/usr/bin/env python3
"""The §VII QoS post-mortem as an executable factorial.

"One can thus see the failure of QoS deployment as a failure first to
design any value-transfer mechanism to give the providers the possibility
of being rewarded for making the investment (greed), and second, a
failure to couple the design to a mechanism whereby the user can exercise
choice to select the provider who offered the service (competitive fear)."

This example runs the symmetric deployment game over all four cells of
(value flow x user choice), shows the equilibrium in each, and then the
ablation where vertical integration (closed deployment) is impossible.

Run:  python examples/qos_postmortem.py
"""

from tussle.econ.investment import InvestmentModel, qos_deployment_game


def label(flag):
    return "yes" if flag else "no "


def main():
    model = InvestmentModel()
    print("QoS deployment game "
          f"(cost={model.deployment_cost:.0f}, "
          f"open revenue={model.open_service_revenue:.0f}/round, "
          f"closed revenue={model.closed_service_revenue:.0f}/round, "
          f"horizon={model.horizon})\n")

    print("value-flow  user-choice  ->  industry equilibrium")
    print("-" * 52)
    for cell in qos_deployment_game(model):
        marker = "  <- the only OPEN deployment" if cell.open_deployment else ""
        print(f"   {label(cell.value_flow)}         {label(cell.user_choice)}"
              f"       ->  {cell.outcome.value}{marker}")

    print("\nWhy each failure cell fails:")
    print(" - no value flow: an open service earns nothing; the ISP ships a")
    print("   closed, bundled version 'at monopoly prices' instead;")
    print(" - no user choice: users cannot route to the deploying ISP, so an")
    print("   open service reaches only captive customers and never repays")
    print("   the investment; and not deploying loses no customers (no fear).")

    print("\nAblation: forbid closed deployment entirely "
          "(no vertical integration):")
    print("value-flow  user-choice  ->  equilibrium")
    print("-" * 44)
    for cell in qos_deployment_game(model, allow_closed=False):
        print(f"   {label(cell.value_flow)}         {label(cell.user_choice)}"
              f"       ->  {cell.outcome.value}")
    print("\nWithout the closed escape hatch and without user choice, QoS")
    print("simply never deploys — the outcome the Internet actually saw.")
    print("(The no-value-flow/user-choice cell shows a fear-driven arms race:")
    print("everyone deploys an unprofitable open service purely to avoid")
    print("losing customers to rivals — deployment without a business case.)")


if __name__ == "__main__":
    main()
