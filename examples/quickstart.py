#!/usr/bin/env python3
"""Quickstart: model a tussle, run it, and score the design.

This walks the core API end to end:

1. define a tussle space with contested state variables;
2. add stakeholders with conflicting interests (users want transparency,
   providers want control) and the mechanisms the design exposes;
3. run the adaptation simulator under a *rigid* and a *flexible* design;
4. observe the paper's headline principle: "Rigid designs will be broken;
   designs that permit variation will flex under pressure and survive."

Run:  python examples/quickstart.py
"""

from tussle.core import (
    Mechanism,
    Stakeholder,
    StakeholderKind,
    TussleSimulator,
    TussleSpace,
    compare_outcomes,
    rigidity,
)


def build_space(transparency_knob_range):
    """One contested variable: how transparent the network is.

    Users pull toward full transparency (1.0); the provider pulls toward
    control (0.0). ``transparency_knob_range`` is the variation the
    design permits — (0, 1) designs the tussle in, a degenerate range
    dictates the outcome.
    """
    space = TussleSpace("transparency", initial_state={"transparency": 0.5})
    space.add_mechanism(Mechanism(
        name="transparency-knob",
        variable="transparency",
        allowed_range=transparency_knob_range,
    ))

    users = Stakeholder("users", StakeholderKind.USER, workaround_cost=0.05)
    users.add_interest("transparency", target=1.0)
    space.add_stakeholder(users)

    provider = Stakeholder("provider", StakeholderKind.COMMERCIAL_ISP,
                           workaround_cost=0.05)
    provider.add_interest("transparency", target=0.0)
    space.add_stakeholder(provider)
    return space


def run(label, knob_range, rounds=40):
    space = build_space(knob_range)
    r = rigidity(space.mechanisms, ["transparency"])
    outcome = TussleSimulator(space).run(rounds)
    print(f"--- {label} design (rigidity={r:.1f}) ---")
    print(f"  survived:            {outcome.survived}")
    print(f"  final integrity:     {outcome.final_integrity:.2f}")
    print(f"  moves / workarounds: {outcome.total_moves} / "
          f"{outcome.total_workarounds}")
    print(f"  settled:             {outcome.settled} "
          f"(the paper predicts contested tussles do not settle)")
    print()
    return outcome


def main():
    print("Tussle quickstart: users vs provider over network transparency\n")
    flexible = run("flexible", knob_range=(0.0, 1.0))
    rigid = run("rigid", knob_range=(0.5, 0.5))

    comparison = compare_outcomes("rigid", rigid, "flexible", flexible)
    print(f"Winner under the paper's principles: {comparison.winner()}")
    print("(Flexible designs absorb the fight as harmless in-design "
          "adjustment; rigid ones are broken by workarounds.)")


if __name__ == "__main__":
    main()
