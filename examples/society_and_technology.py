#!/usr/bin/env python3
"""The actor-network storyline of §II: durability, churn, disruption,
collision.

Four acts, each a claim from the paper's theory section made executable:

1. "Technology is Society made Durable" — the protocols are the central
   anchor; removing them shatters the network.
2. "The network gets harder to change as it grows up" — without entrant
   churn the actor network harmonizes and freezes; with churn it stays
   changeable.
3. Christensen: head-on attack on a durable incumbent fails; the
   new-market path builds durability outside and then overthrows.
4. VoIP: a collision between actor networks, not technologies.

Run:  python examples/society_and_technology.py
"""

import numpy as np

from tussle.actornet import (
    ChurnSimulation,
    DisruptionScenario,
    EntryStrategy,
    central_anchor,
    collide,
    durability,
    fragmentation_if_removed,
    seed_internet_network,
)
from tussle.experiments.x05_collision import (
    build_internet_side,
    build_telephone_side,
)


def act1_anchor():
    print("=== Act 1: technology as the central anchor ===\n")
    network = seed_internet_network(rng=np.random.default_rng(1))
    anchor = central_anchor(network)
    pieces = fragmentation_if_removed(network, anchor)
    print(f"  central anchor: {anchor!r} (a nonhuman actor)")
    print(f"  removing it fragments the network into {pieces} pieces")
    print(f"  current durability: {durability(network):.2f}\n")


def act2_churn():
    print("=== Act 2: churn keeps the network changeable ===\n")
    for rate, label in ((0.0, "innovation stops"), (2.0, "entrants keep coming")):
        simulation = ChurnSimulation(
            seed_internet_network(rng=np.random.default_rng(2)),
            arrival_rate=rate, seed=2)
        simulation.run(30)
        frozen = simulation.froze_at()
        state = (f"FROZE at round {frozen}" if frozen is not None
                 else "still changeable")
        print(f"  arrival rate {rate:.1f} ({label}): {state}, "
              f"changeability {simulation.final_changeability():.2f}")
    print("\n  'Look for a time when innovation slows... a pre-condition of "
          "a durably formed\n  and unchangeable Internet.'\n")


def act3_disruption():
    print("=== Act 3: the innovator's dilemma ===\n")
    for strategy in (EntryStrategy.HEAD_ON, EntryStrategy.NEW_MARKET):
        outcome = DisruptionScenario(improvement_rate=0.15, seed=3).run(
            strategy, rounds=60)
        verdict = ("OVERTHREW the incumbent" if outcome.overthrow
                   else ("survived on the margin" if outcome.entrant_survived
                         else "DIED"))
        print(f"  {strategy.value:10s}: {verdict} "
              f"(customers taken: {outcome.incumbent_customers_lost})")
    print("\n  'Innovators step outside the existing value chain... only "
          "when they have enough\n  durability do they have the potential "
          "to overthrow the existing producers.'\n")


def act4_collision():
    print("=== Act 4: VoIP — a collision of actor networks ===\n")
    internet = build_internet_side()
    telephone = build_telephone_side()
    print(f"  internet durability before:  {durability(internet):.2f} (young, loose)")
    print(f"  telephone durability before: {durability(telephone):.2f} (solidified)")
    _, result = collide(
        internet, telephone,
        bridges=[("voip-app", "carrier"), ("voip-app", "regulator"),
                 ("netizen0", "subscriber0")],
        settle_rounds=60,
    )
    print(f"  commitments dissolved in the collision: "
          f"{result.dissolved_commitments}")
    print(f"  value drift — internet side {result.drift_side_a:.2f}, "
          f"telephone side {result.drift_side_b:.2f}")
    print(f"  (the {'internet' if result.softer_side() == 'a' else 'telephone'} "
          f"side yielded more ground)")
    print("\n  'The key issue is not a collision of technologies, but a "
          "collision between\n  large, heterogeneous actor networks.'")


if __name__ == "__main__":
    act1_anchor()
    act2_churn()
    act3_disruption()
    act4_collision()
