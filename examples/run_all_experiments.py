#!/usr/bin/env python3
"""Regenerate every experiment table and print the full report.

This is the one-shot reproduction driver: it runs all 28 experiment
harnesses (E01-E12, X01-X07, the L01-L02 population-scale tiers,
R01-R02, N01, T01-T02 and the P01-P02 peering-economics arc), prints
each table, and summarizes which of the paper's qualitative claims
held.

Run:  python examples/run_all_experiments.py
"""

import time

from tussle.experiments import ALL_EXPERIMENTS


def main():
    verdicts = {}
    for experiment_id in sorted(ALL_EXPERIMENTS):
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[experiment_id]()
        elapsed = time.perf_counter() - start
        print(result.format())
        print(f"(ran in {elapsed:.2f}s)\n")
        verdicts[experiment_id] = result.shape_holds

    print("=" * 60)
    print("Summary: paper-claim shape checks")
    for experiment_id, holds in verdicts.items():
        print(f"  {experiment_id}: {'HOLDS' if holds else 'FAILS'}")
    total = sum(verdicts.values())
    print(f"\n{total}/{len(verdicts)} experiments reproduce the paper's shape.")


if __name__ == "__main__":
    main()
