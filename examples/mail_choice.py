#!/usr/bin/env python3
"""The mail system of §IV-B: choice, discipline, and the ISP's counter-move.

Part 1 — market discipline: users free to choose abandon unreliable SMTP
servers ("this sort of choice... imposes discipline on the marketplace").

Part 2 — the counter-move: the ISP installs a port-25 redirector, and the
user's configured choice is silently overridden ("an ISP might try to
control what SMTP server a customer uses by redirecting packets based on
the port number").

Part 3 — the guideline audit of §VI-A, comparing the open mail
architecture against a walled-garden messaging silo.

Run:  python examples/mail_choice.py
"""

from tussle.core.guidelines import audit, tussle_readiness_grade
from tussle.experiments.x03_mail_choice import (
    open_mail_design,
    walled_garden_design,
)
from tussle.netsim.forwarding import ForwardingEngine
from tussle.netsim.mail import (
    MailServer,
    MailSystem,
    MailUser,
    build_mail_topology,
    server_market_discipline,
)
from tussle.netsim.middlebox import Redirector


def part1_discipline():
    print("=== Part 1: choice disciplines the server market ===\n")
    reliabilities = [0.99, 0.80, 0.60]
    counts = server_market_discipline(reliabilities, seed=23)
    for (name, users), reliability in zip(sorted(counts.items()),
                                          reliabilities):
        bar = "#" * (users // 2)
        print(f"  {name} (reliability {reliability:.2f}): {users:3d} users {bar}")
    print("\nUnreliable servers empty out once users can walk.\n")


def part2_redirection():
    print("=== Part 2: the ISP's redirection counter-move ===\n")
    servers = [MailServer("user-smtp", reliability=0.99),
               MailServer("isp-smtp", reliability=0.95)]
    net = build_mail_topology([s.name for s in servers])
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    engine.attach_middlebox("isp-access", Redirector(
        "isp-capture", port=25, new_destination="isp-smtp"))
    system = MailSystem(engine, servers, seed=23)
    user = MailUser("user", smtp_server="user-smtp", pop_server="user-smtp")
    for _ in range(40):
        system.send(user)
    print(f"  user configured:   user-smtp")
    print(f"  redirection rate:  {system.redirection_rate():.0%} "
          f"(every send captured by the ISP)")
    print(f"  mail still flows:  {user.delivery_rate():.0%} delivery — "
          f"the tussle is over WHO serves it\n")


def part3_guidelines():
    print("=== Part 3: application design guideline audit (§VI-A) ===\n")
    for design in (open_mail_design(), walled_garden_design()):
        findings = audit(design)
        grade = tussle_readiness_grade(design)
        print(f"  {design.name}: grade {grade}, "
              f"{len(findings)} violation(s)")
        for finding in findings:
            print(f"    - [{finding.guideline.identifier}] "
                  f"{finding.guideline.title}")
    print("\nThe guidelines operationalize 'the most we can do to protect "
          "maturing applications\nis to bias the tussle' — toward user "
          "choice and end-user empowerment.")


if __name__ == "__main__":
    part1_discipline()
    part2_redirection()
    part3_guidelines()
