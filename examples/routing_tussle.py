#!/usr/bin/env python3
"""Who controls the route? The §V-A-4 control-point tussle, end to end.

Builds a hierarchical AS topology, converges BGP under Gao-Rexford
policy, then gives the user source routing — first without payment (it
fails, as in today's Internet), then with payment (it works, and the
transit providers earn revenue). Finally scores each interface against
the paper's tussle-interface properties.

Run:  python examples/routing_tussle.py
"""

import random

from tussle.netsim.topology import random_as_graph
from tussle.routing import (
    ChoiceVisibilityReport,
    OverlayNetwork,
    PathVectorRouting,
    SourceRoutingSystem,
    TransitTerms,
)


def main():
    network = random_as_graph(n_tier1=3, n_tier2=6, n_tier3=12,
                              rng=random.Random(5))
    stubs = [a.asn for a in network.ases if a.tier == 3]
    src, dst = stubs[0], stubs[5]
    print(f"Topology: {len(network.ases)} ASes; traffic AS{src} -> AS{dst}\n")

    # --- Provider control: BGP.
    bgp = PathVectorRouting(network)
    iterations = bgp.converge()
    path = bgp.as_path(src, dst)
    print(f"[BGP] converged in {iterations} iterations")
    print(f"[BGP] the ONE provider-selected path: {path}")

    # --- User control without payment: refused.
    unpaid = SourceRoutingSystem(network, payment_enabled=False)
    for autonomous_system in network.ases:
        unpaid.set_terms(autonomous_system.asn,
                         TransitTerms(accepts_source_routes=False, price=1.0))
    attempt = unpaid.best_affordable_route(src, dst, budget=100.0)
    print(f"\n[source routing, no payment] best attempt: "
          f"{'succeeded' if attempt else 'ALL REFUSED'}")
    print("  (the paper: 'ISPs do not receive any benefit when they carry "
          "traffic directed by a source route. Why should they be "
          "enthusiastic about this?')")

    # --- User control with payment: works, value flows.
    paid = SourceRoutingSystem(network, payment_enabled=True)
    for autonomous_system in network.ases:
        paid.set_terms(autonomous_system.asn,
                       TransitTerms(accepts_source_routes=False, price=1.0))
    candidates = paid.candidate_routes(src, dst)
    print(f"\n[source routing + payment] {len(candidates)} valley-free "
          f"candidate paths discovered")
    attempt = paid.best_affordable_route(src, dst, budget=100.0)
    print(f"  chosen path: {attempt.path} at price {attempt.total_price:.1f}")
    print(f"  route attested (user verified the path taken): {attempt.verified}")
    print(f"  transit revenue by AS: "
          f"{ {f'AS{a}': v for a, v in sorted(paid.revenue.items())} }")

    # --- The workaround: overlays.
    overlay = OverlayNetwork(bgp, members=stubs[:6])
    choices = overlay.path_choice_count(src, dst)
    distortion = overlay.uncompensated_transit(src, dst)
    print(f"\n[overlay] distinct underlay paths available: {choices}")
    print(f"[overlay] uncompensated transit hops created: "
          f"{sum(distortion.values())} across {len(distortion)} ASes")

    # --- Interface scorecards (§IV-C).
    print("\nTussle-interface scorecards (0-1, higher = designed for tussle):")
    for report in (ChoiceVisibilityReport.for_linkstate(),
                   ChoiceVisibilityReport.for_pathvector(),
                   ChoiceVisibilityReport.for_source_routing_with_payment()):
        print(f"  {report.mechanism:26s} overall={report.overall():.2f}")


if __name__ == "__main__":
    main()
