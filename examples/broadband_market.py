#!/usr/bin/env python3
"""The residential broadband story of §V-A-3, played out in the market.

Simulates three worlds:

* the dialup era — many facilities open to any ISP;
* the feared duopoly — telco + cable, vertically integrated;
* duopoly + municipal fiber with open access at the natural boundary.

and reports prices, concentration (HHI) and consumer surplus for each,
plus the paper's warning that the wrong open-access boundary barely helps.

Run:  python examples/broadband_market.py
"""

from tussle.econ import herfindahl_index
from tussle.econ.accesstech import AccessRegime, Facility, build_access_market


def facilities_for(world):
    if world == "dialup era":
        return [Facility(f"pop{i}", wholesale_fee=6.0) for i in range(5)]
    if world == "duopoly":
        return [Facility("telco", wholesale_fee=8.0),
                Facility("cable", wholesale_fee=8.0)]
    return [Facility("telco", wholesale_fee=8.0),
            Facility("cable", wholesale_fee=8.0),
            Facility("muni-fiber", wholesale_fee=5.0, neutral=True)]


def simulate(world, regime, rounds=30):
    market = build_access_market(facilities_for(world), regime,
                                 n_consumers=200, seed=3)
    market.run(rounds)
    shares = [len(p.subscribers) / 200 for p in market.providers.values()
              if p.subscribers]
    return {
        "price": market.mean_price(),
        "hhi": herfindahl_index(shares) if shares else 1.0,
        "surplus": market.total_consumer_surplus(),
        "retailers": len(market.providers),
    }


def report(world, regime, stats):
    print(f"{world:24s} {regime.value:22s} "
          f"price={stats['price']:6.2f}  HHI={stats['hhi']:.3f}  "
          f"retailers={stats['retailers']:2d}  "
          f"surplus={stats['surplus']:9.0f}")


def main():
    print("Residential broadband: market structure vs open-access regime\n")
    scenarios = [
        ("dialup era", AccessRegime.OPEN_NATURAL_BOUNDARY),
        ("duopoly", AccessRegime.CLOSED),
        ("duopoly", AccessRegime.OPEN_WRONG_BOUNDARY),
        ("duopoly", AccessRegime.OPEN_NATURAL_BOUNDARY),
        ("duopoly + muni fiber", AccessRegime.OPEN_NATURAL_BOUNDARY),
    ]
    results = {}
    for world, regime in scenarios:
        stats = simulate(world, regime)
        results[(world, regime)] = stats
        report(world, regime, stats)

    closed = results[("duopoly", AccessRegime.CLOSED)]
    wrong = results[("duopoly", AccessRegime.OPEN_WRONG_BOUNDARY)]
    natural = results[("duopoly", AccessRegime.OPEN_NATURAL_BOUNDARY)]
    print()
    print(f"Duopoly price premium over open access: "
          f"{closed['price'] - natural['price']:.2f}")
    print(f"Price relief from the WRONG boundary:   "
          f"{closed['price'] - wrong['price']:.2f}")
    print(f"Price relief from the NATURAL boundary: "
          f"{closed['price'] - natural['price']:.2f}")
    print("\nThe paper: proposals that implement open access at the natural "
          "modularity boundary\n(facilities vs ISP service) 'are more likely "
          "to benefit the Internet as a whole'.")


if __name__ == "__main__":
    main()
