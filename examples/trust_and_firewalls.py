#!/usr/bin/env python3
"""The trust tussle of §V-B: bad guys, firewalls and third parties.

Part 1 runs a threat campaign against three gateway configurations and
shows the innovation cost of blanket filtering versus trust mediation.

Part 2 shows third-party mediation: a risky online purchase becomes
rational once the user *chooses* a liability shield and consults a
reputation service — "there should be explicit ability to select what
third parties are used to mediate an interaction."

Run:  python examples/trust_and_firewalls.py
"""

from tussle.netsim import (
    BlanketFirewall,
    ForwardingEngine,
    Network,
    NodeKind,
)
from tussle.trust import (
    AttackKind,
    Attacker,
    LiabilityShield,
    MediatedInteraction,
    ReputationService,
    ThreatCampaign,
    TrustAwareFirewall,
    TrustGraph,
)


def build_engine():
    net = Network()
    net.add_node("home", kind=NodeKind.HOST)
    net.add_node("gw", kind=NodeKind.MIDDLEBOX)
    net.add_node("internet", kind=NodeKind.ROUTER)
    for name in ("friend", "startup", "badguy"):
        net.add_node(name)
        net.add_link(name, "internet")
    net.add_link("internet", "gw")
    net.add_link("gw", "home")
    engine = ForwardingEngine(net)
    engine.install_shortest_path_tables()
    return engine


def campaign(engine):
    return ThreatCampaign(
        engine,
        victim="home",
        attackers=[Attacker("badguy", AttackKind.DOS_FLOOD, seed=1)],
        legit_senders=[("friend", "http")],
        new_app_senders=[("startup", "holo-chat")],  # the unforeseen app
    )


def part1_firewalls():
    print("=== Part 1: firewall designs under attack ===\n")
    print(f"{'deployment':14s} {'attacks in':>10s} {'http in':>8s} "
          f"{'new app in':>10s}")

    engine = build_engine()
    mix = campaign(engine).run(10)
    print(f"{'none':14s} {mix.attack_admission_rate:>10.0%} "
          f"{mix.legit_success_rate:>8.0%} {mix.new_app_success_rate:>10.0%}")

    engine = build_engine()
    engine.attach_middlebox("gw", BlanketFirewall(
        "blanket", allowed_applications={"http", "smtp"}))
    mix = campaign(engine).run(10)
    print(f"{'blanket':14s} {mix.attack_admission_rate:>10.0%} "
          f"{mix.legit_success_rate:>8.0%} {mix.new_app_success_rate:>10.0%}")

    trust = TrustGraph()
    trust.set_trust("home", "friend", 0.9)
    trust.set_trust("home", "startup", 0.7)  # the user CHOSE to trust them
    engine = build_engine()
    engine.attach_middlebox("gw", TrustAwareFirewall(
        "trust-fw", protected="home", trust_graph=trust))
    mix = campaign(engine).run(10)
    print(f"{'trust-aware':14s} {mix.attack_admission_rate:>10.0%} "
          f"{mix.legit_success_rate:>8.0%} {mix.new_app_success_rate:>10.0%}")

    print("\nThe blanket firewall protects but forbids the unforeseen; the "
          "trust-aware firewall\nconstrains 'based on who is communicating' "
          "and lets trusted innovation through.\n")


def part2_third_parties():
    print("=== Part 2: third parties mediate the merchant tussle ===\n")
    reputation = ReputationService()
    for outcome in (True, True, False, True):  # the shop mostly delivers
        reputation.report("web-shop", outcome)

    bare = MediatedInteraction("web-shop", value=8.0,
                               success_probability=0.5,  # the user's prior
                               loss_if_failure=40.0)
    mediated = MediatedInteraction(
        "web-shop", value=8.0, success_probability=0.5, loss_if_failure=40.0,
        mediators=[reputation, LiabilityShield(fee=0.3, cap=0.5)],
    )
    print(f"unmediated expected utility: {bare.expected_utility():+.2f} "
          f"-> worth doing: {bare.worth_doing()}")
    print(f"mediated expected utility:   {mediated.expected_utility():+.2f} "
          f"-> worth doing: {mediated.worth_doing()}")
    print("\n'Credit card companies limit our liability to $50... These "
          "third parties contrast\nwith our simple model of two-party "
          "end-to-end communication.'")


if __name__ == "__main__":
    part1_firewalls()
    part2_third_parties()
